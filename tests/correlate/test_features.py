"""Tests for feature/response matrix alignment."""

import numpy as np
import pytest

from repro.correlate.features import RESPONSE_NAMES, align
from repro.errors import CorrelationError
from repro.prism.profile import FEATURE_NAMES, WorkloadFeatures
from repro.sim.results import NormalizedResult


def _features(name, seed):
    rng = np.random.default_rng(seed)
    values = rng.uniform(1, 10, size=10)
    return WorkloadFeatures(name, *values)


def _result(name, speedup, energy):
    return NormalizedResult(
        workload=name,
        llc_name="Xue_S",
        configuration="fixed-capacity",
        speedup=speedup,
        energy_ratio=energy,
        ed2p_ratio=energy / speedup**2,
    )


class TestAlign:
    def test_shapes_and_order(self):
        workloads = ["a", "b", "c"]
        profiles = {w: _features(w, i) for i, w in enumerate(workloads)}
        results = {w: _result(w, 1.0 + i * 0.1, 0.5 - i * 0.1)
                   for i, w in enumerate(workloads)}
        aligned = align(profiles, results, workloads)
        assert aligned.features.shape == (3, len(FEATURE_NAMES))
        assert aligned.responses.shape == (3, len(RESPONSE_NAMES))
        assert aligned.workloads == ("a", "b", "c")
        # Responses are (energy, speedup) in RESPONSE_NAMES order.
        assert aligned.responses[1, 0] == pytest.approx(0.4)
        assert aligned.responses[1, 1] == pytest.approx(1.1)

    def test_missing_profile_raises(self):
        profiles = {"a": _features("a", 0)}
        results = {w: _result(w, 1.0, 0.5) for w in ("a", "b")}
        with pytest.raises(CorrelationError):
            align(profiles, results, ["a", "b"])

    def test_missing_result_raises(self):
        profiles = {w: _features(w, 0) for w in ("a", "b")}
        results = {"a": _result("a", 1.0, 0.5)}
        with pytest.raises(CorrelationError):
            align(profiles, results, ["a", "b"])

    def test_single_workload_rejected(self):
        profiles = {"a": _features("a", 0)}
        results = {"a": _result("a", 1.0, 0.5)}
        with pytest.raises(CorrelationError):
            align(profiles, results, ["a"])
