"""Tests for Pearson correlation utilities."""

import numpy as np
import pytest

from repro.correlate.linear import correlation_matrix, pearson, top_correlates
from repro.errors import CorrelationError


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, 2 * x + 5) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_orthogonal_near_zero(self):
        x = np.array([-1.0, 0.0, 1.0])
        y = np.array([1.0, -2.0, 1.0])  # symmetric around centre
        assert pearson(x, y) == pytest.approx(0.0)

    def test_constant_column_is_zero(self):
        x = np.array([1.0, 1.0, 1.0])
        y = np.array([1.0, 2.0, 3.0])
        assert pearson(x, y) == 0.0

    def test_clipped_to_unit_interval(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.normal(size=10)
            y = rng.normal(size=10)
            assert -1.0 <= pearson(x, y) <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=8), rng.normal(size=8)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_shape_mismatch_raises(self):
        with pytest.raises(CorrelationError):
            pearson(np.zeros(3), np.zeros(4))

    def test_too_short_raises(self):
        with pytest.raises(CorrelationError):
            pearson(np.array([1.0]), np.array([2.0]))


class TestCorrelationMatrix:
    def test_shape(self):
        features = np.random.default_rng(2).normal(size=(6, 4))
        responses = np.random.default_rng(3).normal(size=(6, 2))
        matrix = correlation_matrix(features, responses)
        assert matrix.shape == (4, 2)

    def test_entries_match_pearson(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(5, 3))
        responses = rng.normal(size=(5, 2))
        matrix = correlation_matrix(features, responses)
        assert matrix[1, 0] == pytest.approx(
            pearson(features[:, 1], responses[:, 0])
        )

    def test_row_mismatch_raises(self):
        with pytest.raises(CorrelationError):
            correlation_matrix(np.zeros((4, 2)), np.zeros((5, 1)))


class TestTopCorrelates:
    def test_ranked_by_magnitude(self):
        matrix = np.array([[0.2], [-0.9], [0.5]])
        ranked = top_correlates(matrix, ["a", "b", "c"])
        assert [name for name, _ in ranked] == ["b", "c", "a"]
        assert ranked[0][1] == pytest.approx(-0.9)

    def test_k_limits(self):
        matrix = np.array([[0.2], [-0.9], [0.5]])
        assert len(top_correlates(matrix, ["a", "b", "c"], k=2)) == 2

    def test_name_length_mismatch(self):
        with pytest.raises(CorrelationError):
            top_correlates(np.zeros((3, 1)), ["a", "b"])

    def test_response_index_selects_column(self):
        matrix = np.array([[0.1, -0.9], [0.8, 0.2]])
        ranked = top_correlates(matrix, ["a", "b"], response_index=1)
        assert ranked[0] == ("a", pytest.approx(-0.9))


class TestNumericalEdgeCases:
    def test_subnormal_samples_do_not_underflow(self):
        # centred subnormals would underflow the denominator without the
        # unit-rescale; the correlation must still come out exactly 1
        tiny = 5e-324
        x = np.array([tiny, 2 * tiny, 3 * tiny, 4 * tiny])
        assert pearson(x, x.copy()) == pytest.approx(1.0)

    def test_huge_samples_do_not_overflow(self):
        big = 8e307  # ptp stays finite: 2*big < float64 max
        x = np.array([big, -big, big / 2, -big / 2])
        assert pearson(x, x.copy()) == pytest.approx(1.0)

    def test_nearly_constant_after_centering(self):
        # identical floats whose mean rounds slightly off must still be
        # treated as degenerate (the raw-range test)
        x = np.array([0.1] * 5)
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert pearson(x, y) == 0.0

    def test_matrix_accepts_single_column_vectors(self):
        # atleast_2d: a 1-D response is one response column, transposed
        features = np.array([[1.0], [2.0], [3.0]])
        responses = np.array([[2.0], [4.0], [6.0]])
        matrix = correlation_matrix(features, responses)
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == pytest.approx(1.0)

    def test_matrix_with_degenerate_feature_column(self):
        features = np.array([[1.0, 5.0], [1.0, 6.0], [1.0, 7.0]])
        responses = np.array([[1.0], [2.0], [3.0]])
        matrix = correlation_matrix(features, responses)
        assert matrix[0, 0] == 0.0
        assert matrix[1, 0] == pytest.approx(1.0)
