"""Tests for the Section VI correlation framework."""

import numpy as np
import pytest

from repro.correlate.framework import (
    FIGURE4_LLCS,
    CorrelationReport,
    dominant_feature_group,
    run_framework,
)
from repro.errors import CorrelationError
from repro.prism.profile import FEATURE_NAMES, WorkloadFeatures
from repro.sim.results import NormalizedResult


def _profile(name, write_entropy, totals):
    values = {f: 1.0 for f in FEATURE_NAMES}
    values["write_global_entropy"] = write_entropy
    values["write_local_entropy"] = write_entropy * 0.6
    values["total_reads"] = totals
    values["total_writes"] = totals * 0.4
    values["unique_reads"] = write_entropy * 100
    values["unique_writes"] = write_entropy * 110
    values["footprint90_reads"] = write_entropy * 10
    values["footprint90_writes"] = write_entropy * 11
    # Read-side features follow totals, not write entropy, so the
    # dominant-group classifier has a genuine distinction to make.
    values["read_global_entropy"] = totals * 0.01
    values["read_local_entropy"] = totals * 0.007
    return WorkloadFeatures(name, **values)


def _results(workloads, energies, speedups, llc="Jan_S"):
    return {
        llc: {
            w: NormalizedResult(w, llc, "fixed-capacity", s, e, e / s**2)
            for w, e, s in zip(workloads, energies, speedups)
        }
    }


class TestRunFramework:
    def test_write_entropy_drives_energy(self):
        workloads = ["w1", "w2", "w3", "w4"]
        entropies = [2.0, 4.0, 6.0, 8.0]
        totals = [100.0, 90.0, 400.0, 50.0]
        profiles = {
            w: _profile(w, h, t)
            for w, h, t in zip(workloads, entropies, totals)
        }
        energies = [0.1, 0.2, 0.3, 0.4]  # linear in entropy
        results = _results(workloads, energies, [1.0, 0.99, 0.98, 0.97])
        reports = run_framework(
            profiles, results, workloads, "fixed-capacity", "ai",
            llc_names=["Jan_S"],
        )
        assert len(reports) == 1
        report = reports[0]
        assert report.correlation("write_global_entropy", "energy") == pytest.approx(1.0)
        assert abs(report.correlation("total_reads", "energy")) < 0.5
        assert dominant_feature_group(report, "energy") == "write-behaviour"

    def test_ranked_features_sorted(self):
        workloads = ["w1", "w2", "w3"]
        profiles = {w: _profile(w, h, 10.0) for w, h in zip(workloads, [1, 2, 3])}
        results = _results(workloads, [0.1, 0.2, 0.3], [1.0, 1.0, 1.0])
        report = run_framework(
            profiles, results, workloads, "fixed-capacity", "ai",
            llc_names=["Jan_S"],
        )[0]
        ranked = report.ranked_features("energy")
        magnitudes = [abs(v) for _, v in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_unknown_llc_raises(self):
        workloads = ["w1", "w2"]
        profiles = {w: _profile(w, 1.0, 1.0) for w in workloads}
        results = _results(workloads, [0.1, 0.2], [1.0, 1.0])
        with pytest.raises(CorrelationError):
            run_framework(
                profiles, results, workloads, "fixed-capacity", "ai",
                llc_names=["Chen_P"],
            )

    def test_default_llcs_are_papers_best(self):
        assert FIGURE4_LLCS == ("Jan_S", "Xue_S", "Hayakawa_R")

    def test_unknown_feature_or_response_raises(self):
        report = CorrelationReport(
            llc_name="Jan_S",
            configuration="fixed-capacity",
            scope="ai",
            workloads=("a", "b"),
            matrix=np.zeros((len(FEATURE_NAMES), 2)),
        )
        with pytest.raises(CorrelationError):
            report.correlation("bogus", "energy")
        with pytest.raises(CorrelationError):
            report.correlation("total_reads", "latency")


class TestAbsoluteMode:
    def test_absolute_uses_sim_results(self):
        from dataclasses import dataclass

        @dataclass
        class FakeSimResult:
            llc_energy_j: float
            runtime_s: float

        workloads = ["w1", "w2", "w3"]
        # Only the totals columns follow the 10/20/30 trend; everything
        # else is non-monotone so totals alone can win the ranking.
        base = {
            f: v
            for f, v in zip(FEATURE_NAMES, [3.0, 1.0, 2.5, 0.5, 7, 2, 9, 4, 0, 0])
        }
        profiles = {}
        for w, t, bump in zip(workloads, [10.0, 20.0, 30.0], [0.0, 1.0, -1.0]):
            values = {f: v + bump for f, v in base.items()}
            values["total_reads"] = t
            values["total_writes"] = t * 0.4
            profiles[w] = WorkloadFeatures(w, **values)
        results = {
            "Jan_S": {
                w: FakeSimResult(llc_energy_j=t * 1e-6, runtime_s=t * 1e-3)
                for w, t in zip(workloads, [10.0, 20.0, 30.0])
            }
        }
        reports = run_framework(
            profiles, results, workloads, "fixed-capacity", "general",
            llc_names=["Jan_S"], absolute=True,
        )
        report = reports[0]
        assert report.response_names == ("energy", "execution_time")
        # Energy and time scale with totals by construction here.
        assert report.correlation("total_reads", "energy") == pytest.approx(1.0)
        assert report.correlation("total_reads", "execution_time") == pytest.approx(1.0)
        assert dominant_feature_group(report, "execution_time") == "totals"


class TestDominantGroup:
    def test_totals_detected(self):
        matrix = np.zeros((len(FEATURE_NAMES), 2))
        matrix[FEATURE_NAMES.index("total_reads"), 0] = 0.95
        report = CorrelationReport("X", "fixed-capacity", "general", ("a",), matrix)
        assert dominant_feature_group(report) == "totals"

    def test_other_detected(self):
        matrix = np.zeros((len(FEATURE_NAMES), 2))
        matrix[FEATURE_NAMES.index("read_global_entropy"), 0] = 0.95
        report = CorrelationReport("X", "fixed-capacity", "general", ("a",), matrix)
        assert dominant_feature_group(report) == "other"
