"""Tests for the statistics utilities."""

import numpy as np
import pytest

from repro.correlate.stats import (
    bootstrap_pearson,
    jackknife_pearson,
    linear_fit,
    rankdata,
    spearman,
)
from repro.errors import CorrelationError


class TestRankdata:
    def test_simple(self):
        assert list(rankdata(np.array([30.0, 10.0, 20.0]))) == [2.0, 0.0, 1.0]

    def test_ties_share_mean_rank(self):
        ranks = rankdata(np.array([5.0, 5.0, 1.0]))
        assert ranks[0] == ranks[1] == pytest.approx(1.5)
        assert ranks[2] == 0.0

    def test_all_equal(self):
        ranks = rankdata(np.array([2.0, 2.0, 2.0, 2.0]))
        assert np.allclose(ranks, 1.5)


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        x = np.arange(10.0)
        assert spearman(x, -(x**3)) == pytest.approx(-1.0)

    def test_matches_pearson_on_ranks(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=12), rng.normal(size=12)
        from repro.correlate.linear import pearson

        assert spearman(x, y) == pytest.approx(
            pearson(rankdata(x), rankdata(y))
        )

    def test_shape_mismatch(self):
        with pytest.raises(CorrelationError):
            spearman(np.zeros(3), np.zeros(4))


class TestBootstrap:
    def test_tight_interval_for_strong_linear(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 1, 40)
        y = 2 * x + rng.normal(scale=0.01, size=40)
        interval = bootstrap_pearson(x, y, n_resamples=300, seed=2)
        assert interval.estimate > 0.99
        assert interval.is_stable
        assert interval.width < 0.05

    def test_three_point_interval_is_embarrassing(self):
        # The AI scope's sample size: the CI must be enormous.
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([0.1, 0.25, 0.3])
        interval = bootstrap_pearson(x, y, n_resamples=500, seed=3)
        assert interval.width > 0.5

    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(4)
        x, y = rng.normal(size=15), rng.normal(size=15)
        interval = bootstrap_pearson(x, y, n_resamples=400, seed=5)
        assert interval.low - 1e-9 <= interval.estimate <= interval.high + 1e-9

    def test_bad_confidence_rejected(self):
        with pytest.raises(CorrelationError):
            bootstrap_pearson(np.zeros(3), np.zeros(3), confidence=1.5)


class TestJackknife:
    def test_three_points_span_unity(self):
        # Deleting one of three points leaves two -> r = +/-1.
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([0.1, 0.4, 0.2])
        low, high = jackknife_pearson(x, y)
        assert low == pytest.approx(-1.0) or high == pytest.approx(1.0)

    def test_stable_for_many_points(self):
        x = np.linspace(0, 1, 50)
        y = 3 * x + 1
        low, high = jackknife_pearson(x, y)
        assert low > 0.99 and high > 0.99

    def test_too_few_rejected(self):
        with pytest.raises(CorrelationError):
            jackknife_pearson(np.zeros(2), np.zeros(2))


class TestLinearFit:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0])
        slope, intercept = linear_fit(x, 3 * x + 5)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(5.0)

    def test_constant_x_rejected(self):
        with pytest.raises(CorrelationError):
            linear_fit(np.ones(5), np.arange(5.0))
