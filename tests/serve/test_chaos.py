"""Fleet-level chaos proofs: crash, hang, growth and corruption.

The elastic-fleet contract under fire, against real daemon
subprocesses:

- **SIGKILL mid-storm** — a shard dies without drain or journal flush
  while a duplicate storm is in flight, a replacement joins, and the
  fleet still loses zero accepted jobs, computes each distinct digest
  at most ``1 + workers-on-the-killed-shard`` times (exactly once for
  everything not in flight at the kill), and returns bytes identical
  to the single-process engine.
- **Hang past the heartbeat** — a SIGSTOPped shard is ejected by the
  router's failure detector, its ring segment remaps, and a SIGCONT
  brings it back via heartbeat rejoin.
- **Growth under load** — a shard added while jobs are in flight joins
  the live ring and the offered work completes byte-identically.
- **Store corruption** — a flipped byte in a shared-store entry is
  quarantined and recomputed, never served.

Computation counting rides the :mod:`repro.serve.chaos` seam
(``REPRO_CHAOS_LOG`` + the job hook), which also paces jobs so kills
provably land mid-computation.  Ground truth is
:func:`~repro.serve.jobs.execute_spec` in this process, as in
``test_identity.py``.

Marked ``serial``: every test spawns real daemons or an event loop.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import Fleet, InProcessFleet, ServeClient, submit_with_backoff
from repro.serve.chaos import CHAOS_LOG_ENV, read_log
from repro.serve.executor import JOB_HOOK_ENV
from repro.serve.jobs import JobSpec, execute_spec, normalize_spec, spec_digest
from repro.loadgen.pacing import SERVICE_MS_ENV

pytestmark = pytest.mark.serial

SPECS = [
    {"experiment": "table2", "scale": 0.02, "seed": seed}
    for seed in range(6)
]

FAST_HEARTBEAT = dict(
    heartbeat_s=0.3, heartbeat_timeout_s=0.5, eject_after=2
)


def _digest(spec: dict) -> str:
    return spec_digest(normalize_spec(dict(spec)))


@pytest.fixture(scope="module")
def ground_truth():
    """digest -> payload bytes from the in-process engine path."""
    return {
        _digest(spec): execute_spec(
            JobSpec(spec["experiment"], spec["scale"], spec["seed"])
        )
        for spec in SPECS
    }


def _recover(client: ServeClient, spec: dict, job_id: str) -> bytes:
    """A job's result bytes, resubmitting through degraded windows.

    Zero-accepted-loss, operationally: an accepted id either resolves,
    or its *digest* resolves after a backed-off resubmission (loss-free
    because submissions dedup by digest and finished payloads live in
    the shared store).
    """
    try:
        record = client.wait(job_id, timeout_s=120)
        if record["state"] == "done":
            try:
                return client.result_bytes(job_id)
            except ServeError:
                pass  # home died after finishing; fall through
    except ServeError:
        pass  # id lost with the killed shard, or degraded window
    response = submit_with_backoff(
        client, spec["experiment"], scale=spec["scale"],
        seed=spec["seed"], attempts=8,
    )
    record = client.wait(response["job"]["id"], timeout_s=120)
    assert record["state"] == "done", record
    return client.result_bytes(response["job"]["id"])


class TestKillMidStorm:
    FAN_IN = 3  # concurrent submitters per distinct spec

    def test_sigkill_one_of_three_loses_nothing(
        self, tmp_path, ground_truth
    ):
        chaos_log = str(tmp_path / "chaos.log")
        extra_env = {
            JOB_HOOK_ENV: "repro.serve.chaos:log_computation",
            CHAOS_LOG_ENV: chaos_log,
            SERVICE_MS_ENV: "200",
        }
        workers = 1
        with Fleet(
            shards=3, root=str(tmp_path / "fleet"), workers=workers,
            extra_env=extra_env, **FAST_HEARTBEAT,
        ) as fleet:
            client = ServeClient(fleet.url)
            plan = [dict(s) for s in SPECS for _ in range(self.FAN_IN)]
            responses = [None] * len(plan)
            barrier = threading.Barrier(len(plan))

            def submit(index: int) -> None:
                barrier.wait()
                responses[index] = client.submit(**plan[index])

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(len(plan))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert all(r is not None for r in responses)
            accepted = {
                _digest(spec): response["job"]["id"]
                for response, spec in zip(responses, plan)
            }

            # SIGKILL shard 0 while paced jobs are provably in flight
            # (6 jobs / 3 shards / 1 worker at 200 ms each), then grow
            # a replacement into the live ring.
            time.sleep(0.15)
            fleet.kill_shard(0, force=True)
            replacement = fleet.add_shard()
            assert replacement.url in fleet.router.ring

            recovered = {
                digest: _recover(client, spec, accepted[digest])
                for spec in SPECS
                for digest in [_digest(spec)]
            }

            # Zero accepted-job loss, byte-identical to the engine.
            assert recovered == ground_truth

        # One computation per digest, with the only excess bounded by
        # what the killed shard had in flight at the kill: a digest
        # logged there but never stored must be recomputed once.
        counts = read_log(chaos_log)
        assert set(counts) == set(ground_truth)
        assert all(count >= 1 for count in counts.values())
        excess = sum(count - 1 for count in counts.values())
        assert excess <= workers, counts


class TestHangPastHeartbeat:
    def test_sigstop_ejects_sigcont_rejoins(self, tmp_path):
        with Fleet(
            shards=2, root=str(tmp_path), workers=1, **FAST_HEARTBEAT
        ) as fleet:
            client = ServeClient(fleet.url)
            victim = fleet.shards[0]
            victim_url = victim.url
            version0 = fleet.router.ring_version

            os.kill(victim.process.pid, signal.SIGSTOP)
            try:
                deadline = time.monotonic() + 20.0
                while victim_url in fleet.router.ring:
                    assert time.monotonic() < deadline, "never ejected"
                    time.sleep(0.05)
                assert fleet.router.ring_version == version0 + 1

                # The hung shard's segment is remapped: every spec now
                # routes to the survivor and completes.
                for spec in SPECS[:3]:
                    response = submit_with_backoff(
                        client, spec["experiment"], scale=spec["scale"],
                        seed=spec["seed"], attempts=8,
                    )
                    record = client.wait(
                        response["job"]["id"], timeout_s=120
                    )
                    assert record["state"] == "done", record
            finally:
                os.kill(victim.process.pid, signal.SIGCONT)

            # Recovery is automatic: the next successful heartbeat
            # rejoins the shard, bumping the ring version again.
            deadline = time.monotonic() + 20.0
            while victim_url not in fleet.router.ring:
                assert time.monotonic() < deadline, "never rejoined"
                time.sleep(0.05)
            assert fleet.router.ring_version == version0 + 2
            payload = client.ring()
            assert payload["members"][victim_url]["in_ring"] is True
            assert payload["ring"]["version"] == version0 + 2


class TestSupervisorHealsCrash:
    def test_sigkilled_shard_is_restarted_and_rejoined(self, tmp_path):
        with Fleet(
            shards=2, root=str(tmp_path), workers=1,
            supervise=True, **FAST_HEARTBEAT,
        ) as fleet:
            client = ServeClient(fleet.url)
            victim_url = fleet.shards[0].url
            fleet.kill_shard(0, force=True)
            assert not fleet.shards[0].alive

            # The supervisor restarts the shard on its original port
            # and it re-enters the ring (supervisor nudge or heartbeat).
            deadline = time.monotonic() + 30.0
            while not fleet.shards[0].alive:
                assert time.monotonic() < deadline, "never restarted"
                time.sleep(0.05)
            assert fleet.shards[0].url == victim_url
            while victim_url not in fleet.router.ring:
                assert time.monotonic() < deadline, "never rejoined"
                time.sleep(0.05)
            # The restart counter lands after the banner parse, which
            # can lag the heartbeat rejoin by a beat.
            while fleet.supervisor.restarts < 1:
                assert time.monotonic() < deadline, "restart uncounted"
                time.sleep(0.05)

            # The healed fleet serves: every spec completes.
            for spec in SPECS[:2]:
                response = submit_with_backoff(
                    client, spec["experiment"], scale=spec["scale"],
                    seed=spec["seed"], attempts=8,
                )
                record = client.wait(response["job"]["id"], timeout_s=120)
                assert record["state"] == "done", record


class TestAddShardUnderLoad:
    def test_growth_mid_flight_loses_nothing(
        self, monkeypatch, ground_truth
    ):
        monkeypatch.setenv(
            JOB_HOOK_ENV, "repro.loadgen.pacing:emulate_service_time"
        )
        monkeypatch.setenv(SERVICE_MS_ENV, "50")
        with InProcessFleet(shards=2, workers=1, heartbeat_s=0) as fleet:
            client = ServeClient(fleet.url)
            ids = {}
            for spec in SPECS[:3]:
                ids[_digest(spec)] = client.submit(**spec)["job"]["id"]
            fleet.add_shard()  # grow while those are in flight
            assert len(fleet.router.ring) == 3
            for spec in SPECS[3:]:
                ids[_digest(spec)] = client.submit(**spec)["job"]["id"]
            for spec in SPECS:
                digest = _digest(spec)
                payload = _recover(client, spec, ids[digest])
                assert payload == ground_truth[digest]


class TestCorruptStoreEntry:
    def test_corrupt_entry_quarantined_and_recomputed(
        self, tmp_path, ground_truth
    ):
        spec = SPECS[0]
        digest = _digest(spec)
        with Fleet(shards=1, root=str(tmp_path), workers=1) as fleet:
            client = ServeClient(fleet.url)
            job_id = client.submit(**spec)["job"]["id"]
            assert client.wait(job_id, timeout_s=120)["state"] == "done"

            entry = fleet.store_dir / f"{digest}.res"
            assert entry.is_file()
            blob = bytearray(entry.read_bytes())
            blob[-1] ^= 0xFF  # flip a payload byte under the checksum
            entry.write_bytes(bytes(blob))

            # Bounce the shard so the resubmission must go through the
            # store probe (the old in-memory job record is gone).
            fleet.restart_shard(0)
            new_id = client.submit(**spec)["job"]["id"]
            assert client.wait(new_id, timeout_s=120)["state"] == "done"
            assert client.result_bytes(new_id) == ground_truth[digest]
            counters = client.metrics()["counters"]
            assert counters.get("serve.store.corrupt", 0) >= 1
            # Quarantine-then-recompute rewrote a valid entry.
            assert entry.is_file()
