"""HTTP endpoint tests for the experiment service (in-process daemon)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve import ExperimentServer, ServeClient
from repro.serve.jobs import JobSpec, JobState


class TestEndpoints:
    def test_healthz(self, client, running_server):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_bound"] == 64
        assert health["uptime_s"] >= 0
        assert set(health["queue"]) == {
            s.value for s in JobState
        }
        assert "entries" in health["cache"]

    def test_metrics_is_an_obs_snapshot(self, client):
        snapshot = client.metrics()
        assert "counters" in snapshot and "gauges" in snapshot

    def test_submit_poll_fetch(self, client):
        response = client.submit("table2", scale=0.02, seed=3)
        assert response["deduped"] is False
        job = response["job"]
        record = client.wait(job["id"], timeout_s=120)
        assert record["state"] == "done"
        payload = client.result(job["id"])
        assert payload["experiment"] == "table2"
        assert "Table II" in payload["render"]
        assert client.metrics()["counters"]["serve.jobs.executed"] == 1

    def test_submit_rejects_bad_specs_with_400(self, client):
        for body, fragment in [
            ({"experiment": "tabel2"}, "table2"),  # did-you-mean
            ({"experiment": "table2", "scal": 1}, "scale"),
            ({"experiment": "table2", "scale": 2.0}, "scale"),
        ]:
            with pytest.raises(ServeError) as excinfo:
                client._json("POST", "/jobs", body)
            assert excinfo.value.http_status == 400
            assert fragment in str(excinfo.value)

    def test_submit_requires_json_object(self, client):
        import urllib.error
        import urllib.request

        for raw in (b"", b"[1, 2]", b"{not json"):
            request = urllib.request.Request(
                client.url + "/jobs", data=raw, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            assert b"JSON" in excinfo.value.read()

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.status("job-nope")
        assert excinfo.value.http_status == 404

    def test_result_of_pending_job_is_409(self, running_server, client):
        running_server.queue.pause_dispatch()  # keep it queued
        job = client.submit("table3", scale=0.02, seed=3)["job"]
        with pytest.raises(ServeError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.http_status == 409

    def test_cancel_queued_job_then_result_is_410(self, running_server, client):
        running_server.queue.pause_dispatch()
        job = client.submit("table5", scale=0.02, seed=3)["job"]
        record = client.cancel(job["id"])
        assert record["state"] == "cancelled"
        with pytest.raises(ServeError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.http_status == 410

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._json("GET", "/nope")
        assert excinfo.value.http_status == 404

    def test_list_jobs(self, running_server, client):
        running_server.queue.pause_dispatch()
        client.submit("table2", scale=0.02, seed=3)
        client.submit("table3", scale=0.02, seed=3)
        jobs = client.list_jobs()
        assert len(jobs) == 2
        assert {j["spec"]["experiment"] for j in jobs} == {"table2", "table3"}

    def test_error_body_carries_structured_code(self, client):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            client.url + "/jobs/job-nope", method="GET"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        body = json.loads(excinfo.value.read())
        assert body["code"] == "SERVE"
        assert body["error"].startswith("error[SERVE]:")

    def test_unreachable_service_is_a_structured_error(self):
        client = ServeClient("http://127.0.0.1:9", timeout_s=1.0)
        with pytest.raises(ServeError, match="cannot reach"):
            client.health()


class TestLongPoll:
    """``GET /jobs/<id>?wait=...`` parks on the queue's condition."""

    def test_wait_terminal_returns_done_job(self, client):
        job = client.submit("table2", scale=0.02, seed=7)["job"]
        record = client.wait_state(job["id"], "terminal", timeout_s=60)
        assert record["state"] == "done"

    def test_wait_running_satisfied_by_terminal(self, client):
        job = client.submit("table2", scale=0.02, seed=7)["job"]
        record = client.wait_state(job["id"], "running", timeout_s=60)
        assert record["state"] in ("running", "done")

    def test_wait_round_times_out_with_current_state(
        self, running_server, client
    ):
        running_server.queue.pause_dispatch()
        job = client.submit("table3", scale=0.02, seed=1)["job"]
        record = client.wait_state(job["id"], "terminal", timeout_s=0.1)
        assert record["state"] == "queued"

    def test_wait_unblocks_on_transition_not_polling(
        self, running_server, client
    ):
        """A waiter parked before the transition returns promptly after
        it — the coordination is the condition, not a sleep loop."""
        import threading

        running_server.queue.pause_dispatch()
        job = client.submit("table3", scale=0.02, seed=2)["job"]
        out = {}

        def wait() -> None:
            out["record"] = client.wait_state(
                job["id"], "terminal", timeout_s=30
            )

        waiter = threading.Thread(target=wait)
        waiter.start()
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        waiter.join(timeout=10)
        assert not waiter.is_alive()
        assert out["record"]["state"] == "cancelled"

    def test_bad_wait_target_is_400(self, client):
        job = client.submit("table2", scale=0.02, seed=7)["job"]
        with pytest.raises(ServeError) as excinfo:
            client.wait_state(job["id"], "sideways")
        assert excinfo.value.http_status == 400

    def test_bad_timeout_is_400(self, client):
        job = client.submit("table2", scale=0.02, seed=7)["job"]
        with pytest.raises(ServeError):
            client._json(
                "GET", f"/jobs/{job['id']}?wait=terminal&timeout_s=soup"
            )

    def test_wait_for_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.wait_state("job-nope", "terminal", timeout_s=1)
        assert excinfo.value.http_status == 404


class TestDrainRestore:
    def test_drain_journals_queued_and_restart_completes_them(self, tmp_path):
        state = str(tmp_path / "state")
        first = ExperimentServer(port=0, workers=1, state_dir=state)
        first.start()
        client = ServeClient(first.url)
        first.queue.pause_dispatch()  # hold everything queued
        ids = [
            client.submit(exp, scale=0.02, seed=3)["job"]["id"]
            for exp in ("table2", "table3", "table5")
        ]
        summary = first.drain()
        assert summary["journaled"] == 3

        second = ExperimentServer(port=0, workers=1, state_dir=state)
        second.start()
        try:
            assert second.restored_jobs == 3
            client2 = ServeClient(second.url)
            for job_id in ids:  # original ids survive the restart
                record = client2.wait(job_id, timeout_s=120)
                assert record["state"] == "done"
                assert client2.result(job_id)["render"]
            metrics = client2.metrics()
            assert metrics["counters"]["serve.jobs.restored"] == 3
            # journal consumed: a third start restores nothing
            assert JobJournalEmpty(state)
        finally:
            second.drain()

    def test_draining_server_rejects_submissions_with_503(self, tmp_path):
        server = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "state")
        )
        server.start()
        client = ServeClient(server.url)
        server.queue.reject_submissions("service is draining")
        with pytest.raises(ServeError) as excinfo:
            client.submit("table2", scale=0.02, seed=3)
        assert excinfo.value.http_status == 503
        server.drain()

    def test_drain_without_state_dir_journals_nothing(self):
        server = ExperimentServer(port=0, workers=1)
        server.start()
        summary = server.drain()
        assert summary["journaled"] == 0

    def test_drain_is_idempotent(self, tmp_path):
        server = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "state")
        )
        server.start()
        server.drain()
        summary = server.drain()
        assert summary["journaled"] == 0


def JobJournalEmpty(state_dir: str) -> bool:
    from repro.serve.journal import JobJournal

    return JobJournal(state_dir).load() == []


class TestRestoreValidation:
    def test_restore_skips_corrupt_spec_records(self, tmp_path):
        from repro.serve.journal import JobJournal
        from repro.serve.queue import JobQueue

        state = tmp_path / "state"
        queue = JobQueue()
        good = queue.submit(JobSpec("table2", 0.02, 3))[0]
        journal = JobJournal(state)
        journal.write_jobs([good])
        # hand-corrupt the spec: valid checksum, invalid experiment
        from repro.sim.checkpoint import journal_line

        bad = {
            "schema": 1,
            "id": "job-bad-0001",
            "spec": {"experiment": "not-an-experiment"},
            "digest": "x",
            "priority": 0,
            "submitted_unix": 0.0,
        }
        with journal.path.open("a") as handle:
            handle.write(journal_line(bad) + "\n")

        server = ExperimentServer(port=0, workers=1, state_dir=str(state))
        server.start()
        try:
            assert server.restored_jobs == 1
            assert server.queue.job(good.id).spec.experiment == "table2"
            with pytest.raises(ServeError):
                server.queue.job("job-bad-0001")
        finally:
            server.drain()
