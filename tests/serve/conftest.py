"""Fixtures for the experiment-service tests.

The replay cache is pointed at a session-scoped temp directory so serve
tests are hermetic (no cross-run cache reuse) while still sharing
replay work among themselves — the second serve test that runs a
``table2`` job hits the cache the first one populated.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.replay_cache import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_replay_cache(tmp_path_factory):
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(
        tmp_path_factory.mktemp("serve-replay-cache")
    )
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture
def running_server(tmp_path):
    """A started in-process daemon on an ephemeral port, drained on exit."""
    from repro.serve import ExperimentServer

    server = ExperimentServer(
        port=0, workers=2, state_dir=str(tmp_path / "state")
    )
    server.start()
    yield server
    server.drain()


@pytest.fixture
def client(running_server):
    """A client bound to the running server."""
    from repro.serve import ServeClient

    return ServeClient(running_server.url)
