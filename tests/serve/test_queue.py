"""Unit tests for the deduplicating priority queue (no engine runs)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import QueueFullError, ServeError
from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import JobSpec, JobState
from repro.serve.queue import JobQueue


def spec(seed: int, experiment: str = "table2") -> JobSpec:
    return JobSpec(experiment=experiment, scale=0.05, seed=seed)


@pytest.fixture
def registry():
    with _metrics.scoped_registry(MetricsRegistry()) as reg:
        yield reg


class TestDedup:
    def test_duplicate_submission_coalesces(self, registry):
        queue = JobQueue()
        job, deduped = queue.submit(spec(1))
        again, deduped2 = queue.submit(spec(1))
        assert not deduped and deduped2
        assert again is job
        assert job.submissions == 2
        assert registry.counters["serve.jobs.submitted"] == 1
        assert registry.counters["serve.jobs.deduped"] == 1

    def test_running_job_still_dedups(self):
        queue = JobQueue()
        job, _ = queue.submit(spec(1))
        assert queue.get(timeout=0) is job
        assert job.state is JobState.RUNNING
        again, deduped = queue.submit(spec(1))
        assert deduped and again is job

    def test_done_job_still_dedups(self):
        queue = JobQueue()
        job, _ = queue.submit(spec(1))
        queue.get(timeout=0)
        queue.finish(job, b"{}")
        again, deduped = queue.submit(spec(1))
        assert deduped and again is job

    def test_failed_job_releases_digest(self):
        queue = JobQueue()
        job, _ = queue.submit(spec(1))
        queue.get(timeout=0)
        queue.fail(job, RuntimeError("boom"))
        fresh, deduped = queue.submit(spec(1))
        assert not deduped and fresh is not job

    def test_cancelled_job_releases_digest(self):
        queue = JobQueue()
        job, _ = queue.submit(spec(1))
        queue.cancel(job.id)
        fresh, deduped = queue.submit(spec(1))
        assert not deduped and fresh is not job

    def test_distinct_specs_do_not_coalesce(self):
        queue = JobQueue()
        a, _ = queue.submit(spec(1))
        b, _ = queue.submit(spec(2))
        assert a is not b


class TestBackpressure:
    def test_queue_full_raises_429_with_retry_after(self, registry):
        queue = JobQueue(max_queued=2, retry_after_s=3.5)
        queue.submit(spec(1))
        queue.submit(spec(2))
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(spec(3))
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after_s == 3.5
        assert registry.counters["serve.jobs.rejected"] == 1

    def test_duplicates_never_count_against_the_bound(self):
        queue = JobQueue(max_queued=1)
        queue.submit(spec(1))
        _, deduped = queue.submit(spec(1))
        assert deduped

    def test_running_jobs_free_queue_slots(self):
        queue = JobQueue(max_queued=1)
        queue.submit(spec(1))
        queue.get(timeout=0)  # now running, slot free
        queue.submit(spec(2))

    def test_restore_bypasses_the_bound(self):
        queue = JobQueue(max_queued=1)
        queue.submit(spec(1))
        job, deduped = queue.submit(spec(2), enforce_bound=False)
        assert not deduped and job.state is JobState.QUEUED

    def test_bound_must_be_positive(self):
        with pytest.raises(ServeError):
            JobQueue(max_queued=0)


class TestDispatch:
    def test_priority_order_then_fifo(self):
        queue = JobQueue()
        low, _ = queue.submit(spec(1), priority=0)
        high, _ = queue.submit(spec(2), priority=10)
        also_low, _ = queue.submit(spec(3), priority=0)
        order = [queue.get(timeout=0) for _ in range(3)]
        assert order == [high, low, also_low]

    def test_get_times_out_empty(self):
        assert JobQueue().get(timeout=0.01) is None

    def test_get_skips_cancelled_jobs(self):
        queue = JobQueue()
        a, _ = queue.submit(spec(1))
        b, _ = queue.submit(spec(2))
        queue.cancel(a.id)
        assert queue.get(timeout=0) is b
        assert queue.get(timeout=0) is None

    def test_get_wakes_on_submit(self):
        queue = JobQueue()
        got = []

        def waiter():
            got.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        job, _ = queue.submit(spec(1))
        thread.join(timeout=5.0)
        assert got == [job]

    def test_pause_dispatch_keeps_jobs_queued(self):
        queue = JobQueue()
        job, _ = queue.submit(spec(1))
        queue.pause_dispatch()
        assert queue.get(timeout=0.01) is None
        assert job.state is JobState.QUEUED
        assert queue.queued_jobs() == [job]


class TestControl:
    def test_cancel_requires_queued(self):
        queue = JobQueue()
        job, _ = queue.submit(spec(1))
        queue.get(timeout=0)
        with pytest.raises(ServeError) as excinfo:
            queue.cancel(job.id)
        assert excinfo.value.http_status == 409

    def test_unknown_job_is_404(self):
        with pytest.raises(ServeError) as excinfo:
            JobQueue().job("job-nope")
        assert excinfo.value.http_status == 404

    def test_reject_submissions_is_503(self):
        queue = JobQueue()
        queue.reject_submissions("draining")
        with pytest.raises(ServeError) as excinfo:
            queue.submit(spec(1))
        assert excinfo.value.http_status == 503

    def test_counts_and_describe(self):
        queue = JobQueue()
        a, _ = queue.submit(spec(1))
        queue.submit(spec(2))
        queue.get(timeout=0)
        queue.finish(a, b"{}")
        counts = queue.counts()
        assert counts["done"] == 1 and counts["queued"] == 1
        records = queue.describe()
        assert len(records) == 2
        assert {r["state"] for r in records} == {"done", "queued"}

    def test_executed_counter_counts_finishes(self, registry):
        queue = JobQueue()
        a, _ = queue.submit(spec(1))
        queue.get(timeout=0)
        queue.finish(a, b"{}")
        assert registry.counters["serve.jobs.executed"] == 1
        assert registry.gauges["serve.queue.depth"] == 0
