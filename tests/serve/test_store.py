"""Tests for the content-addressed result store (fleet dedup substrate)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ServeError
from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry
from repro.serve.store import (
    STORE_DIR_ENV,
    STORE_MAGIC,
    STORE_MAX_MB_ENV,
    STORE_URL_ENV,
    FileResultStore,
    HTTPResultStore,
    check_digest,
    resolve_store,
    store_max_bytes,
)

DIGEST = "ab" * 16


class TestDigestValidation:
    def test_hex_digests_pass(self):
        assert check_digest(DIGEST) == DIGEST

    @pytest.mark.parametrize("bad", [
        "", "short", "../../etc/passwd", "ABCDEF00" * 4, "xy" * 16,
        "a" * 7, 123,
    ])
    def test_bad_digests_rejected(self, bad):
        with pytest.raises(ServeError):
            check_digest(bad)


class TestFileStore:
    def test_roundtrip(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        assert store.get(DIGEST) is None
        store.put(DIGEST, b'{"x":1}')
        assert store.get(DIGEST) == b'{"x":1}'

    def test_entries_are_checksummed_containers(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(DIGEST, b"payload")
        blob = (tmp_path / f"{DIGEST}.res").read_bytes()
        assert blob.startswith(STORE_MAGIC)
        assert blob.endswith(b"payload")

    def test_corrupt_entry_quarantined_not_returned(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(DIGEST, b"payload")
        path = tmp_path / f"{DIGEST}.res"
        path.write_bytes(path.read_bytes()[:-2] + b"xx")
        with _metrics.scoped_registry() as registry:
            assert store.get(DIGEST) is None
        assert not path.exists(), "corrupt entry must be quarantined"
        assert registry.snapshot()["counters"]["serve.store.corrupt"] == 1

    def test_truncated_entry_quarantined(self, tmp_path):
        store = FileResultStore(tmp_path)
        (tmp_path / f"{DIGEST}.res").write_bytes(b"RS")
        assert store.get(DIGEST) is None
        assert not (tmp_path / f"{DIGEST}.res").exists()

    def test_put_failure_degrades_without_raising(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("x")
        store = FileResultStore(blocked / "store")
        with _metrics.scoped_registry() as registry:
            store.put(DIGEST, b"payload")  # must not raise
        assert registry.snapshot()["counters"]["serve.store.errors"] == 1

    def test_counters(self, tmp_path):
        store = FileResultStore(tmp_path)
        with _metrics.scoped_registry() as registry:
            store.get(DIGEST)
            store.put(DIGEST, b"p")
            store.get(DIGEST)
        counters = registry.snapshot()["counters"]
        assert counters["serve.store.misses"] == 1
        assert counters["serve.store.stores"] == 1
        assert counters["serve.store.hits"] == 1

    def test_stats(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(DIGEST, b"payload")
        stats = store.stats()
        assert stats["backend"] == "file"
        assert stats["entries"] == 1
        assert stats["total_bytes"] > len(b"payload")


class TestResolveStore:
    def test_unconfigured_is_none(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        monkeypatch.delenv(STORE_URL_ENV, raising=False)
        assert resolve_store() is None

    def test_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        store = resolve_store()
        assert isinstance(store, FileResultStore)
        assert store.root == tmp_path

    def test_url_env(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1/")
        store = resolve_store()
        assert isinstance(store, HTTPResultStore)
        assert store.url == "http://127.0.0.1:1"

    def test_dir_wins_over_url(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1")
        assert isinstance(resolve_store(), FileResultStore)

    def test_arguments_win_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1")
        store = resolve_store(store_dir=str(tmp_path))
        assert isinstance(store, FileResultStore)


class TestHTTPStore:
    """The remote backend against a live daemon's /store endpoints."""

    @pytest.fixture
    def stored_server(self, tmp_path):
        from repro.serve import ExperimentServer

        server = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "state"),
            store_dir=str(tmp_path / "store"),
        )
        server.start()
        yield server
        server.drain()

    def test_roundtrip_over_http(self, stored_server):
        remote = HTTPResultStore(stored_server.url)
        assert remote.get(DIGEST) is None
        remote.put(DIGEST, b'{"y":2}')
        assert remote.get(DIGEST) == b'{"y":2}'
        # and it landed in the server's file store
        assert stored_server.store.get(DIGEST) == b'{"y":2}'

    def test_unreachable_backend_degrades_to_none(self):
        remote = HTTPResultStore("http://127.0.0.1:1", timeout_s=0.2)
        with _metrics.scoped_registry() as registry:
            assert remote.get(DIGEST) is None
            remote.put(DIGEST, b"p")  # must not raise
        assert registry.snapshot()["counters"]["serve.store.errors"] == 2

    def test_store_endpoints_without_store_are_503(self, running_server):
        from repro.serve import ServeClient

        client = ServeClient(running_server.url)
        with pytest.raises(ServeError) as info:
            client.store_get(DIGEST)
        assert info.value.http_status == 503

    def test_health_reports_store_stats(self, stored_server):
        from repro.serve import ServeClient

        health = ServeClient(stored_server.url).health()
        assert health["store"]["backend"] == "file"

    def test_worker_publishes_and_consumes(self, tmp_path):
        """Two daemons sharing a store directory: the second satisfies a
        duplicate spec from the store without executing it."""
        from repro.serve import ExperimentServer, ServeClient
        from repro.serve.jobs import normalize_spec, spec_digest

        store_dir = str(tmp_path / "store")
        spec = {"experiment": "table2", "scale": 0.02, "seed": 5}
        digest = spec_digest(normalize_spec(spec))

        first = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "a"),
            store_dir=store_dir,
        ).start()
        try:
            client = ServeClient(first.url)
            job = client.submit(**spec)["job"]
            assert client.wait(job["id"], timeout_s=120)["state"] == "done"
            payload = client.result_bytes(job["id"])
            assert first.store.get(digest) == payload
        finally:
            first.drain()

        second = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "b"),
            store_dir=store_dir,
        ).start()
        try:
            client = ServeClient(second.url)
            job = client.submit(**spec)["job"]
            assert client.wait(job["id"], timeout_s=120)["state"] == "done"
            assert client.result_bytes(job["id"]) == payload
            counters = client.metrics()["counters"]
            assert counters.get("serve.jobs.executed", 0) == 0
            assert counters["serve.jobs.store_satisfied"] == 1
            assert counters["serve.store.hits"] == 1
        finally:
            second.drain()


def _digest(index: int) -> str:
    return f"{index:032x}"


def _fill(root, count: int, payload_bytes: int = 1000):
    """Seed ``count`` entries with strictly increasing mtimes via an
    unbounded writer (its live set is irrelevant to later instances)."""
    import time as _time

    writer = FileResultStore(root, max_bytes=None)
    base = _time.time() - 1000.0
    for index in range(count):
        writer.put(_digest(index), b"x" * payload_bytes)
        path = root / f"{_digest(index)}.res"
        os.utime(path, times=(base + index, base + index))
    return writer


class TestStoreGC:
    @pytest.mark.parametrize("raw,expected", [
        ("", None), ("  ", None), ("nan-ish", None), ("0", None),
        ("-3", None), ("2", 2 * 1024 * 1024), ("0.5", 512 * 1024),
    ])
    def test_store_max_bytes_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv(STORE_MAX_MB_ENV, raw)
        assert store_max_bytes() == expected

    def test_store_max_bytes_unset(self, monkeypatch):
        monkeypatch.delenv(STORE_MAX_MB_ENV, raising=False)
        assert store_max_bytes() is None

    def test_env_cap_picked_up_by_constructor(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_MAX_MB_ENV, "1")
        assert FileResultStore(tmp_path).max_bytes == 1024 * 1024
        assert FileResultStore(tmp_path, max_bytes=42).max_bytes == 42

    def test_put_evicts_oldest_until_under_cap(self, tmp_path):
        # Entries are ~1020 bytes packed; a 2.5 KB cap holds two.
        _fill(tmp_path, 4)
        store = FileResultStore(tmp_path, max_bytes=2500)
        with _metrics.scoped_registry() as registry:
            store.put(_digest(4), b"x" * 1000)
            counters = registry.snapshot()["counters"]
        # Oldest three evicted; the newest old entry and the fresh
        # write survive.
        survivors = sorted(p.name for p in tmp_path.glob("*.res"))
        assert survivors == sorted(
            [f"{_digest(3)}.res", f"{_digest(4)}.res"]
        )
        assert store.evictions == 3
        assert counters.get("serve.store.evictions") == 3
        assert counters.get("serve.store.evicted_bytes", 0) > 0
        assert store.stats()["evictions"] == 3

    def test_own_writes_are_never_evicted(self, tmp_path):
        # A writer's own entries are all live: the cap is transiently
        # exceeded rather than ever losing a payload it produced.
        store = FileResultStore(tmp_path, max_bytes=1500)
        for index in range(4):
            store.put(_digest(index), b"x" * 1000)
        assert len(list(tmp_path.glob("*.res"))) == 4
        assert store.evictions == 0

    def test_read_marks_live_and_retouches(self, tmp_path):
        _fill(tmp_path, 3)
        store = FileResultStore(tmp_path, max_bytes=2500)
        # Reading the *oldest* entry protects it in two independent
        # ways: it joins this store's live set, and its mtime is
        # re-touched to now (LRU recency).
        assert store.get(_digest(0)) == b"x" * 1000
        store.put(_digest(3), b"x" * 1000)
        names = {p.name for p in tmp_path.glob("*.res")}
        assert f"{_digest(0)}.res" in names
        assert f"{_digest(3)}.res" in names

    def test_pinned_digest_never_evicted(self, tmp_path):
        _fill(tmp_path, 4)
        store = FileResultStore(tmp_path, max_bytes=1500)
        store.pin(_digest(0))
        try:
            store.put(_digest(4), b"x" * 1000)
            names = {p.name for p in tmp_path.glob("*.res")}
            assert f"{_digest(0)}.res" in names  # oldest, but pinned
            assert f"{_digest(4)}.res" in names  # just written (live)
        finally:
            store.unpin(_digest(0))

    def test_pin_refcounts(self, tmp_path):
        store = FileResultStore(tmp_path, max_bytes=10)
        store.pin(DIGEST)
        store.pin(DIGEST)
        store.unpin(DIGEST)
        assert store.stats()["pinned"] == 1
        store.unpin(DIGEST)
        assert store.stats()["pinned"] == 0
        store.unpin(DIGEST)  # over-release is harmless
        assert store.stats()["pinned"] == 0


class TestStoreGCProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        pinned=st.sets(st.integers(min_value=0, max_value=5),
                       min_size=0, max_size=6),
        read=st.sets(st.integers(min_value=0, max_value=5),
                     min_size=0, max_size=6),
    )
    def test_live_and_pinned_digests_survive_any_eviction(
        self, tmp_path_factory, pinned, read
    ):
        """The GC safety contract: no pinned (in-flight) digest and no
        digest this store has served is ever evicted, whatever the cap
        pressure."""
        root = tmp_path_factory.mktemp("store-gc")
        _fill(root, 6)
        # A cap far below the directory's size forces maximal eviction.
        store = FileResultStore(root, max_bytes=1100)
        for index in pinned:
            store.pin(_digest(index))
        for index in read:
            assert store.get(_digest(index)) is not None
        try:
            store.put(_digest(99), b"x" * 1000)
            names = {p.name for p in root.glob("*.res")}
            assert f"{_digest(99)}.res" in names
            for index in pinned | read:
                assert f"{_digest(index)}.res" in names
        finally:
            for index in pinned:
                store.unpin(_digest(index))
