"""Tests for the content-addressed result store (fleet dedup substrate)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ServeError
from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry
from repro.serve.store import (
    STORE_DIR_ENV,
    STORE_MAGIC,
    STORE_URL_ENV,
    FileResultStore,
    HTTPResultStore,
    check_digest,
    resolve_store,
)

DIGEST = "ab" * 16


class TestDigestValidation:
    def test_hex_digests_pass(self):
        assert check_digest(DIGEST) == DIGEST

    @pytest.mark.parametrize("bad", [
        "", "short", "../../etc/passwd", "ABCDEF00" * 4, "xy" * 16,
        "a" * 7, 123,
    ])
    def test_bad_digests_rejected(self, bad):
        with pytest.raises(ServeError):
            check_digest(bad)


class TestFileStore:
    def test_roundtrip(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        assert store.get(DIGEST) is None
        store.put(DIGEST, b'{"x":1}')
        assert store.get(DIGEST) == b'{"x":1}'

    def test_entries_are_checksummed_containers(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(DIGEST, b"payload")
        blob = (tmp_path / f"{DIGEST}.res").read_bytes()
        assert blob.startswith(STORE_MAGIC)
        assert blob.endswith(b"payload")

    def test_corrupt_entry_quarantined_not_returned(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(DIGEST, b"payload")
        path = tmp_path / f"{DIGEST}.res"
        path.write_bytes(path.read_bytes()[:-2] + b"xx")
        with _metrics.scoped_registry() as registry:
            assert store.get(DIGEST) is None
        assert not path.exists(), "corrupt entry must be quarantined"
        assert registry.snapshot()["counters"]["serve.store.corrupt"] == 1

    def test_truncated_entry_quarantined(self, tmp_path):
        store = FileResultStore(tmp_path)
        (tmp_path / f"{DIGEST}.res").write_bytes(b"RS")
        assert store.get(DIGEST) is None
        assert not (tmp_path / f"{DIGEST}.res").exists()

    def test_put_failure_degrades_without_raising(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("x")
        store = FileResultStore(blocked / "store")
        with _metrics.scoped_registry() as registry:
            store.put(DIGEST, b"payload")  # must not raise
        assert registry.snapshot()["counters"]["serve.store.errors"] == 1

    def test_counters(self, tmp_path):
        store = FileResultStore(tmp_path)
        with _metrics.scoped_registry() as registry:
            store.get(DIGEST)
            store.put(DIGEST, b"p")
            store.get(DIGEST)
        counters = registry.snapshot()["counters"]
        assert counters["serve.store.misses"] == 1
        assert counters["serve.store.stores"] == 1
        assert counters["serve.store.hits"] == 1

    def test_stats(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(DIGEST, b"payload")
        stats = store.stats()
        assert stats["backend"] == "file"
        assert stats["entries"] == 1
        assert stats["total_bytes"] > len(b"payload")


class TestResolveStore:
    def test_unconfigured_is_none(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        monkeypatch.delenv(STORE_URL_ENV, raising=False)
        assert resolve_store() is None

    def test_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        store = resolve_store()
        assert isinstance(store, FileResultStore)
        assert store.root == tmp_path

    def test_url_env(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1/")
        store = resolve_store()
        assert isinstance(store, HTTPResultStore)
        assert store.url == "http://127.0.0.1:1"

    def test_dir_wins_over_url(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1")
        assert isinstance(resolve_store(), FileResultStore)

    def test_arguments_win_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_URL_ENV, "http://127.0.0.1:1")
        store = resolve_store(store_dir=str(tmp_path))
        assert isinstance(store, FileResultStore)


class TestHTTPStore:
    """The remote backend against a live daemon's /store endpoints."""

    @pytest.fixture
    def stored_server(self, tmp_path):
        from repro.serve import ExperimentServer

        server = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "state"),
            store_dir=str(tmp_path / "store"),
        )
        server.start()
        yield server
        server.drain()

    def test_roundtrip_over_http(self, stored_server):
        remote = HTTPResultStore(stored_server.url)
        assert remote.get(DIGEST) is None
        remote.put(DIGEST, b'{"y":2}')
        assert remote.get(DIGEST) == b'{"y":2}'
        # and it landed in the server's file store
        assert stored_server.store.get(DIGEST) == b'{"y":2}'

    def test_unreachable_backend_degrades_to_none(self):
        remote = HTTPResultStore("http://127.0.0.1:1", timeout_s=0.2)
        with _metrics.scoped_registry() as registry:
            assert remote.get(DIGEST) is None
            remote.put(DIGEST, b"p")  # must not raise
        assert registry.snapshot()["counters"]["serve.store.errors"] == 2

    def test_store_endpoints_without_store_are_503(self, running_server):
        from repro.serve import ServeClient

        client = ServeClient(running_server.url)
        with pytest.raises(ServeError) as info:
            client.store_get(DIGEST)
        assert info.value.http_status == 503

    def test_health_reports_store_stats(self, stored_server):
        from repro.serve import ServeClient

        health = ServeClient(stored_server.url).health()
        assert health["store"]["backend"] == "file"

    def test_worker_publishes_and_consumes(self, tmp_path):
        """Two daemons sharing a store directory: the second satisfies a
        duplicate spec from the store without executing it."""
        from repro.serve import ExperimentServer, ServeClient
        from repro.serve.jobs import normalize_spec, spec_digest

        store_dir = str(tmp_path / "store")
        spec = {"experiment": "table2", "scale": 0.02, "seed": 5}
        digest = spec_digest(normalize_spec(spec))

        first = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "a"),
            store_dir=store_dir,
        ).start()
        try:
            client = ServeClient(first.url)
            job = client.submit(**spec)["job"]
            assert client.wait(job["id"], timeout_s=120)["state"] == "done"
            payload = client.result_bytes(job["id"])
            assert first.store.get(digest) == payload
        finally:
            first.drain()

        second = ExperimentServer(
            port=0, workers=1, state_dir=str(tmp_path / "b"),
            store_dir=store_dir,
        ).start()
        try:
            client = ServeClient(second.url)
            job = client.submit(**spec)["job"]
            assert client.wait(job["id"], timeout_s=120)["state"] == "done"
            assert client.result_bytes(job["id"]) == payload
            counters = client.metrics()["counters"]
            assert counters.get("serve.jobs.executed", 0) == 0
            assert counters["serve.jobs.store_satisfied"] == 1
            assert counters["serve.store.hits"] == 1
        finally:
            second.drain()
