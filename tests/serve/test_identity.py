"""Cross-shard byte-identity proofs (subprocess fleets).

The fleet's core contract: sharding is a *placement* decision, never a
*results* decision.  The same job mix must yield byte-identical
canonical-JSON payloads per ``spec_digest`` at every shard count —
including under a duplicate storm and across a mid-run shard
SIGTERM/restart.

Ground truth is :func:`repro.serve.jobs.execute_spec` run in this
process: the exact engine path the daemons use, so any divergence is
introduced by the fleet topology, which is what these tests pin.

The restart test paces jobs through the ``REPRO_SERVE_JOB_HOOK`` seam
(the serve-side sibling of the PR-3 fault hook) so the bounce provably
lands mid-run, with jobs queued and in flight.

Marked ``serial``: every test spawns real daemon subprocesses.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ServeError
from repro.serve import Fleet, ServeClient
from repro.serve.executor import JOB_HOOK_ENV
from repro.serve.jobs import JobSpec, execute_spec, normalize_spec, spec_digest
from repro.loadgen.pacing import SERVICE_MS_ENV

pytestmark = pytest.mark.serial

SPECS = [
    {"experiment": "table2", "scale": 0.02, "seed": seed}
    for seed in range(6)
]


def _digest(spec: dict) -> str:
    return spec_digest(normalize_spec(dict(spec)))


@pytest.fixture(scope="module")
def ground_truth():
    """digest -> payload bytes from the in-process engine path."""
    return {
        _digest(spec): execute_spec(
            JobSpec(spec["experiment"], spec["scale"], spec["seed"])
        )
        for spec in SPECS
    }


def _payloads_via_fleet(shards: int, root, specs) -> dict:
    """Run every spec through a fresh fleet; digest -> payload bytes."""
    with Fleet(shards=shards, root=str(root), workers=2) as fleet:
        client = ServeClient(fleet.url)
        ids = {
            _digest(spec): client.submit(**spec)["job"]["id"]
            for spec in specs
        }
        out = {}
        for digest, job_id in ids.items():
            record = client.wait(job_id, timeout_s=120)
            assert record["state"] == "done", record
            out[digest] = client.result_bytes(job_id)
        return out


class TestShardCountIdentity:
    def test_1_2_4_shards_are_byte_identical(self, tmp_path, ground_truth):
        for shards in (1, 2, 4):
            got = _payloads_via_fleet(
                shards, tmp_path / f"fleet{shards}", SPECS
            )
            assert got == ground_truth, (
                f"{shards}-shard fleet diverged from the engine"
            )

    def test_payloads_are_canonical_json(self, ground_truth):
        for payload in ground_truth.values():
            decoded = json.loads(payload)
            canonical = json.dumps(
                decoded, sort_keys=True, separators=(",", ":")
            ).encode()
            assert payload == canonical


class TestDuplicateStorm:
    FAN_IN = 4  # concurrent submitters per distinct spec

    def test_storm_coalesces_and_stays_identical(
        self, tmp_path, ground_truth
    ):
        with Fleet(shards=2, root=str(tmp_path), workers=2) as fleet:
            client = ServeClient(fleet.url)
            plan = [dict(spec) for spec in SPECS for _ in range(self.FAN_IN)]
            responses = [None] * len(plan)
            barrier = threading.Barrier(len(plan))

            def submit(index: int) -> None:
                barrier.wait()
                responses[index] = client.submit(**plan[index])

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(len(plan))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert all(r is not None for r in responses)

            # the router + per-shard queue coalesced every duplicate
            ids_by_digest = {}
            for response, spec in zip(responses, plan):
                ids_by_digest.setdefault(_digest(spec), set()).add(
                    response["job"]["id"]
                )
            for digest, ids in ids_by_digest.items():
                assert len(ids) == 1, f"digest {digest} split into {ids}"

            for digest, ids in ids_by_digest.items():
                job_id = ids.pop()
                assert client.wait(job_id, timeout_s=120)["state"] == "done"
                assert client.result_bytes(job_id) == ground_truth[digest]

            # fleet-wide: one computation per digest, however it was
            # satisfied (executed on a shard, or served from the store)
            counters = client.metrics()["counters"]
            computed = counters.get("serve.jobs.executed", 0)
            from_store = counters.get("serve.jobs.store_satisfied", 0)
            assert computed + from_store == len(SPECS)
            assert counters["serve.jobs.deduped"] == (
                len(plan) - len(SPECS)
            )


class TestShardRestartMidRun:
    def test_sigterm_restart_loses_no_accepted_result(
        self, tmp_path, ground_truth
    ):
        """Bounce shard 0 while the fleet is busy; every accepted job's
        result is still reachable and byte-identical afterwards.

        Jobs paced to 150ms through the job-hook seam guarantee the
        restart lands with work queued and in flight.  After the bounce
        a job id either survives (journaled and restored under its
        original id) or — if it finished before the drain — its result
        is served from the shared store on resubmission without
        recomputation changing a byte.
        """
        pacing = {JOB_HOOK_ENV: "repro.loadgen.pacing:emulate_service_time",
                  SERVICE_MS_ENV: "150"}
        with Fleet(
            shards=2, root=str(tmp_path), workers=1, extra_env=pacing
        ) as fleet:
            client = ServeClient(fleet.url)
            ids = {
                _digest(spec): client.submit(**spec)["job"]["id"]
                for spec in SPECS
            }

            fleet.restart_shard(0)  # SIGTERM -> drain -> journal -> restore

            recovered = {}
            resubmitted = 0
            for spec in SPECS:
                digest = _digest(spec)
                try:
                    record = client.wait(ids[digest], timeout_s=120)
                    job_id = ids[digest]
                except ServeError as error:
                    # finished-then-drained: the id died with the old
                    # process, but the result lives in the shared store
                    assert error.http_status == 404, error
                    job_id = client.submit(**spec)["job"]["id"]
                    resubmitted += 1
                    record = client.wait(job_id, timeout_s=120)
                assert record["state"] == "done", record
                recovered[digest] = client.result_bytes(job_id)

            assert recovered == ground_truth
            counters = client.metrics()["counters"]
            if resubmitted:
                # resubmissions must be store hits, not recomputations
                assert counters.get(
                    "serve.jobs.store_satisfied", 0
                ) >= resubmitted
