"""Unit tests for the drain journal (durability, corruption handling)."""

from __future__ import annotations

from repro.serve.jobs import JobSpec, spec_digest
from repro.serve.journal import JOB_JOURNAL_NAME, JobJournal
from repro.serve.queue import JobQueue


def queued(seeds):
    queue = JobQueue()
    return [queue.submit(JobSpec("table2", 0.05, s))[0] for s in seeds]


class TestJournal:
    def test_round_trip(self, tmp_path):
        jobs = queued([1, 2, 3])
        journal = JobJournal(tmp_path)
        assert journal.write_jobs(jobs) == 3
        records = JobJournal(tmp_path).load()
        assert [r["id"] for r in records] == [j.id for j in jobs]
        assert [r["priority"] for r in records] == [0, 0, 0]
        for record, job in zip(records, jobs):
            assert record["spec"] == job.spec.as_dict()
            assert record["digest"] == spec_digest(job.spec)

    def test_empty_load(self, tmp_path):
        assert JobJournal(tmp_path).load() == []

    def test_rewrite_replaces_previous_journal(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_jobs(queued([1, 2]))
        journal.write_jobs(queued([3]))
        records = journal.load()
        assert len(records) == 1
        assert records[0]["spec"]["seed"] == 3

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_jobs(queued([1, 2]))
        path = tmp_path / JOB_JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines.insert(1, '{"check": "00000000", "payload": {"id": "x"}}')
        lines.append("not json at all")
        path.write_text("\n".join(lines) + "\n")
        fresh = JobJournal(tmp_path)
        records = fresh.load()
        assert len(records) == 2  # the two genuine jobs survive
        assert fresh.skipped_corrupt == 2

    def test_truncated_tail_loses_only_that_line(self, tmp_path):
        # a torn write (crash mid-line) must not poison earlier records
        journal = JobJournal(tmp_path)
        journal.write_jobs(queued([1, 2]))
        path = tmp_path / JOB_JOURNAL_NAME
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        fresh = JobJournal(tmp_path)
        assert len(fresh.load()) == 1
        assert fresh.skipped_corrupt == 1

    def test_unknown_schema_skipped(self, tmp_path):
        from repro.sim.checkpoint import journal_line

        path = tmp_path / JOB_JOURNAL_NAME
        record = {"schema": 999, "id": "job-x", "spec": {"experiment": "t"}}
        path.write_text(journal_line(record) + "\n")
        fresh = JobJournal(tmp_path)
        assert fresh.load() == []
        assert fresh.skipped_corrupt == 1

    def test_write_creates_directory(self, tmp_path):
        journal = JobJournal(tmp_path / "deep" / "state")
        journal.write_jobs(queued([1]))
        assert journal.path.is_file()

    def test_no_temp_files_left_behind(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_jobs(queued([1, 2, 3]))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_clear(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.write_jobs(queued([1]))
        journal.clear()
        assert journal.load() == []
        journal.clear()  # idempotent
