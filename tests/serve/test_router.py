"""Tests for the multiplexed fleet front end (in-process fleets).

Marked ``serial`` like the other fleet tests: each case runs real
daemons and a router event loop in this process.

Metrics note: in-process shards share the process-global obs registry
(the last-started shard's registry collects module-level counters), so
fleet-wide job accounting here is asserted through the *router's*
aggregated ``/metrics`` — which is also the interface operators get.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import DegradedError, ServeError
from repro.serve import InProcessFleet, ServeClient
from repro.serve.ring import HashRing
from repro.serve.router import ShardRouter

pytestmark = pytest.mark.serial


@pytest.fixture(scope="module")
def fleet():
    with InProcessFleet(shards=3, workers=1) as running:
        yield running


@pytest.fixture
def router_client(fleet):
    return ServeClient(fleet.url)


class TestRouting:
    def test_submission_lands_on_ring_owner(self, fleet, router_client):
        from repro.serve.jobs import normalize_spec, spec_digest

        response = router_client.submit("table2", scale=0.02, seed=21)
        job = response["job"]
        digest = spec_digest(normalize_spec(
            {"experiment": "table2", "scale": 0.02, "seed": 21}
        ))
        assert job["digest"] == digest
        owner = HashRing(fleet.shard_urls).node_for(digest)
        # the owning shard knows the job locally; the others do not
        assert ServeClient(owner).status(job["id"])["id"] == job["id"]
        record = router_client.wait(job["id"], timeout_s=120)
        assert record["state"] == "done"

    def test_duplicates_dedup_through_the_router(self, router_client):
        first = router_client.submit("table2", scale=0.02, seed=22)
        second = router_client.submit("table2", scale=0.02, seed=22)
        assert second["deduped"] is True
        assert second["job"]["id"] == first["job"]["id"]

    def test_result_bytes_proxied_verbatim(self, fleet, router_client):
        job = router_client.submit("table2", scale=0.02, seed=23)["job"]
        assert router_client.wait(job["id"], timeout_s=120)["state"] == "done"
        via_router = router_client.result_bytes(job["id"])
        home = next(
            url for url in fleet.shard_urls
            if _knows(url, job["id"])
        )
        assert via_router == ServeClient(home).result_bytes(job["id"])
        # canonical JSON survives the hop
        payload = json.loads(via_router)
        assert payload["experiment"] == "table2"

    def test_unknown_job_404_after_fanout(self, router_client):
        with pytest.raises(ServeError) as excinfo:
            router_client.status("job-nope")
        assert excinfo.value.http_status == 404

    def test_unknown_endpoint_404(self, router_client):
        with pytest.raises(ServeError) as excinfo:
            router_client._json("GET", "/nope")
        assert excinfo.value.http_status == 404

    def test_cancel_routes_by_home(self, fleet, router_client):
        for server in fleet.servers:
            server.queue.pause_dispatch()
        try:
            job = router_client.submit("table6", scale=0.02, seed=24)["job"]
            record = router_client.cancel(job["id"])
            assert record["state"] == "cancelled"
        finally:
            for server in fleet.servers:
                server.queue.resume_dispatch()

    def test_store_endpoint_routed_by_digest(self, fleet, router_client):
        digest = "fe" * 16
        router_client.store_put(digest, b'{"routed":1}')
        assert router_client.store_get(digest) == b'{"routed":1}'
        # it exists exactly once, in the shared store
        assert fleet.store.get(digest) == b'{"routed":1}'


class TestAggregation:
    def test_health_aggregates_every_shard(self, fleet, router_client):
        health = router_client.health()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert set(health["shards"]) == set(fleet.shard_urls)
        assert health["ring"]["nodes"] == list(fleet.shard_urls)

    def test_metrics_merge_and_per_shard_counters(self, router_client):
        router_client.submit("table2", scale=0.02, seed=25)
        snapshot = router_client.metrics()
        counters = snapshot["counters"]
        assert counters["serve.router.requests"] >= 1
        assert counters.get("serve.jobs.submitted", 0) >= 1
        assert any(
            name.startswith("serve.shard.") and name.endswith(".routed")
            for name in counters
        )
        gauges = snapshot["gauges"]
        ups = [gauges.get(f"serve.shard.{i}.up") for i in range(3)]
        assert ups == [1, 1, 1]

    def test_list_jobs_fans_out_with_shard_tags(
        self, fleet, router_client
    ):
        router_client.submit("table2", scale=0.02, seed=26)
        jobs = router_client.list_jobs()
        assert jobs, "fan-out listing lost the fleet's jobs"
        assert all(job["shard"] in fleet.shard_urls for job in jobs)


class TestWaitCoalescing:
    def test_concurrent_waiters_share_one_upstream_poll(
        self, fleet, router_client
    ):
        for server in fleet.servers:
            server.queue.pause_dispatch()
        try:
            job = router_client.submit("table5", scale=0.02, seed=27)["job"]
            results = [None] * 6

            def router_requests() -> int:
                snapshot = fleet.router.registry.snapshot()
                return snapshot["counters"].get("serve.router.requests", 0)

            baseline = router_requests()

            def wait(index: int) -> None:
                results[index] = router_client.wait_state(
                    job["id"], "terminal", timeout_s=15
                )

            threads = [
                threading.Thread(target=wait, args=(i,))
                for i in range(len(results))
            ]
            for thread in threads:
                thread.start()
            # Every wait request is parked at the router (the job cannot
            # transition while dispatch is paused) before we cancel, so
            # the followers provably coalesce onto the first upstream
            # long-poll rather than racing the terminal transition.
            deadline = time.monotonic() + 10.0
            while router_requests() < baseline + len(results):
                assert time.monotonic() < deadline, "waiters never arrived"
                time.sleep(0.01)
            router_client.cancel(job["id"])
            for thread in threads:
                thread.join(timeout=30)
            assert all(r is not None for r in results)
            assert {r["state"] for r in results} == {"cancelled"}
            counters = router_client.metrics()["counters"]
            assert counters.get("serve.router.wait_coalesced", 0) >= 1
        finally:
            for server in fleet.servers:
                server.queue.resume_dispatch()


class TestDegradedFleet:
    def test_unreachable_shard_is_structured_degraded_503(self):
        # Heartbeats off: the dead shard stays in the ring, pinning the
        # "uncovered segment" window the DEGRADED contract describes.
        with InProcessFleet(shards=2, workers=1, heartbeat_s=0) as fleet:
            client = ServeClient(fleet.url)
            victim_url = fleet.shard_urls[0]
            # find a spec the ring places on the victim, then kill it
            seed = next(
                s for s in range(1000)
                if _owner(fleet, "table2", 0.02, s) == victim_url
            )
            fleet.servers[0].drain()
            health = client.health()
            assert health["status"] == "degraded"
            assert health["shards"][victim_url]["status"] == "unreachable"
            with pytest.raises(DegradedError) as excinfo:
                client.submit("table2", scale=0.02, seed=seed)
            # Structured and retryable: stable code, 503, Retry-After
            # parsed back off the wire — never a silent 502.
            assert excinfo.value.code == "DEGRADED"
            assert excinfo.value.http_status == 503
            assert excinfo.value.retry_after_s > 0
            counters = client.metrics()["counters"]
            assert counters.get("serve.router.shard_unreachable", 0) >= 1

    def test_ejection_remaps_and_rejoin_restores(self):
        # Fast failure detection: 0.2s heartbeat, eject after 2 misses.
        with InProcessFleet(
            shards=2, workers=1,
            heartbeat_s=0.2, heartbeat_timeout_s=0.3, eject_after=2,
        ) as fleet:
            client = ServeClient(fleet.url)
            victim_url = fleet.shard_urls[0]
            seed = next(
                s for s in range(1000)
                if _owner(fleet, "table2", 0.02, s) == victim_url
            )
            version0 = fleet.router.ring_version
            fleet.servers[0].drain()
            deadline = time.monotonic() + 15.0
            while victim_url in fleet.router.ring:
                assert time.monotonic() < deadline, "never ejected"
                time.sleep(0.05)
            # The victim's segment remapped: the same spec now routes
            # to the survivor and completes (store/dedup fleet intact).
            response = client.submit("table2", scale=0.02, seed=seed)
            record = client.wait(response["job"]["id"], timeout_s=60)
            assert record["state"] == "done"
            assert fleet.router.ring_version > version0
            ring = client.ring()
            assert ring["members"][victim_url]["in_ring"] is False
            # Resurrect the shard on a fresh server at the same URL is
            # not possible in-process; instead verify the admin join
            # endpoint restores membership explicitly.
            survivor = fleet.shard_urls[1]
            client.ring_leave(victim_url, forget=True)
            payload = client.ring()
            assert victim_url not in payload["members"]
            assert list(payload["ring"]["nodes"]) == [survivor]

    def test_last_shard_is_never_ejected(self):
        with InProcessFleet(
            shards=1, workers=1,
            heartbeat_s=0.2, heartbeat_timeout_s=0.3, eject_after=2,
        ) as fleet:
            client = ServeClient(fleet.url)
            only_url = fleet.shard_urls[0]
            fleet.servers[0].drain()
            time.sleep(1.2)  # several failed heartbeat rounds
            assert only_url in fleet.router.ring
            with pytest.raises(ServeError):
                fleet.router.remove_shard(only_url)

    def test_add_shard_joins_ring_and_serves(self):
        with InProcessFleet(shards=1, workers=1, heartbeat_s=0) as fleet:
            client = ServeClient(fleet.url)
            version0 = fleet.router.ring_version
            fleet.add_shard()
            assert len(fleet.router.ring) == 2
            assert fleet.router.ring_version == version0 + 1
            payload = client.ring()
            assert len(payload["ring"]["nodes"]) == 2
            # Work still routes and completes across the grown ring.
            for seed in range(4):
                response = client.submit("table2", scale=0.02, seed=seed)
                record = client.wait(response["job"]["id"], timeout_s=60)
                assert record["state"] == "done"

    def test_router_lifecycle_guards(self):
        with pytest.raises(ServeError):
            ShardRouter([])
        router = ShardRouter(["http://127.0.0.1:1"]).start()
        with pytest.raises(ServeError):
            router.start()
        router.stop()
        router.stop()  # idempotent


def _knows(url: str, job_id: str) -> bool:
    try:
        ServeClient(url).status(job_id)
        return True
    except ServeError:
        return False


def _owner(fleet, experiment: str, scale: float, seed: int) -> str:
    from repro.serve.jobs import normalize_spec, spec_digest

    digest = spec_digest(normalize_spec(
        {"experiment": experiment, "scale": scale, "seed": seed}
    ))
    return HashRing(fleet.shard_urls).node_for(digest)
