"""Load tests for the experiment service — the PR's acceptance proofs.

- a storm of concurrent duplicate + distinct submissions performs
  exactly one computation per digest (``serve.jobs.executed``) and
  every caller fetches byte-identical payload bytes;
- the queue bound produces 429 backpressure under a submission flood;
- SIGTERM on a loaded daemon drains gracefully: in-flight jobs finish,
  queued jobs are journaled, and a restarted daemon completes every one
  of them (zero loss).

Marked ``serial``: these tests drive real daemons (threads, sockets,
subprocesses, signals) and must not share a pytest process with
parallel friends.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import QueueFullError
from repro.serve import ExperimentServer, ServeClient

pytestmark = pytest.mark.serial

REPO = Path(__file__).resolve().parent.parent.parent


class TestDedupUnderLoad:
    N_THREADS = 12
    DISTINCT = 3  # seeds 0..2, four duplicate submitters each

    def test_one_computation_per_digest_and_identical_payloads(
        self, running_server
    ):
        client = ServeClient(running_server.url)
        responses = [None] * self.N_THREADS
        barrier = threading.Barrier(self.N_THREADS)

        def submit(index: int) -> None:
            barrier.wait()  # line every submitter up on the same instant
            responses[index] = client.submit(
                "table2", scale=0.02, seed=index % self.DISTINCT
            )

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        by_seed = {}
        for index, response in enumerate(responses):
            assert response is not None
            by_seed.setdefault(index % self.DISTINCT, set()).add(
                response["job"]["id"]
            )
        # every duplicate submitter was coalesced onto one job id
        for seed, ids in by_seed.items():
            assert len(ids) == 1, f"seed {seed} got {len(ids)} jobs"

        job_ids = [ids.pop() for ids in by_seed.values()]
        for job_id in job_ids:
            record = client.wait(job_id, timeout_s=120)
            assert record["state"] == "done"
            assert record["submissions"] == self.N_THREADS // self.DISTINCT

        # exactly one engine computation per distinct digest
        counters = client.metrics()["counters"]
        assert counters["serve.jobs.executed"] == self.DISTINCT
        assert counters["serve.jobs.submitted"] == self.DISTINCT
        assert (
            counters["serve.jobs.deduped"]
            == self.N_THREADS - self.DISTINCT
        )

        # every caller sees byte-identical payload bytes
        for job_id in job_ids:
            payloads = {client.result_bytes(job_id) for _ in range(4)}
            assert len(payloads) == 1


class TestBackpressure:
    def test_flood_beyond_bound_gets_429(self, tmp_path):
        server = ExperimentServer(
            port=0, workers=1, max_queued=3,
            state_dir=str(tmp_path / "state"),
        )
        server.start()
        try:
            server.queue.pause_dispatch()  # nothing drains during the flood
            client = ServeClient(server.url)
            accepted, rejected = 0, 0
            for seed in range(10):
                try:
                    client.submit("table2", scale=0.02, seed=seed)
                    accepted += 1
                except QueueFullError as error:
                    rejected += 1
                    assert error.retry_after_s > 0
            assert accepted == 3
            assert rejected == 7
            assert client.metrics()["counters"]["serve.jobs.rejected"] == 7
        finally:
            server.drain()


class TestSigtermDrain:
    def _start_daemon(self, state_dir: str, workers: int = 1):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers", str(workers),
                "--dir", state_dir,
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=str(REPO),
        )
        banner = proc.stdout.readline()
        match = re.search(r"(http://\S+)", banner)
        assert match, f"no URL in banner {banner!r} (stderr: {proc.stderr})"
        return proc, match.group(1)

    def test_sigterm_drains_with_zero_job_loss(self, tmp_path):
        state = str(tmp_path / "state")
        proc, url = self._start_daemon(state)
        client = ServeClient(url)
        ids = [
            client.submit("figure2", scale=0.05, seed=seed)["job"]["id"]
            for seed in range(5)
        ]
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert "drained:" in out

        # every accepted job either finished before the drain or sits in
        # the journal — none vanished
        from repro.serve.journal import JobJournal

        journaled = {r["id"] for r in JobJournal(state).load()}
        match = re.search(r"drained: (\d+) done, (\d+) queued", out)
        assert match, out
        done, queued = int(match.group(1)), int(match.group(2))
        assert len(journaled) == queued
        assert done + queued == len(ids)
        assert journaled <= set(ids)

        # restart: journaled jobs are restored and complete under their
        # original ids
        proc2, url2 = self._start_daemon(state)
        try:
            client2 = ServeClient(url2)
            for job_id in ids:
                if job_id not in journaled:
                    continue
                record = client2.wait(job_id, timeout_s=120)
                assert record["state"] == "done"
                payload = json.loads(client2.result_bytes(job_id))
                assert payload["experiment"] == "figure2"
            if journaled:
                counters = client2.metrics()["counters"]
                assert counters["serve.jobs.restored"] == len(journaled)
            assert JobJournal(state).load() == []  # consumed on restore
        finally:
            proc2.send_signal(signal.SIGTERM)
            out2, _ = proc2.communicate(timeout=120)
            assert proc2.returncode == 0

    def test_sigterm_lets_in_flight_job_finish(self, tmp_path):
        state = str(tmp_path / "state")
        proc, url = self._start_daemon(state)
        client = ServeClient(url)
        job_id = client.submit("table2", scale=0.02, seed=99)["job"]["id"]
        # long-poll until the worker has the job (or it already finished):
        # the server parks this request on its state-transition condition,
        # so there is no sleep/poll race between pickup and the drain
        record = client.wait_state(job_id, "running", timeout_s=30)
        assert record["state"] != "queued"
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        match = re.search(r"drained: (\d+) done, (\d+) queued", out)
        assert match, out
        assert int(match.group(1)) + int(match.group(2)) == 1
