"""Unit tests for job specs, digests and the job lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve.jobs import (
    Job,
    JobSpec,
    JobState,
    execute_spec,
    normalize_spec,
    spec_digest,
)


class TestNormalizeSpec:
    def test_minimal_spec(self):
        spec = normalize_spec({"experiment": "table2"})
        assert spec == JobSpec(experiment="table2", scale=1.0, seed=None)

    def test_full_spec(self):
        spec = normalize_spec(
            {"experiment": "figure1", "scale": 0.25, "seed": 7}
        )
        assert spec.experiment == "figure1"
        assert spec.scale == 0.25
        assert spec.seed == 7

    def test_priority_key_is_allowed_but_not_part_of_the_spec(self):
        spec = normalize_spec({"experiment": "table2", "priority": 5})
        assert "priority" not in spec.as_dict()

    def test_unknown_key_gets_did_you_mean(self):
        with pytest.raises(ServeError, match="scale"):
            normalize_spec({"experiment": "table2", "scal": 0.5})

    def test_unknown_experiment_gets_did_you_mean(self):
        with pytest.raises(ServeError, match="table2"):
            normalize_spec({"experiment": "tabel2"})

    def test_missing_experiment(self):
        with pytest.raises(ServeError, match="experiment"):
            normalize_spec({"scale": 0.5})

    @pytest.mark.parametrize("scale", [0.0, -1, 1.5, "big", True, float("nan")])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(ServeError):
            normalize_spec({"experiment": "table2", "scale": scale})

    @pytest.mark.parametrize("seed", [-1, 1.5, "x", True])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(ServeError):
            normalize_spec({"experiment": "table2", "seed": seed})

    def test_not_a_mapping(self):
        with pytest.raises(ServeError, match="JSON object"):
            normalize_spec(["table2"])


class TestSpecDigest:
    def test_same_spec_same_digest(self):
        a = normalize_spec({"experiment": "table2", "scale": 0.5, "seed": 1})
        b = normalize_spec({"seed": 1, "scale": 0.5, "experiment": "table2"})
        assert spec_digest(a) == spec_digest(b)

    def test_different_spec_different_digest(self):
        base = {"experiment": "table2", "scale": 0.5, "seed": 1}
        digests = {
            spec_digest(normalize_spec(base)),
            spec_digest(normalize_spec(dict(base, experiment="table3"))),
            spec_digest(normalize_spec(dict(base, scale=0.25))),
            spec_digest(normalize_spec(dict(base, seed=2))),
        }
        assert len(digests) == 4

    def test_digest_includes_cache_version(self, monkeypatch):
        import repro.sim.replay_cache as replay_cache

        spec = normalize_spec({"experiment": "table2"})
        before = spec_digest(spec)
        monkeypatch.setattr(
            replay_cache, "CACHE_VERSION", replay_cache.CACHE_VERSION + 1
        )
        assert spec_digest(spec) != before


class TestJobLifecycle:
    def _job(self):
        spec = JobSpec(experiment="table2", scale=0.05, seed=1)
        return Job(spec, spec_digest(spec))

    def test_ids_are_unique(self):
        ids = {self._job().id for _ in range(100)}
        assert len(ids) == 100

    def test_done_transition(self):
        job = self._job()
        assert job.state is JobState.QUEUED
        assert not job.wait(timeout=0)
        job.mark_running()
        assert job.state is JobState.RUNNING
        job.mark_done(b"{}")
        assert job.state is JobState.DONE
        assert job.wait(timeout=0)
        assert job.result_bytes == b"{}"

    def test_failed_records_structured_code(self):
        job = self._job()
        job.mark_failed(ServeError("boom"))
        assert job.state is JobState.FAILED
        assert job.error == "boom"
        assert job.error_code == "SERVE"

    def test_terminal_states(self):
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal

    def test_describe_is_json_ready(self):
        record = json.loads(json.dumps(self._job().describe()))
        assert record["state"] == "queued"
        assert record["spec"]["experiment"] == "table2"
        assert record["submissions"] == 1


class TestExecuteSpec:
    def test_payload_is_canonical_and_deterministic(self):
        spec = normalize_spec(
            {"experiment": "table2", "scale": 0.02, "seed": 3}
        )
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first == second  # byte-identical across runs
        payload = json.loads(first)
        assert payload["experiment"] == "table2"
        assert payload["digest"] == spec_digest(spec)
        assert "Table II" in payload["render"]
        # canonical serialisation: re-dumping reproduces the bytes
        assert (
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
            == first
        )

    def test_state_dir_checkpoints_cells(self, tmp_path):
        spec = normalize_spec(
            {"experiment": "figure1", "scale": 0.02, "seed": 3}
        )
        execute_spec(spec, state_dir=str(tmp_path))
        cells = tmp_path / "cells" / spec_digest(spec)
        assert cells.is_dir()
