"""Property tests for the consistent-hash ring (fleet routing).

The two properties the fleet design leans on:

- **near-uniform spread** — no shard owns a grossly outsized share of
  the digest space;
- **minimal remapping** — the consistent-hashing contract, checked
  *exactly*: adding a node only moves keys onto the new node (every
  other key keeps its owner), removing a node only moves that node's
  keys.  This is what lets a fleet grow or lose a shard without a
  global reshuffle.

Plus determinism (two rings from the same nodes agree everywhere —
required for the router and ShardedClient to compute identical
placement in different processes) and the constructor's rejection of
degenerate inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.serve.ring import (
    DEFAULT_RING_REPLICAS,
    HashRing,
    VersionedRing,
    _point,
    moved_keys,
)

# Node names shaped like real shard URLs; keys shaped like hex digests.
nodes_strategy = st.lists(
    st.integers(min_value=0, max_value=9999).map(
        lambda port: f"http://127.0.0.1:{10_000 + port}"
    ),
    min_size=1, max_size=8, unique=True,
)
keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1).map(
        lambda value: f"{value:016x}"
    ),
    min_size=1, max_size=300, unique=True,
)


class TestLookupBasics:
    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(
            ring.node_for(f"{i:x}") == "only" for i in range(50)
        )

    def test_empty_ring_rejected(self):
        with pytest.raises(ServeError):
            HashRing([])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ServeError):
            HashRing(["a", "b", "a"])

    def test_replicas_must_be_positive(self):
        with pytest.raises(ServeError):
            HashRing(["a"], replicas=0)

    def test_replicas_env_override(self, monkeypatch):
        from repro.serve.ring import RING_REPLICAS_ENV

        monkeypatch.setenv(RING_REPLICAS_ENV, "16")
        assert HashRing(["a"]).replicas == 16
        monkeypatch.setenv(RING_REPLICAS_ENV, "soup")
        with pytest.raises(ServeError):
            HashRing(["a"])

    def test_default_replicas(self):
        assert HashRing(["a"]).replicas == DEFAULT_RING_REPLICAS

    def test_without_unknown_node_rejected(self):
        with pytest.raises(ServeError):
            HashRing(["a"]).without_node("b")

    def test_len_and_contains(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring

    def test_describe_is_json_ready(self):
        import json

        description = HashRing(["a", "b"], replicas=8).describe()
        assert json.loads(json.dumps(description)) == description
        assert description["points"] == 16


@settings(max_examples=50, deadline=None)
@given(nodes=nodes_strategy, keys=keys_strategy)
def test_determinism_across_instances(nodes, keys):
    """Two rings built from the same nodes place every key identically
    — the router and a client-side ring must agree cross-process."""
    first, second = HashRing(nodes), HashRing(list(nodes))
    for key in keys:
        assert first.node_for(key) == second.node_for(key)


@settings(max_examples=50, deadline=None)
@given(nodes=nodes_strategy, keys=keys_strategy)
def test_every_key_lands_on_a_member(nodes, keys):
    ring = HashRing(nodes)
    for key in keys:
        assert ring.node_for(key) in ring.nodes
    assert sum(ring.spread(keys).values()) == len(keys)


@settings(max_examples=30, deadline=None)
@given(
    nodes=st.lists(
        st.integers(min_value=0, max_value=9999).map(
            lambda port: f"http://127.0.0.1:{10_000 + port}"
        ),
        min_size=2, max_size=6, unique=True,
    ),
)
def test_near_uniform_spread(nodes):
    """With many virtual nodes, no shard owns a grossly outsized share.

    The bound is loose (4x the fair share at 64 replicas over 2000
    keys) — the property guards against a broken placement (one shard
    owning ~everything), not against statistical wobble.
    """
    keys = [f"{i:016x}" for i in range(2000)]
    spread = HashRing(nodes).spread(keys)
    fair = len(keys) / len(nodes)
    assert max(spread.values()) <= 4 * fair
    assert min(spread.values()) >= fair / 8


@settings(max_examples=40, deadline=None)
@given(nodes=nodes_strategy, keys=keys_strategy, port=st.integers(0, 9999))
def test_join_moves_keys_only_to_the_new_node(nodes, keys, port):
    """The exact minimal-remapping contract on join: a key either keeps
    its owner or moves to the joining node — never to a third shard."""
    newcomer = f"http://10.0.0.1:{10_000 + port}"
    before = HashRing(nodes)
    after = before.with_node(newcomer)
    moved = 0
    for key in keys:
        old, new = before.node_for(key), after.node_for(key)
        if old != new:
            assert new == newcomer, (
                f"key {key} moved {old} -> {new}, not to the joiner"
            )
            moved += 1
    # Sanity ceiling: far fewer than all keys move (expected share is
    # 1/(N+1); allow generous slack for small samples).
    if len(keys) >= 100:
        assert moved <= 0.75 * len(keys)


@settings(max_examples=40, deadline=None)
@given(nodes=st.lists(
    st.integers(min_value=0, max_value=9999).map(
        lambda port: f"http://127.0.0.1:{10_000 + port}"
    ),
    min_size=2, max_size=8, unique=True,
), keys=keys_strategy)
def test_leave_moves_only_the_leavers_keys(nodes, keys):
    """On leave, every key owned by a surviving shard stays put."""
    ring = HashRing(nodes)
    leaver = nodes[0]
    shrunk = ring.without_node(leaver)
    for key in keys:
        old = ring.node_for(key)
        if old != leaver:
            assert shrunk.node_for(key) == old


@settings(max_examples=40, deadline=None)
@given(nodes=nodes_strategy, keys=keys_strategy, port=st.integers(0, 9999))
def test_join_then_leave_roundtrips(nodes, keys, port):
    newcomer = f"http://10.0.0.1:{10_000 + port}"
    ring = HashRing(nodes)
    roundtripped = ring.with_node(newcomer).without_node(newcomer)
    for key in keys:
        assert roundtripped.node_for(key) == ring.node_for(key)


def test_point_is_stable():
    """The circle placement is pinned: a silent hash change would remap
    every fleet's placement on upgrade."""
    assert _point("node#0") == _point("node#0")
    assert _point("a") != _point("b")
    assert 0 <= _point("anything") < 2**64


@settings(max_examples=40, deadline=None)
@given(nodes=nodes_strategy, port=st.integers(0, 9999))
def test_add_then_remove_is_identical_ring(nodes, port):
    """Add-then-remove round-trips to a structurally *identical* ring —
    not just same lookups on sampled keys: same points, same owners.
    Transient membership churn is therefore fully reversible."""
    newcomer = f"http://10.0.0.1:{10_000 + port}"
    ring = HashRing(nodes)
    assert ring.with_node(newcomer).without_node(newcomer) == ring


@settings(max_examples=40, deadline=None)
@given(nodes=st.lists(
    st.integers(min_value=0, max_value=9999).map(
        lambda port: f"http://127.0.0.1:{10_000 + port}"
    ),
    min_size=2, max_size=8, unique=True,
))
def test_removal_deletes_exactly_the_leavers_vnodes(nodes):
    """Shrink semantics at the vnode level: removing a shard deletes
    precisely its virtual nodes and no others — every survivor's point
    keeps its position and owner."""
    ring = HashRing(nodes)
    leaver = nodes[0]
    shrunk = ring.without_node(leaver)
    before = set(zip(ring._points, ring._owners))
    after = set(zip(shrunk._points, shrunk._owners))
    removed = before - after
    assert after <= before
    assert all(owner == leaver for _, owner in removed)
    assert len(removed) == ring.replicas


@settings(max_examples=40, deadline=None)
@given(nodes=st.lists(
    st.integers(min_value=0, max_value=9999).map(
        lambda port: f"http://127.0.0.1:{10_000 + port}"
    ),
    min_size=2, max_size=8, unique=True,
), keys=keys_strategy)
def test_moved_keys_only_involve_the_leaver(nodes, keys):
    """moved_keys() on a shrink reports exactly the departed shard's
    keys (minimal remap, observed through the diagnostic the router
    uses)."""
    ring = HashRing(nodes)
    leaver = nodes[0]
    shrunk = ring.without_node(leaver)
    moved = moved_keys(ring, shrunk, keys)
    assert set(moved) == {
        key for key in keys if ring.node_for(key) == leaver
    }


class TestVersionedRing:
    def test_version_increments_on_join_and_leave(self):
        ring = VersionedRing(["http://a:1", "http://b:2"])
        assert ring.version == 0
        grown = ring.join("http://c:3")
        assert grown.version == 1
        shrunk = grown.leave("http://c:3")
        assert shrunk.version == 2
        # The underlying ring round-trips even as the version advances.
        assert shrunk.ring == ring.ring
        assert ring.version == 0  # immutability: originals untouched

    def test_leave_last_node_rejected(self):
        ring = VersionedRing(["http://a:1"])
        with pytest.raises(ServeError):
            ring.leave("http://a:1")

    def test_lookup_and_describe_delegate(self):
        import json

        ring = VersionedRing(["http://a:1", "http://b:2"])
        assert ring.node_for("00" * 16) in ring.nodes
        assert len(ring) == 2
        assert "http://a:1" in ring
        described = json.loads(json.dumps(ring.describe()))
        assert described["version"] == 0
        assert sorted(described["nodes"]) == ["http://a:1", "http://b:2"]
