"""Unit tests for the tolerance-aware golden comparator."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.validate.golden import (
    SNAPSHOT_SCHEMA,
    compare_rendered,
    load_snapshot,
    save_snapshot,
)


class TestCompareRendered:
    def test_identical_text_matches(self):
        text = "mpki 12.34 | speedup 0.981\nbar ███▓░\n"
        assert compare_rendered(text, text) == []

    def test_number_within_tolerance_matches(self):
        want = "speedup 0.981000"
        got = "speedup 0.981000000001"
        assert compare_rendered(want, got) == []

    def test_number_outside_tolerance_reported_with_line(self):
        want = "a 1.0\nb 2.0\nc 3.0"
        got = "a 1.0\nb 2.5\nc 3.0"
        mismatches = compare_rendered(want, got)
        assert len(mismatches) == 1
        assert "line 2" in mismatches[0]
        assert "2.5" in mismatches[0]

    def test_custom_tolerance(self):
        assert compare_rendered("x 100", "x 101", rel_tol=0.05) == []
        assert compare_rendered("x 100", "x 101", rel_tol=1e-6)

    def test_line_count_mismatch_short_circuits(self):
        mismatches = compare_rendered("a 1\nb 2", "a 1")
        assert len(mismatches) == 1
        assert "line count" in mismatches[0]

    def test_text_difference_reported(self):
        mismatches = compare_rendered("mpki 1.0", "ipc 1.0")
        assert len(mismatches) == 1
        assert "text" in mismatches[0]

    def test_structure_difference_reported(self):
        mismatches = compare_rendered("a 1 b", "a 1 b 2")
        assert len(mismatches) == 1
        assert "structure" in mismatches[0]

    def test_whitespace_padding_is_ignored(self):
        # numeric width changes shift column padding; that is tolerated
        assert compare_rendered("val   9.99  ok", "val 10.01 ok",
                                rel_tol=0.01) == []

    def test_glyph_run_tolerates_one_glyph(self):
        assert compare_rendered("x 1 ████", "x 1 █████") == []
        assert compare_rendered("x 1 ▁▂▃", "x 1 ▁▂") == []

    def test_glyph_run_two_glyphs_off_fails(self):
        assert compare_rendered("x 1 ████", "x 1 ██████")

    def test_plain_text_gets_no_glyph_slack(self):
        assert compare_rendered("abc 1", "abcd 1")

    def test_scientific_notation_numbers(self):
        assert compare_rendered("rate 1.5e-09 /s", "rate 1.5e-9 /s") == []

    def test_label_prefixes_messages(self):
        mismatches = compare_rendered("1", "2", label="table9")
        assert mismatches[0].startswith("table9")


class TestSnapshotIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(path, {"experiment": "x", "render": "a 1\n"})
        payload = load_snapshot(path)
        assert payload["render"] == "a 1\n"
        assert payload["schema"] == SNAPSHOT_SCHEMA

    def test_missing_snapshot_mentions_regen_tool(self, tmp_path):
        with pytest.raises(ExperimentError, match="regen_golden"):
            load_snapshot(tmp_path / "nope.json")

    def test_corrupt_snapshot_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="unreadable"):
            load_snapshot(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text('{"schema": 1}')
        with pytest.raises(ExperimentError, match="not a golden snapshot"):
            load_snapshot(path)

    def test_schema_mismatch_mentions_regen_tool(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"schema": 0, "render": "x"}')
        with pytest.raises(ExperimentError, match="regen_golden"):
            load_snapshot(path)
