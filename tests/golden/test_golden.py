"""Golden-result regression suite.

Every pinned experiment is re-run at the golden scale/seed and its full
rendered text compared against ``tests/golden/snapshots/`` with the
tolerance-aware comparator (:mod:`repro.validate.golden`): structure
must match exactly, numbers within 1e-6 relative.  When a numeric
change is *intended*, regenerate with ``tools/regen_golden.py`` and
review the snapshot diff.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.runner import run_experiment
from repro.validate.golden import compare_rendered, load_snapshot

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

from regen_golden import (  # noqa: E402
    GOLDEN_EXPERIMENTS,
    GOLDEN_SCALE,
    GOLDEN_SEED,
    SNAPSHOT_DIR,
)

# PRISM features are experiment-independent; extract once and reuse
# across the parametrized cases exactly as run_all does.
_features_cache = {}


def _run(name: str):
    context = ExperimentContext(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    title, render, features = run_experiment(
        name, context, _features_cache.get("features")
    )
    _features_cache["features"] = features
    return title, render


def test_snapshot_set_is_exactly_the_pinned_experiments():
    on_disk = sorted(p.stem for p in SNAPSHOT_DIR.glob("*.json"))
    assert on_disk == sorted(GOLDEN_EXPERIMENTS)


@pytest.mark.parametrize("name", GOLDEN_EXPERIMENTS)
def test_golden(name: str):
    snapshot = load_snapshot(SNAPSHOT_DIR / f"{name}.json")
    assert snapshot["experiment"] == name
    assert snapshot["scale"] == GOLDEN_SCALE
    assert snapshot["seed"] == GOLDEN_SEED
    title, render = _run(name)
    assert title == snapshot["title"]
    mismatches = compare_rendered(snapshot["render"], render, label=name)
    assert not mismatches, (
        f"{len(mismatches)} golden mismatches for {name} "
        "(tools/regen_golden.py regenerates if the change is intended):\n"
        + "\n".join(mismatches)
    )


def test_snapshots_are_canonical_json():
    # regen writes sorted-key, indent-2 JSON with a trailing newline;
    # hand-edited snapshots would break diff review.
    for path in SNAPSHOT_DIR.glob("*.json"):
        text = path.read_text()
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n", (
            f"{path.name} is not canonical — rewrite via tools/regen_golden.py"
        )
