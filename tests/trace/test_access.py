"""Tests for memory access primitives."""

from repro.trace.access import (
    BLOCK_BITS,
    BLOCK_BYTES,
    AccessType,
    MemoryAccess,
    block_of,
)


def test_block_constants_consistent():
    assert BLOCK_BYTES == 1 << BLOCK_BITS


def test_access_type_is_write():
    assert AccessType.WRITE.is_write
    assert not AccessType.READ.is_write


def test_memory_access_block_address():
    access = MemoryAccess(address=0x1234, access_type=AccessType.READ)
    assert access.block_address == 0x1234 >> BLOCK_BITS
    assert not access.is_write


def test_block_of_aligns_down():
    base = 0x1000
    for offset in range(BLOCK_BYTES):
        assert block_of(base + offset) == base >> BLOCK_BITS


def test_adjacent_blocks_differ():
    assert block_of(0) != block_of(BLOCK_BYTES)
