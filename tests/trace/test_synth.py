"""Tests for synthetic address-stream primitives."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.synth import (
    PAGE_BYTES,
    WORD_BYTES,
    StreamComponent,
    compose_trace,
    pointer_chase_sampler,
    pooled_sampler,
    strided_sampler,
    zipf_weights,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestZipfWeights:
    def test_normalised(self):
        weights = zipf_weights(100, 1.2)
        assert weights.sum() == pytest.approx(1.0)

    def test_zero_skew_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_higher_skew_concentrates(self):
        mild = zipf_weights(100, 0.5)
        strong = zipf_weights(100, 2.0)
        assert strong[0] > mild[0]

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            zipf_weights(0, 1.0)


class TestPooledSampler:
    def test_addresses_within_region(self, rng):
        sampler = pooled_sampler(base=0x1000, n_pages=8, skew=1.0)
        addresses = sampler(rng, 500)
        assert (addresses >= 0x1000).all()
        assert (addresses < 0x1000 + 8 * PAGE_BYTES).all()

    def test_offsets_respect_limit(self, rng):
        sampler = pooled_sampler(base=0, n_pages=4, offsets_per_page=1,
                                 permute_pages=False)
        addresses = sampler(rng, 200)
        # One word per page: all addresses page-aligned.
        assert (addresses % PAGE_BYTES == 0).all()

    def test_skew_reduces_distinct_pages(self, rng):
        flat = pooled_sampler(base=0, n_pages=256, skew=0.0)
        hot = pooled_sampler(base=0, n_pages=256, skew=2.5)
        flat_pages = np.unique(flat(rng, 1000) // PAGE_BYTES)
        hot_pages = np.unique(hot(rng, 1000) // PAGE_BYTES)
        assert len(hot_pages) < len(flat_pages)

    def test_rejects_bad_offsets(self):
        with pytest.raises(TraceError):
            pooled_sampler(base=0, n_pages=4, offsets_per_page=0)


class TestStridedSampler:
    def test_sequential_and_wrapping(self, rng):
        sampler = strided_sampler(base=0, stride_bytes=64, region_bytes=256)
        first = sampler(rng, 6)
        assert list(first) == [0, 64, 128, 192, 0, 64]

    def test_cursor_persists_between_calls(self, rng):
        sampler = strided_sampler(base=0, stride_bytes=64, region_bytes=1024)
        a = sampler(rng, 3)
        b = sampler(rng, 3)
        assert b[0] == a[-1] + 64

    def test_rejects_bad_region(self):
        with pytest.raises(TraceError):
            strided_sampler(base=0, stride_bytes=128, region_bytes=64)


class TestPointerChase:
    def test_within_region_and_word_aligned(self, rng):
        sampler = pointer_chase_sampler(base=0x4000, region_bytes=4096)
        addresses = sampler(rng, 1000)
        assert (addresses >= 0x4000).all()
        assert (addresses < 0x4000 + 4096).all()
        assert (addresses % WORD_BYTES == 0).all()

    def test_high_coverage(self, rng):
        sampler = pointer_chase_sampler(base=0, region_bytes=1024)
        addresses = sampler(rng, 5000)
        # 128 words; uniform sampling should hit nearly all of them.
        assert len(np.unique(addresses)) > 100


class TestComposeTrace:
    def _components(self):
        return [
            StreamComponent(pointer_chase_sampler(0, 4096), weight=1.0,
                            write_fraction=0.5),
            StreamComponent(strided_sampler(0x10000, 64, 4096), weight=1.0,
                            write_fraction=0.0),
        ]

    def test_length_and_name(self, rng):
        trace = compose_trace(rng, self._components(), 1000, mean_gap=3.0,
                              name="synthetic")
        assert len(trace) == 1000
        assert trace.name == "synthetic"

    def test_write_fraction_respected(self, rng):
        trace = compose_trace(rng, self._components(), 4000, mean_gap=0.0)
        # Half the traffic has wf 0.5, half 0.0 -> overall ~0.25.
        assert trace.n_writes / len(trace) == pytest.approx(0.25, abs=0.05)

    def test_mean_gap_matches(self, rng):
        trace = compose_trace(rng, self._components(), 5000, mean_gap=4.0)
        mean_gap = trace.gaps.mean()
        assert mean_gap == pytest.approx(4.0, rel=0.15)

    def test_zero_gap(self, rng):
        trace = compose_trace(rng, self._components(), 100, mean_gap=0.0)
        assert trace.gaps.sum() == 0

    def test_threads_round_robin(self, rng):
        trace = compose_trace(rng, self._components(), 100, mean_gap=0.0,
                              n_threads=4)
        counts = np.bincount(np.asarray(trace.thread_ids))
        assert len(counts) == 4
        assert counts.max() - counts.min() <= 1

    def test_thread_striping_separates_footprints(self, rng):
        trace = compose_trace(rng, self._components(), 2000, mean_gap=0.0,
                              n_threads=4, shared_fraction=0.0)
        t0 = set(np.asarray(trace.thread(0).addresses))
        t1 = set(np.asarray(trace.thread(1).addresses))
        assert not (t0 & t1)

    def test_shared_fraction_creates_overlap(self, rng):
        trace = compose_trace(rng, self._components(), 4000, mean_gap=0.0,
                              n_threads=4, shared_fraction=0.5)
        t0 = set(np.asarray(trace.thread(0).addresses))
        t1 = set(np.asarray(trace.thread(1).addresses))
        assert t0 & t1

    def test_rejects_bad_args(self, rng):
        with pytest.raises(TraceError):
            compose_trace(rng, [], 100, mean_gap=1.0)
        with pytest.raises(TraceError):
            compose_trace(rng, self._components(), 0, mean_gap=1.0)
        with pytest.raises(TraceError):
            compose_trace(rng, self._components(), 10, mean_gap=-1.0)
        with pytest.raises(TraceError):
            compose_trace(rng, self._components(), 10, mean_gap=1.0,
                          shared_fraction=1.5)
