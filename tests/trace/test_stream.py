"""Tests for the column-oriented Trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.access import AccessType, MemoryAccess
from repro.trace.stream import (
    SPILL_DIR_ENV,
    Trace,
    interleave_threads,
    resolve_spill_dir,
)


def _toy_trace():
    accesses = [
        MemoryAccess(0x1000, AccessType.READ, thread_id=0, gap=2),
        MemoryAccess(0x1040, AccessType.WRITE, thread_id=0, gap=0),
        MemoryAccess(0x2000, AccessType.READ, thread_id=1, gap=5),
        MemoryAccess(0x1000, AccessType.WRITE, thread_id=1, gap=1),
    ]
    return Trace.from_accesses(accesses, name="toy")


class TestConstruction:
    def test_from_accesses_round_trip(self):
        trace = _toy_trace()
        assert len(trace) == 4
        assert trace[1].is_write
        assert trace[2].thread_id == 1
        assert trace[0].gap == 2
        assert list(trace)[3].address == 0x1000

    def test_empty(self):
        trace = Trace.empty("nothing")
        assert len(trace) == 0
        assert trace.n_threads == 0
        assert trace.n_instructions == 0

    def test_column_length_mismatch_raises(self):
        with pytest.raises(TraceError):
            Trace(
                addresses=np.zeros(3, dtype=np.uint64),
                writes=np.zeros(2, dtype=bool),
                thread_ids=np.zeros(3, dtype=np.uint16),
                gaps=np.zeros(3, dtype=np.uint32),
            )

    def test_concatenate(self):
        trace = _toy_trace()
        double = Trace.concatenate([trace, trace], name="double")
        assert len(double) == 8
        assert double.name == "double"
        assert double.n_writes == 2 * trace.n_writes


class TestStats:
    def test_counts(self):
        trace = _toy_trace()
        assert trace.n_reads == 2
        assert trace.n_writes == 2
        assert trace.n_accesses == 4

    def test_instructions_are_gaps_plus_accesses(self):
        trace = _toy_trace()
        assert trace.n_instructions == (2 + 0 + 5 + 1) + 4

    def test_n_threads(self):
        assert _toy_trace().n_threads == 2

    def test_block_addresses(self):
        trace = _toy_trace()
        assert trace.block_addresses[0] == 0x1000 >> 6
        assert trace.block_addresses[1] == 0x1040 >> 6


class TestViews:
    def test_reads_writes_partition(self):
        trace = _toy_trace()
        assert len(trace.reads()) + len(trace.writes_only()) == len(trace)
        assert trace.reads().n_writes == 0
        assert trace.writes_only().n_reads == 0

    def test_thread_view(self):
        trace = _toy_trace()
        t1 = trace.thread(1)
        assert len(t1) == 2
        assert set(np.asarray(t1.thread_ids)) == {1}

    def test_head(self):
        trace = _toy_trace()
        assert len(trace.head(2)) == 2
        assert trace.head(2)[0].address == trace[0].address


class TestSpill:
    def test_round_trip(self, tmp_path):
        trace = _toy_trace()
        loaded = trace.spill(str(tmp_path)).load()
        assert loaded.name == trace.name
        np.testing.assert_array_equal(loaded.addresses, trace.addresses)
        np.testing.assert_array_equal(loaded.writes, trace.writes)
        np.testing.assert_array_equal(loaded.thread_ids, trace.thread_ids)
        np.testing.assert_array_equal(loaded.gaps, trace.gaps)

    def test_loaded_columns_are_memmap_backed(self, tmp_path):
        """The point of spilling: workers map the files read-only
        instead of receiving pickled copies."""
        loaded = _toy_trace().spill(str(tmp_path)).load()
        for column in (loaded.addresses, loaded.writes, loaded.thread_ids, loaded.gaps):
            assert isinstance(column, np.memmap) or isinstance(
                column.base, np.memmap
            )

    def test_handle_is_picklable(self, tmp_path):
        import pickle

        handle = _toy_trace().spill(str(tmp_path))
        clone = pickle.loads(pickle.dumps(handle))
        np.testing.assert_array_equal(
            clone.load().addresses, _toy_trace().addresses
        )

    def test_prefix_separates_traces(self, tmp_path):
        a = _toy_trace().spill(str(tmp_path), prefix="a")
        b = Trace.empty("none").spill(str(tmp_path), prefix="b")
        assert len(a.load()) == 4
        assert len(b.load()) == 0

    def test_missing_file_is_a_trace_error(self, tmp_path):
        import os

        handle = _toy_trace().spill(str(tmp_path))
        os.remove(handle.writes_path)
        with pytest.raises(TraceError):
            handle.load()

    def test_resolve_spill_dir(self, monkeypatch):
        monkeypatch.delenv(SPILL_DIR_ENV, raising=False)
        assert resolve_spill_dir() is None
        monkeypatch.setenv(SPILL_DIR_ENV, "  ")
        assert resolve_spill_dir() is None
        monkeypatch.setenv(SPILL_DIR_ENV, "/dev/shm")
        assert resolve_spill_dir() == "/dev/shm"


class TestInterleave:
    def test_round_robin_order(self):
        a = Trace.from_accesses(
            [MemoryAccess(0x10 * i, AccessType.READ) for i in range(1, 4)]
        )
        b = Trace.from_accesses(
            [MemoryAccess(0x1000 * i, AccessType.WRITE) for i in range(1, 3)]
        )
        merged = interleave_threads([a, b], name="merged")
        assert len(merged) == 5
        # Round robin: a0 b0 a1 b1 a2
        assert merged[0].address == 0x10
        assert merged[1].address == 0x1000
        assert merged[2].address == 0x20
        assert merged[4].address == 0x30

    def test_thread_ids_reassigned(self):
        a = Trace.from_accesses([MemoryAccess(1, AccessType.READ, thread_id=7)])
        b = Trace.from_accesses([MemoryAccess(2, AccessType.READ, thread_id=9)])
        merged = interleave_threads([a, b])
        assert set(np.asarray(merged.thread_ids)) == {0, 1}

    def test_empty_input(self):
        assert len(interleave_threads([])) == 0
