"""Tests for trace persistence."""

import io

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import dump_text, load_npz, parse_text, save_npz
from repro.workloads.generators import generate_trace


@pytest.fixture
def trace():
    return generate_trace("tonto", n_accesses=2000)


class TestNpzRoundTrip:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "tonto.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        assert loaded.name == "tonto"
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.writes, trace.writes)
        assert np.array_equal(loaded.thread_ids, trace.thread_ids)
        assert np.array_equal(loaded.gaps, trace.gaps)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_npz(tmp_path / "nope.npz")

    def test_wrong_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(4))
        with pytest.raises(TraceError):
            load_npz(path)


class TestTextFormat:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "tonto.txt"
        dump_text(trace, path)
        loaded = parse_text(path, name="tonto")
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.writes, trace.writes)
        assert np.array_equal(loaded.gaps, trace.gaps)

    def test_parse_from_string(self):
        text = """
        # a tiny trace
        R 0x1000 0 5
        W 0x1040
        r 4096 1 2
        """
        trace = parse_text(text, name="tiny")
        assert len(trace) == 3
        assert trace[0].address == 0x1000
        assert trace[0].gap == 5
        assert trace[1].is_write
        assert trace[2].thread_id == 1
        assert trace[2].address == 4096

    def test_bad_op_rejected(self):
        with pytest.raises(TraceError):
            parse_text("X 0x10\n")

    def test_bad_address_rejected(self):
        with pytest.raises(TraceError):
            parse_text("R zebra\n")

    def test_negative_field_rejected(self):
        with pytest.raises(TraceError):
            parse_text("R 0x10 -1\n")

    def test_comments_and_blanks_skipped(self):
        trace = parse_text("# nothing\n\nR 8\n")
        assert len(trace) == 1
