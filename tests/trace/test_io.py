"""Tests for trace persistence."""

import io

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import (
    MAX_ADDRESS,
    MAX_GAP,
    MAX_THREAD_ID,
    dump_text,
    load_npz,
    parse_text,
    save_npz,
)
from repro.workloads.generators import generate_trace


@pytest.fixture
def trace():
    return generate_trace("tonto", n_accesses=2000)


class TestNpzRoundTrip:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "tonto.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        assert loaded.name == "tonto"
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.writes, trace.writes)
        assert np.array_equal(loaded.thread_ids, trace.thread_ids)
        assert np.array_equal(loaded.gaps, trace.gaps)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_npz(tmp_path / "nope.npz")

    def test_wrong_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(4))
        with pytest.raises(TraceError):
            load_npz(path)


class TestTextFormat:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "tonto.txt"
        dump_text(trace, path)
        loaded = parse_text(path, name="tonto")
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.addresses, trace.addresses)
        assert np.array_equal(loaded.writes, trace.writes)
        assert np.array_equal(loaded.gaps, trace.gaps)

    def test_parse_from_string(self):
        text = """
        # a tiny trace
        R 0x1000 0 5
        W 0x1040
        r 4096 1 2
        """
        trace = parse_text(text, name="tiny")
        assert len(trace) == 3
        assert trace[0].address == 0x1000
        assert trace[0].gap == 5
        assert trace[1].is_write
        assert trace[2].thread_id == 1
        assert trace[2].address == 4096

    def test_bad_op_rejected(self):
        with pytest.raises(TraceError):
            parse_text("X 0x10\n")

    def test_bad_address_rejected(self):
        with pytest.raises(TraceError):
            parse_text("R zebra\n")

    def test_negative_field_rejected(self):
        with pytest.raises(TraceError):
            parse_text("R 0x10 -1\n")

    def test_comments_and_blanks_skipped(self):
        trace = parse_text("# nothing\n\nR 8\n")
        assert len(trace) == 1

    def test_comment_only_file_is_empty_trace(self):
        trace = parse_text("# just\n# comments\n\n", name="empty")
        assert len(trace) == 0
        assert trace.name == "empty"


class TestStructuredLineErrors:
    """Malformed lines fail as TraceError with the line number and
    field — never a bare ValueError (regression: non-integer thread/gap
    used to escape ``int()`` unwrapped)."""

    def test_bad_thread_is_trace_error_with_lineno(self):
        with pytest.raises(TraceError) as excinfo:
            parse_text("R 0x10 0 3\nR 0x1 abc\n")
        error = excinfo.value
        assert error.lineno == 2
        assert error.field == "thread"
        assert error.value == "abc"
        assert "line 2" in str(error)

    def test_bad_gap_is_trace_error_with_lineno(self):
        with pytest.raises(TraceError) as excinfo:
            parse_text("R 0x10 0 x9\n")
        assert excinfo.value.lineno == 1
        assert excinfo.value.field == "gap"

    def test_errors_raise_under_every_policy(self):
        # Malformed lines are intrinsic errors, not firewall additions:
        # `off` restores pre-firewall behavior, which also raised.
        for policy in ("strict", "off"):
            with pytest.raises(TraceError):
                parse_text("R zebra\n", policy=policy)


class TestRangeValidation:
    """Out-of-range values are rejected before array construction
    (regression: thread ids and gaps used to wrap silently through the
    uint16/uint32 casts)."""

    def test_thread_over_uint16_rejected_not_wrapped(self):
        with pytest.raises(TraceError) as excinfo:
            parse_text(f"R 0x10 {MAX_THREAD_ID + 1} 0\n")
        assert excinfo.value.field == "thread"
        assert str(MAX_THREAD_ID) in str(excinfo.value)

    def test_gap_over_uint32_rejected_not_wrapped(self):
        with pytest.raises(TraceError) as excinfo:
            parse_text(f"R 0x10 0 {MAX_GAP + 1}\n")
        assert excinfo.value.field == "gap"

    def test_address_over_uint64_rejected(self):
        with pytest.raises(TraceError) as excinfo:
            parse_text(f"R {MAX_ADDRESS + 1}\n")
        assert excinfo.value.field == "address"

    def test_maxima_are_accepted(self):
        trace = parse_text(
            f"W 0x{MAX_ADDRESS:x} {MAX_THREAD_ID} {MAX_GAP}\n"
        )
        assert int(trace.addresses[0]) == MAX_ADDRESS
        assert int(trace.thread_ids[0]) == MAX_THREAD_ID
        assert int(trace.gaps[0]) == MAX_GAP


class TestLenientQuarantine:
    def test_bad_lines_quarantined_good_kept(self, capsys):
        text = "R 0x10 0 1\nR zebra\nW 0x40 70000 1\nW 0x80\n"
        trace = parse_text(text, name="mixed", policy="lenient")
        assert len(trace) == 2
        assert int(trace.addresses[0]) == 0x10
        assert int(trace.addresses[1]) == 0x80
        err = capsys.readouterr().err
        assert "quarantined 2 malformed trace lines" in err
        assert "zebra" in err  # the first problem is named

    def test_quarantine_counted_in_metrics(self, capsys):
        from repro import obs

        registry = obs.enable()
        try:
            parse_text("R zebra\nR 0x10\n", policy="lenient")
        finally:
            obs.disable()
        assert registry.counters["validate.trace.quarantined_lines"] == 1


class TestNpzSchema:
    def test_mismatched_lengths_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            addresses=np.arange(4, dtype=np.uint64),
            writes=np.zeros(4, dtype=bool),
            thread_ids=np.zeros(3, dtype=np.uint16),  # truncated column
            gaps=np.zeros(4, dtype=np.uint32),
        )
        with pytest.raises(TraceError, match="disagree on length"):
            load_npz(path)

    def test_truncated_file_rejected(self, trace, tmp_path):
        path = tmp_path / "whole.npz"
        save_npz(trace, path)
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(TraceError):
            load_npz(clipped)

    def test_float_addresses_rejected_not_truncated(self, tmp_path):
        path = tmp_path / "float.npz"
        np.savez(
            path,
            addresses=np.array([1.5, 2.5]),
            writes=np.zeros(2, dtype=bool),
            thread_ids=np.zeros(2, dtype=np.uint16),
            gaps=np.zeros(2, dtype=np.uint32),
        )
        with pytest.raises(TraceError, match="integer dtype"):
            load_npz(path)

    def test_negative_values_rejected(self, tmp_path):
        path = tmp_path / "negative.npz"
        np.savez(
            path,
            addresses=np.array([16, -1], dtype=np.int64),
            writes=np.zeros(2, dtype=bool),
            thread_ids=np.zeros(2, dtype=np.uint16),
            gaps=np.zeros(2, dtype=np.uint32),
        )
        with pytest.raises(TraceError, match="negative"):
            load_npz(path)

    def test_nonbinary_writes_rejected(self, tmp_path):
        path = tmp_path / "writes.npz"
        np.savez(
            path,
            addresses=np.array([16, 32], dtype=np.uint64),
            writes=np.array([0, 2], dtype=np.int64),
            thread_ids=np.zeros(2, dtype=np.uint16),
            gaps=np.zeros(2, dtype=np.uint32),
        )
        with pytest.raises(TraceError, match="0/1"):
            load_npz(path)

    def test_thread_over_uint16_rejected(self, tmp_path):
        path = tmp_path / "threads.npz"
        np.savez(
            path,
            addresses=np.array([16], dtype=np.uint64),
            writes=np.zeros(1, dtype=bool),
            thread_ids=np.array([70000], dtype=np.int64),
            gaps=np.zeros(1, dtype=np.uint32),
        )
        with pytest.raises(TraceError, match="maximum"):
            load_npz(path)

    def test_off_policy_keeps_structural_checks(self, tmp_path):
        # Truncation and shape checks predate the firewall; `off` keeps
        # them while skipping the added value-range scan.
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            addresses=np.arange(4, dtype=np.uint64),
            writes=np.zeros(4, dtype=bool),
            thread_ids=np.zeros(3, dtype=np.uint16),
            gaps=np.zeros(4, dtype=np.uint32),
        )
        with pytest.raises(TraceError):
            load_npz(path, policy="off")


class TestBoundedMemoryStreaming:
    def test_multi_chunk_parse_round_trips(self, monkeypatch):
        # Shrink the chunk size so a small input exercises the
        # flush/concatenate path a multi-GB trace would take.
        from repro.trace import io as trace_io

        monkeypatch.setattr(trace_io, "_CHUNK_LINES", 7)
        lines = "".join(f"R 0x{i * 64:x} 0 {i % 5}\n" for i in range(100))
        trace = parse_text(lines, name="chunked")
        assert len(trace) == 100
        assert [int(a) for a in trace.addresses[:3]] == [0, 64, 128]
        assert int(trace.gaps[99]) == 99 % 5

    def test_file_object_streams(self):
        handle = io.StringIO("R 0x10 1 2\nW 0x40\n")
        trace = parse_text(handle, name="stream")
        assert len(trace) == 2
        assert trace[0].thread_id == 1
