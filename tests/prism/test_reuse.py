"""Tests for reuse-distance analysis and miss-ratio curves."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.prism.reuse import capacity_knee_blocks, reuse_profile
from repro.sim.cache import SetAssocCache


class TestReuseProfile:
    def test_empty(self):
        profile = reuse_profile(np.array([], dtype=np.uint64))
        assert profile.n_accesses == 0
        assert profile.cold_accesses == 0

    def test_all_cold(self):
        profile = reuse_profile(np.arange(10, dtype=np.uint64))
        assert profile.cold_accesses == 10
        assert profile.reuse_accesses == 0
        assert profile.miss_ratio(100) == 1.0

    def test_immediate_reuse_distance_zero(self):
        profile = reuse_profile(np.array([5, 5, 5], dtype=np.uint64))
        assert profile.cold_accesses == 1
        assert profile.distances[0] == 2
        assert profile.miss_ratio(1) == pytest.approx(1 / 3)

    def test_textbook_example(self):
        # a b c a: 'a' reused at stack distance 2.
        profile = reuse_profile(np.array([1, 2, 3, 1], dtype=np.uint64))
        assert profile.cold_accesses == 3
        assert profile.distances[2] == 1
        # Capacity 2 can't hold it; capacity 3 can.
        assert profile.miss_ratio(2) == 1.0
        assert profile.miss_ratio(3) == pytest.approx(0.75)

    def test_cyclic_sweep_knee(self):
        # Cyclic loop over 8 blocks: distance 7 for every reuse.
        blocks = np.array(list(range(8)) * 5, dtype=np.uint64)
        profile = reuse_profile(blocks)
        assert profile.distances[7] == 32
        assert profile.miss_ratio(7) == 1.0
        assert profile.miss_ratio(8) == pytest.approx(8 / 40)

    def test_mrc_monotone_nonincreasing(self):
        rng = np.random.default_rng(0)
        blocks = rng.zipf(1.3, size=3000).astype(np.uint64)
        profile = reuse_profile(blocks)
        curve = profile.miss_ratio_curve([1, 2, 4, 8, 16, 64, 256, 4096])
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_matches_fully_associative_lru_sim(self):
        """Ground truth: the MRC must equal a fully-associative LRU
        cache's measured miss ratio at every capacity."""
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 64, size=2000).astype(np.uint64)
        profile = reuse_profile(blocks)
        for capacity in (4, 16, 48):
            cache = SetAssocCache(capacity * 64, 64, capacity)  # 1 set
            misses = sum(
                not cache.access(int(b), False).hit for b in blocks
            )
            assert profile.miss_ratio(capacity) == pytest.approx(
                misses / len(blocks)
            )

    def test_working_set_blocks(self):
        blocks = np.array(list(range(8)) * 5, dtype=np.uint64)
        profile = reuse_profile(blocks)
        assert profile.working_set_blocks(0.9) == 8
        with pytest.raises(TraceError):
            profile.working_set_blocks(0.0)

    def test_distance_cap(self):
        blocks = np.array(list(range(100)) * 2, dtype=np.uint64)
        profile = reuse_profile(blocks, max_tracked_distance=10)
        # All reuses at distance 99 collapse into the final bucket.
        assert profile.distances[-1] == 100

    def test_accepts_trace(self):
        from repro.workloads.generators import generate_trace

        trace = generate_trace("tonto", n_accesses=3000)
        profile = reuse_profile(trace)
        assert profile.n_accesses == 3000


class TestCapacityKnee:
    def test_sweep_has_sharp_knee(self):
        blocks = np.array(list(range(32)) * 10, dtype=np.uint64)
        knee = capacity_knee_blocks(reuse_profile(blocks))
        assert knee == 32

    def test_no_knee_for_cold_stream(self):
        profile = reuse_profile(np.arange(100, dtype=np.uint64))
        assert capacity_knee_blocks(profile) is None

    def test_hot_block_immediate_knee(self):
        profile = reuse_profile(np.array([1] * 100, dtype=np.uint64))
        assert capacity_knee_blocks(profile) == 1
