"""Tests for footprint metrics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.prism.footprint import (
    WORKING_SET_COVERAGE,
    coverage_footprint,
    total_footprint,
    unique_footprint,
)


class TestUniqueFootprint:
    def test_empty(self):
        assert unique_footprint(np.array([], dtype=np.uint64)) == 0

    def test_counts_distinct(self):
        addresses = np.array([1, 1, 2, 3, 3, 3], dtype=np.uint64)
        assert unique_footprint(addresses) == 3


class TestCoverageFootprint:
    def test_paper_uses_90_percent(self):
        assert WORKING_SET_COVERAGE == pytest.approx(0.90)

    def test_hot_address_dominates(self):
        # One address takes 95% of accesses: the 90% footprint is 1.
        addresses = np.array([7] * 95 + [1, 2, 3, 4, 5], dtype=np.uint64)
        assert coverage_footprint(addresses) == 1

    def test_uniform_needs_ninety_percent_of_addresses(self):
        addresses = np.repeat(np.arange(100, dtype=np.uint64), 10)
        assert coverage_footprint(addresses) == 90

    def test_full_coverage_is_unique_footprint(self):
        addresses = np.array([1, 1, 2, 3], dtype=np.uint64)
        assert coverage_footprint(addresses, coverage=1.0) == 3

    def test_monotone_in_coverage(self):
        rng = np.random.default_rng(5)
        addresses = rng.zipf(1.5, size=2000).astype(np.uint64)
        low = coverage_footprint(addresses, coverage=0.5)
        high = coverage_footprint(addresses, coverage=0.95)
        assert low <= high

    def test_never_exceeds_unique(self):
        rng = np.random.default_rng(6)
        addresses = rng.integers(0, 500, size=3000).astype(np.uint64)
        assert coverage_footprint(addresses) <= unique_footprint(addresses)

    def test_empty(self):
        assert coverage_footprint(np.array([], dtype=np.uint64)) == 0

    def test_invalid_coverage_raises(self):
        with pytest.raises(TraceError):
            coverage_footprint(np.array([1], dtype=np.uint64), coverage=0.0)
        with pytest.raises(TraceError):
            coverage_footprint(np.array([1], dtype=np.uint64), coverage=1.5)


class TestTotalFootprint:
    def test_is_access_count(self):
        assert total_footprint(np.array([1, 1, 1], dtype=np.uint64)) == 3
