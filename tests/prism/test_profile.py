"""Tests for the feature-extraction pipeline."""

import numpy as np
import pytest

from repro.prism.profile import (
    FEATURE_LABELS,
    FEATURE_NAMES,
    WorkloadFeatures,
    extract_features,
    feature_matrix,
)
from repro.trace.access import AccessType, MemoryAccess
from repro.trace.stream import Trace


def _trace():
    accesses = []
    for i in range(64):
        accesses.append(MemoryAccess(i * 8, AccessType.READ))
    for i in range(32):
        accesses.append(MemoryAccess(0x100000 + i * 2048, AccessType.WRITE))
    return Trace.from_accesses(accesses, name="unit")


class TestExtractFeatures:
    def test_feature_count_matches_table6(self):
        assert len(FEATURE_NAMES) == 10
        assert len(FEATURE_LABELS) == 10

    def test_totals_split_by_direction(self):
        features = extract_features(_trace())
        assert features.total_reads == 64
        assert features.total_writes == 32

    def test_unique_counts(self):
        features = extract_features(_trace())
        assert features.unique_reads == 64
        assert features.unique_writes == 32

    def test_read_local_entropy_low_for_one_page(self):
        # All reads fall in one 512-byte span -> one local region.
        features = extract_features(_trace())
        assert features.read_local_entropy == 0.0
        assert features.read_global_entropy == pytest.approx(6.0)

    def test_write_local_entropy_high_for_spread_pages(self):
        features = extract_features(_trace())
        # 32 writes across 32 distinct 1 KB pages (2 KB apart).
        assert features.write_local_entropy == pytest.approx(5.0)

    def test_name_carried(self):
        assert extract_features(_trace()).name == "unit"

    def test_write_intensity(self):
        assert extract_features(_trace()).write_intensity == pytest.approx(1 / 3)

    def test_as_array_order(self):
        features = extract_features(_trace())
        array = features.as_array()
        assert array.shape == (10,)
        assert array[FEATURE_NAMES.index("total_reads")] == 64

    def test_as_dict_round_trip(self):
        features = extract_features(_trace())
        d = features.as_dict()
        assert set(d) == set(FEATURE_NAMES)

    def test_empty_directions_are_zero(self):
        reads_only = Trace.from_accesses(
            [MemoryAccess(8 * i, AccessType.READ) for i in range(16)]
        )
        features = extract_features(reads_only)
        assert features.total_writes == 0
        assert features.unique_writes == 0
        assert features.write_global_entropy == 0.0


class TestFeatureMatrix:
    def test_stacking(self):
        f = extract_features(_trace())
        matrix = feature_matrix([f, f, f])
        assert matrix.shape == (3, 10)
        assert np.allclose(matrix[0], matrix[2])
