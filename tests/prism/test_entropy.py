"""Tests for memory entropy metrics (equation (9))."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.prism.entropy import (
    LOCAL_ENTROPY_SKIP_BITS,
    global_entropy,
    local_entropy,
    max_entropy,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(np.array([], dtype=np.uint64)) == 0.0

    def test_single_address_zero(self):
        assert shannon_entropy(np.array([42] * 100, dtype=np.uint64)) == 0.0

    def test_uniform_is_log2_n(self):
        addresses = np.arange(256, dtype=np.uint64)
        assert shannon_entropy(addresses) == pytest.approx(8.0)

    def test_two_equal_addresses_one_bit(self):
        addresses = np.array([0, 1] * 500, dtype=np.uint64)
        assert shannon_entropy(addresses) == pytest.approx(1.0)

    def test_skewed_below_uniform(self):
        skewed = np.array([0] * 90 + list(range(1, 11)), dtype=np.uint64)
        uniform = np.arange(11, dtype=np.uint64)
        assert shannon_entropy(skewed) < shannon_entropy(uniform)

    def test_bounded_by_max_entropy(self):
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 1000, size=5000).astype(np.uint64)
        n_unique = len(np.unique(addresses))
        assert shannon_entropy(addresses) <= max_entropy(n_unique) + 1e-9


class TestLocalEntropy:
    def test_skip_bits_aggregate_pages(self):
        # 1024 addresses inside one 1 KB page: global spreads, local is 0.
        addresses = np.arange(1024, dtype=np.uint64)
        assert global_entropy(addresses) == pytest.approx(10.0)
        assert local_entropy(addresses, skip_bits=10) == 0.0

    def test_local_never_exceeds_global(self):
        rng = np.random.default_rng(11)
        addresses = rng.integers(0, 1 << 30, size=4000).astype(np.uint64)
        assert local_entropy(addresses) <= global_entropy(addresses) + 1e-9

    def test_default_skip_is_papers_m10(self):
        assert LOCAL_ENTROPY_SKIP_BITS == 10

    def test_zero_skip_equals_global(self):
        addresses = np.array([1, 2, 3, 4] * 10, dtype=np.uint64)
        assert local_entropy(addresses, skip_bits=0) == pytest.approx(
            global_entropy(addresses)
        )

    def test_negative_skip_raises(self):
        with pytest.raises(TraceError):
            local_entropy(np.array([1], dtype=np.uint64), skip_bits=-1)


class TestMaxEntropy:
    def test_values(self):
        assert max_entropy(0) == 0.0
        assert max_entropy(1) == 0.0
        assert max_entropy(2) == pytest.approx(1.0)
        assert max_entropy(1024) == pytest.approx(10.0)
