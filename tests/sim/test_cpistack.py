"""Tests for CPI-stack aggregation and rendering."""

import pytest

from repro.errors import SimulationError
from repro.nvsim.published import published_model, sram_baseline
from repro.sim.cpistack import COMPONENTS, cpi_stack, render_stacks


class TestCPIStack:
    def test_components_sum_to_total(self, leela_session, sram_model):
        stack = cpi_stack(leela_session.run(sram_model))
        assert stack.total == pytest.approx(
            stack.base + stack.l2 + stack.llc_hit + stack.llc_miss
        )

    def test_base_matches_config_cpi(self, leela_session, sram_model):
        # The base component is base_cpi by construction.
        stack = cpi_stack(leela_session.run(sram_model))
        assert stack.base == pytest.approx(leela_session.arch.base_cpi)

    def test_fractions_normalised(self, leela_session, sram_model):
        stack = cpi_stack(leela_session.run(sram_model))
        assert sum(stack.fractions().values()) == pytest.approx(1.0)

    def test_memory_boundedness_in_unit_interval(self, leela_session, sram_model):
        stack = cpi_stack(leela_session.run(sram_model))
        assert 0.0 <= stack.memory_boundedness < 1.0

    def test_slow_nvm_reads_grow_hit_component(self, leela_session):
        sram = cpi_stack(leela_session.run(sram_baseline()))
        jan = cpi_stack(leela_session.run(published_model("Jan_S")))
        # Jan_S reads at 3.07 ns vs SRAM's 1.23: the LLC-hit stall
        # component must grow; base and miss counts stay equal.
        assert jan.llc_hit > sram.llc_hit
        assert jan.base == pytest.approx(sram.base)

    def test_unknown_component_rejected(self, leela_session, sram_model):
        stack = cpi_stack(leela_session.run(sram_model))
        with pytest.raises(SimulationError):
            stack.component("dram")


class TestRenderStacks:
    def test_render(self, leela_session, sram_model, xue_model):
        stacks = [
            cpi_stack(leela_session.run(sram_model)),
            cpi_stack(leela_session.run(xue_model)),
        ]
        text = render_stacks(stacks)
        assert "leela/SRAM" in text
        assert "leela/Xue_S" in text
        assert "M=llc_miss" in text

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            render_stacks([])
