"""Tests for the per-cell checkpoint journal (:mod:`repro.sim.checkpoint`)."""

import json
import math

import pytest

from repro.errors import CheckpointError
from repro.sim.checkpoint import (
    CHECKPOINT_NAME,
    CheckpointJournal,
    cell_digest,
    result_from_dict,
    result_to_dict,
)
from repro.sim.energy import LLCEnergy
from repro.sim.llc import LLCCounts
from repro.sim.parallel import SweepCell
from repro.sim.results import SimResult
from repro.sim.timing import CoreBreakdown, SystemTiming


def _result(workload="leela", llc_name="SRAM", runtime_s=0.123456789012345):
    """A hand-built SimResult with awkward floats (exact round-trip bait)."""
    return SimResult(
        workload=workload,
        llc_name=llc_name,
        configuration="fixed-capacity",
        runtime_s=runtime_s,
        energy=LLCEnergy(
            hit_energy_j=1.0 / 3.0,
            miss_energy_j=2.2e-9,
            write_energy_j=math.pi * 1e-10,
            leakage_energy_j=0.07,
        ),
        counts=LLCCounts(
            capacity_bytes=1 << 20,
            associativity=16,
            read_lookups=1000,
            read_hits=800,
            read_misses=200,
            write_accesses=300,
            write_hits=250,
            write_misses=50,
            dirty_evictions=12,
            per_core_read_hits=[400, 400],
            per_core_read_misses=[100, 100],
            per_core_mlp=[1.5, 1.0 / 7.0],
        ),
        timing=SystemTiming(
            runtime_s=runtime_s,
            core_breakdowns=[
                CoreBreakdown(1e6, 2e4, 3e3, 4e5),
                CoreBreakdown(9e5, 1e4, 2e3, 3e5),
            ],
            dram_latency_s=60e-9,
            dram_utilization=0.333333333333333314829616256247390992939472198486328125,
            llc_busy_s=0.01,
            bound="dram",
        ),
        total_instructions=5_000_000,
    )


def _cell(workload="leela", seed=7):
    return SweepCell(
        workload=workload,
        configuration="fixed-capacity",
        model_names=("SRAM", "Jan_S"),
        seed=seed,
        n_accesses=6000,
    )


class TestCellDigest:
    def test_stable(self):
        assert cell_digest(_cell()) == cell_digest(_cell())

    @pytest.mark.parametrize(
        "other",
        [
            _cell(workload="gamess"),
            _cell(seed=8),
            SweepCell("leela", "capacity-sweep", ("SRAM", "Jan_S"), seed=7,
                      n_accesses=6000),
            SweepCell("leela", "fixed-capacity", ("SRAM",), seed=7,
                      n_accesses=6000),
            SweepCell("leela", "fixed-capacity", ("SRAM", "Jan_S"), seed=7,
                      n_accesses=9000),
        ],
    )
    def test_sensitive_to_every_field(self, other):
        assert cell_digest(_cell()) != cell_digest(other)

    def test_covers_cache_version(self, monkeypatch):
        before = cell_digest(_cell())
        import repro.sim.replay_cache as rc

        monkeypatch.setattr(rc, "CACHE_VERSION", rc.CACHE_VERSION + 1)
        assert cell_digest(_cell()) != before


class TestResultSerialization:
    def test_exact_round_trip(self):
        """JSON floats are repr-exact: restore == recompute, which is
        what makes resumed output byte-identical."""
        original = _result()
        assert result_from_dict(result_to_dict(original)) == original

    def test_round_trip_through_json_text(self):
        original = _result()
        text = json.dumps(result_to_dict(original))
        assert result_from_dict(json.loads(text)) == original

    def test_numpy_scalars_become_native(self):
        import numpy as np

        result = _result(runtime_s=float(np.float64(0.25)))
        data = result_to_dict(result)
        assert type(data["runtime_s"]) is float
        assert json.dumps(data)  # nothing non-JSON-native survives


class TestJournal:
    def test_record_and_load(self, tmp_path):
        cells = [_cell(seed=s) for s in (1, 2)]
        results = {c: {"SRAM": _result(workload=c.workload)} for c in cells}
        with CheckpointJournal(tmp_path) as journal:
            for cell in cells:
                journal.record(cell, results[cell])
            assert journal.recorded == 2
        loaded = CheckpointJournal(tmp_path).load()
        assert set(loaded) == {cell_digest(c) for c in cells}
        for cell in cells:
            assert loaded[cell_digest(cell)] == results[cell]

    def test_load_missing_journal_is_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "nowhere").load() == {}

    def test_truncated_tail_loses_only_last_record(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        for seed in (1, 2, 3):
            journal.record(_cell(seed=seed), {"SRAM": _result()})
        journal.close()
        path = tmp_path / CHECKPOINT_NAME
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - len(blob.splitlines()[-1]) // 2 - 1])
        fresh = CheckpointJournal(tmp_path)
        loaded = fresh.load()
        assert set(loaded) == {cell_digest(_cell(seed=s)) for s in (1, 2)}
        assert fresh.skipped_corrupt == 1

    def test_bit_flipped_line_is_skipped(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record(_cell(seed=1), {"SRAM": _result()})
        journal.record(_cell(seed=2), {"SRAM": _result()})
        journal.close()
        path = tmp_path / CHECKPOINT_NAME
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace("1", "2", 1)
        path.write_text("\n".join(lines) + "\n")
        fresh = CheckpointJournal(tmp_path)
        loaded = fresh.load()
        assert set(loaded) == {cell_digest(_cell(seed=2))}
        assert fresh.skipped_corrupt == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / CHECKPOINT_NAME
        path.write_text('not json\n{"check": "00", "payload": {}}\n\n')
        fresh = CheckpointJournal(tmp_path)
        assert fresh.load() == {}
        assert fresh.skipped_corrupt == 2  # blank line is not a record

    def test_append_preserves_existing_records(self, tmp_path):
        first = CheckpointJournal(tmp_path)
        first.record(_cell(seed=1), {"SRAM": _result()})
        first.close()
        second = CheckpointJournal(tmp_path)
        assert len(second.load()) == 1
        second.record(_cell(seed=2), {"SRAM": _result()})
        second.close()
        assert len(CheckpointJournal(tmp_path).load()) == 2

    def test_discard_removes_file(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record(_cell(), {"SRAM": _result()})
        journal.discard()
        assert not (tmp_path / CHECKPOINT_NAME).exists()
        journal.discard()  # idempotent

    def test_write_failure_raises_checkpoint_error(self, tmp_path, monkeypatch):
        """ENOSPC (simulated) surfaces as CheckpointError and the next
        successful record resynchronises the framing."""
        journal = CheckpointJournal(tmp_path)
        journal.record(_cell(seed=1), {"SRAM": _result()})

        real_fsync = __import__("os").fsync

        def exploding_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.sim.checkpoint.os.fsync", exploding_fsync)
        with pytest.raises(CheckpointError):
            journal.record(_cell(seed=2), {"SRAM": _result()})
        monkeypatch.setattr("repro.sim.checkpoint.os.fsync", real_fsync)
        journal.record(_cell(seed=3), {"SRAM": _result()})
        journal.close()
        loaded = CheckpointJournal(tmp_path).load()
        digests = {cell_digest(_cell(seed=s)) for s in (1, 3)}
        assert digests <= set(loaded)
