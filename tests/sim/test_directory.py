"""Tests for the full-map coherence directory."""

from repro.sim.directory import FullMapDirectory


class TestSharerTracking:
    def test_shared_fills_accumulate(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=False)
        directory.on_fill(1, 100, exclusive=False)
        assert directory.sharers_of(100) == {0, 1}

    def test_exclusive_fill_invalidates_others(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=False)
        directory.on_fill(1, 100, exclusive=False)
        victims = directory.on_fill(2, 100, exclusive=True)
        assert set(victims) == {0, 1}
        assert directory.sharers_of(100) == {2}
        assert directory.stats.invalidations_sent == 2
        assert directory.stats.sharing_misses == 1

    def test_exclusive_fill_by_sole_sharer_no_victims(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=True)
        assert directory.on_fill(0, 100, exclusive=True) == []

    def test_shared_fill_downgrades_owner(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=True)
        victims = directory.on_fill(1, 100, exclusive=False)
        assert victims == [0]
        assert directory.stats.downgrades_sent == 1
        # Owner cleared; a second reader causes no further downgrade.
        assert directory.on_fill(2, 100, exclusive=False) == []

    def test_owner_reading_own_block_no_downgrade(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=True)
        assert directory.on_fill(0, 100, exclusive=False) == []


class TestEviction:
    def test_evict_removes_sharer(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=False)
        directory.on_fill(1, 100, exclusive=False)
        directory.on_evict(0, 100)
        assert directory.sharers_of(100) == {1}

    def test_evict_clears_ownership(self):
        directory = FullMapDirectory(4)
        directory.on_fill(0, 100, exclusive=True)
        directory.on_evict(0, 100)
        assert directory.on_fill(1, 100, exclusive=False) == []

    def test_evict_unknown_block_harmless(self):
        directory = FullMapDirectory(4)
        directory.on_evict(0, 12345)
        assert directory.sharers_of(12345) == set()
