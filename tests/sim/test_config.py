"""Tests for the Table IV architecture configuration."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.sim.config import ArchitectureConfig, CacheLevelConfig, DRAMConfig, gainestown


class TestGainestown:
    def test_table4_parameters(self):
        arch = gainestown()
        assert arch.n_cores == 4
        assert arch.clock_hz == pytest.approx(2.66e9)
        assert arch.rob_entries == 128
        assert arch.load_queue_entries == 48
        assert arch.store_queue_entries == 32
        assert arch.l1d.capacity_bytes == 32 * units.KB
        assert arch.l1d.associativity == 8
        assert arch.l2.capacity_bytes == 256 * units.KB
        assert arch.l2.associativity == 8
        assert arch.llc_associativity == 16
        assert arch.llc_block_bytes == 64

    def test_dram_table4(self):
        dram = gainestown().dram
        assert dram.n_controllers == 4
        assert dram.bandwidth_per_controller == pytest.approx(7.6e9)
        assert dram.total_bandwidth == pytest.approx(4 * 7.6e9)

    def test_cycles_round_trip(self):
        arch = gainestown()
        assert arch.cycles(arch.cycle_s) == pytest.approx(1.0)
        assert arch.cycles(1e-9) == pytest.approx(2.66)

    def test_with_cores(self):
        arch = gainestown().with_cores(16)
        assert arch.n_cores == 16
        assert arch.l2.capacity_bytes == 256 * units.KB  # unchanged

    def test_paper_assumptions_default(self):
        arch = gainestown()
        assert arch.llc_write_backpressure == 0.0
        assert arch.llc_fill_writes is False


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(n_cores=0)

    def test_rejects_sub_unity_mlp(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(max_mlp=0.5)

    def test_cache_level_whole_sets(self):
        with pytest.raises(ConfigurationError):
            CacheLevelConfig(capacity_bytes=1000, associativity=3)

    def test_cache_level_sets(self):
        level = CacheLevelConfig(32 * units.KB, 8)
        assert level.n_sets == 64
