"""Tests for the alternative replacement policies."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cache import SetAssocCache
from repro.sim.replacement import POLICIES, RandomCache, SRRIPCache, make_cache


class TestFactory:
    def test_policy_selection(self):
        assert isinstance(make_cache(1024, 64, 4, "lru"), SetAssocCache)
        assert isinstance(make_cache(1024, 64, 4, "random"), RandomCache)
        assert isinstance(make_cache(1024, 64, 4, "srrip"), SRRIPCache)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cache(1024, 64, 4, "plru")

    def test_policy_list(self):
        assert set(POLICIES) == {"lru", "random", "srrip"}


class _SharedPolicyChecks:
    """Behavioural contract every policy must satisfy."""

    def make(self, capacity=1024, block=64, assoc=4):
        raise NotImplementedError

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(5, False).hit
        assert cache.access(5, False).hit

    def test_occupancy_bounded(self):
        cache = self.make(capacity=512, assoc=2)
        for block in range(100):
            cache.access(block, False)
        assert cache.occupancy() <= 8

    def test_stats_partition(self):
        cache = self.make()
        for block in [1, 2, 1, 3, 2, 1]:
            cache.access(block, False)
        assert cache.stats.hits + cache.stats.misses == 6

    def test_dirty_eviction_reported(self):
        cache = self.make(capacity=128, block=64, assoc=2)
        cache.access(0, True)
        cache.access(2, True)
        outcome = cache.access(4, True)
        assert outcome.dirty_victim in (0, 2)
        assert cache.stats.writebacks == 1

    def test_invalidate(self):
        cache = self.make()
        cache.access(9, True)
        assert cache.invalidate(9) is True
        assert not cache.contains(9)
        assert cache.invalidate(9) is False

    def test_fill_no_demand_count(self):
        cache = self.make()
        cache.fill(3, dirty=True)
        assert cache.stats.accesses == 0
        assert cache.contains(3)


class TestRandomPolicy(_SharedPolicyChecks):
    def make(self, capacity=1024, block=64, assoc=4):
        return RandomCache(capacity, block, assoc, seed=7)

    def test_deterministic_given_seed(self):
        def run():
            cache = RandomCache(256, 64, 2, seed=11)
            misses = 0
            for block in range(50):
                misses += not cache.access(block % 7, False).hit
            return misses

        assert run() == run()


class TestSRRIPPolicy(_SharedPolicyChecks):
    def make(self, capacity=1024, block=64, assoc=4):
        return SRRIPCache(capacity, block, assoc)

    def test_scan_resistance(self):
        """SRRIP keeps a reused block alive through a one-shot scan that
        LRU would let evict it."""
        # One set: 4 ways.  Hot block 0 is re-referenced; blocks 4..
        # stream through once each.
        srrip = SRRIPCache(256, 64, 4)
        lru = SetAssocCache(256, 64, 4)
        for cache in (srrip, lru):
            cache.access(0, False)
            cache.access(0, False)  # establish reuse
            for scan in range(1, 9):
                cache.access(scan * 4, False)  # same set, one-shot
        assert srrip.contains(0)
        assert not lru.contains(0)


class TestPolicyDifferentiation:
    def test_random_beats_lru_on_cyclic_thrash(self):
        """Classic result: a cyclic sweep slightly over capacity gets 0%
        under LRU but nonzero hits under random replacement."""
        blocks = list(range(20)) * 10  # 20 blocks, 16-frame cache
        lru = make_cache(16 * 64, 64, 4, "lru")
        rnd = make_cache(16 * 64, 64, 4, "random")
        lru_hits = sum(lru.access(b, False).hit for b in blocks)
        rnd_hits = sum(rnd.access(b, False).hit for b in blocks)
        assert lru_hits == 0
        assert rnd_hits > 0
