"""Tests for the private-level filter (L1/L2 + directory)."""

import numpy as np
import pytest

from repro.sim.config import gainestown
from repro.sim.hierarchy import filter_private
from repro.trace.access import AccessType, MemoryAccess
from repro.trace.stream import Trace


def _trace(accesses, name="t"):
    return Trace.from_accesses(accesses, name=name)


class TestSingleCore:
    def test_l1_absorbs_repeats(self):
        accesses = [MemoryAccess(0x1000, AccessType.READ)] * 50
        result = filter_private(_trace(accesses), gainestown())
        counters = result.per_core[0]
        assert counters.l1_hits == 49
        assert counters.l1_misses == 1
        assert len(result.stream) == 1  # one compulsory LLC read

    def test_llc_stream_reads_are_demand_misses(self):
        # 1000 distinct blocks exceed nothing, but are all cold in L1/L2.
        accesses = [
            MemoryAccess(i * 64, AccessType.READ) for i in range(1000)
        ]
        result = filter_private(_trace(accesses), gainestown())
        assert result.stream.n_reads == 1000
        assert result.stream.n_writes == 0

    def test_dirty_l2_evictions_become_llc_writes(self):
        # Write a footprint larger than L1+L2 so dirty lines spill.
        arch = gainestown()
        n_blocks = (arch.l2.capacity_bytes + arch.l1d.capacity_bytes) // 64 * 3
        accesses = [
            MemoryAccess(i * 64, AccessType.WRITE) for i in range(n_blocks)
        ]
        result = filter_private(_trace(accesses), arch)
        assert result.stream.n_writes > 0

    def test_instruction_accounting(self):
        accesses = [
            MemoryAccess(0, AccessType.READ, gap=9),
            MemoryAccess(64, AccessType.READ, gap=4),
        ]
        result = filter_private(_trace(accesses), gainestown())
        assert result.total_instructions == (9 + 1) + (4 + 1)
        assert result.total_accesses == 2

    def test_instruction_positions_monotone(self):
        accesses = [
            MemoryAccess(i * 64, AccessType.READ, gap=2) for i in range(100)
        ]
        result = filter_private(_trace(accesses), gainestown())
        positions = np.asarray(result.stream.instr_positions)
        assert (np.diff(positions) > 0).all()


class TestMultiCore:
    def test_threads_map_to_cores(self):
        accesses = [
            MemoryAccess(i * 64, AccessType.READ, thread_id=i % 4)
            for i in range(400)
        ]
        result = filter_private(_trace(accesses), gainestown())
        busy = [c for c in result.per_core if c.accesses > 0]
        assert len(busy) == 4

    def test_store_to_shared_block_invalidates(self):
        # Core 0 and 1 read block 0; core 2 writes it: remote copies die,
        # so core 0's next read misses again in its private hierarchy.
        accesses = [
            MemoryAccess(0, AccessType.READ, thread_id=0),
            MemoryAccess(0, AccessType.READ, thread_id=1),
            MemoryAccess(0, AccessType.WRITE, thread_id=2),
            MemoryAccess(0, AccessType.READ, thread_id=0),
        ]
        result = filter_private(_trace(accesses), gainestown())
        assert result.directory.invalidations_sent >= 2
        core0 = result.per_core[0]
        assert core0.l1_misses == 2  # initial cold + post-invalidate

    def test_remote_dirty_copy_written_back(self):
        accesses = [
            MemoryAccess(0, AccessType.WRITE, thread_id=0),
            MemoryAccess(0, AccessType.READ, thread_id=1),
        ]
        result = filter_private(_trace(accesses), gainestown())
        # The modified copy in core 0 is flushed through the LLC.
        assert result.stream.n_writes >= 1
        assert result.directory.downgrades_sent == 1

    def test_single_threaded_skips_directory(self):
        accesses = [MemoryAccess(0, AccessType.WRITE)] * 10
        result = filter_private(_trace(accesses), gainestown())
        assert result.directory.invalidations_sent == 0
        assert result.n_threads == 1


class TestRealisticTrace:
    def test_leela_filter_reduces_traffic(self, leela_trace):
        result = filter_private(leela_trace, gainestown())
        # The private levels must absorb most of the hot-pool traffic.
        assert len(result.stream) < len(leela_trace) * 0.6
        assert result.total_instructions == leela_trace.n_instructions

    def test_multithreaded_cg(self, cg_trace):
        result = filter_private(cg_trace, gainestown())
        assert result.n_threads == 4
        assert all(c.accesses > 0 for c in result.per_core)
