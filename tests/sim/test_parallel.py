"""Tests for the sweep-cell fan-out (:mod:`repro.sim.parallel`)."""

import pytest

from repro.errors import ExperimentError
from repro.sim.parallel import (
    BACKOFF_ENV,
    FaultPolicy,
    RETRIES_ENV,
    SweepCell,
    TIMEOUT_ENV,
    default_jobs,
    resolve_jobs,
    resolve_model,
    run_cell,
    run_cells,
)


def _cell(**overrides):
    base = dict(
        workload="leela",
        configuration="fixed-capacity",
        model_names=("SRAM", "Jan_S"),
        seed=7,
        n_accesses=6000,
        n_threads=None,
        arch=None,
    )
    base.update(overrides)
    return SweepCell(**base)


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == default_jobs() >= 1

    def test_explicit_counts_pass_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_jobs(-1)


class TestResolveModel:
    def test_sram_maps_to_baseline(self):
        from repro.nvsim.published import sram_baseline

        assert resolve_model("SRAM", "fixed-area") == sram_baseline("fixed-area")

    def test_published_names_resolve(self):
        assert resolve_model("Jan_S", "fixed-capacity").name == "Jan_S"


class TestRunCell:
    def test_runs_all_models(self):
        results = run_cell(_cell())
        assert set(results) == {"SRAM", "Jan_S"}
        assert results["SRAM"].workload == "leela"
        assert results["SRAM"].configuration == "fixed-capacity"

    def test_deterministic_across_calls(self):
        cell = _cell()
        first = run_cell(cell)
        second = run_cell(cell)
        assert first["Jan_S"].runtime_s == second["Jan_S"].runtime_s
        assert first["Jan_S"].counts == second["Jan_S"].counts

    def test_thread_override_changes_trace(self):
        single = run_cell(_cell())
        multi = run_cell(_cell(n_threads=4))
        assert single["SRAM"].counts != multi["SRAM"].counts


class TestRunCells:
    def test_serial_preserves_order(self):
        cells = [_cell(seed=1), _cell(seed=2)]
        results = run_cells(cells, jobs=1)
        assert len(results) == 2
        assert results[0]["SRAM"].counts != results[1]["SRAM"].counts

    def test_parallel_matches_serial(self):
        cells = [_cell(seed=1), _cell(seed=2, model_names=("SRAM",))]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert set(s) == set(p)
            for name in s:
                assert s[name].runtime_s == p[name].runtime_s
                assert s[name].counts == p[name].counts
                assert s[name].energy == p[name].energy

    def test_single_cell_stays_inline(self):
        # jobs > 1 with one cell must not pay pool startup.
        results = run_cells([_cell()], jobs=4)
        assert len(results) == 1


class TestSpilledCells:
    def _spilled(self, cell, tmp_path):
        import dataclasses

        from repro.workloads.generators import generate_from_profile
        from repro.workloads.profiles import profile

        trace = generate_from_profile(
            profile(cell.workload),
            seed=cell.seed,
            n_accesses=cell.n_accesses,
            n_threads=cell.n_threads,
        )
        # Prefix must be unique per cell: same-named spills in one
        # directory overwrite each other.
        handle = trace.spill(str(tmp_path), prefix=f"{cell.workload}-{cell.seed}")
        return dataclasses.replace(cell, trace_spill=handle)

    def test_spilled_cell_matches_inline(self, tmp_path):
        """A memmap-backed spill handle must be invisible in the
        results — same trace, same replay, same numbers."""
        cell = _cell()
        inline = run_cell(cell)
        spilled = run_cell(self._spilled(cell, tmp_path))
        assert set(spilled) == set(inline)
        for name in inline:
            assert spilled[name].counts == inline[name].counts
            assert spilled[name].runtime_s == inline[name].runtime_s
            assert spilled[name].energy == inline[name].energy

    def test_spilled_cells_across_pool_match_serial(self, tmp_path):
        """Workers map the spilled columns read-only; fan-out over the
        handle must equal the regenerate-in-worker serial path."""
        cells = [_cell(seed=1), _cell(seed=2, model_names=("SRAM",))]
        spilled = [self._spilled(c, tmp_path) for c in cells]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(spilled, jobs=2)
        for s, p in zip(serial, parallel):
            assert set(s) == set(p)
            for name in s:
                assert s[name].counts == p[name].counts
                assert s[name].runtime_s == p[name].runtime_s


class TestFaultPolicy:
    def test_defaults(self, monkeypatch):
        for env in (TIMEOUT_ENV, RETRIES_ENV, BACKOFF_ENV):
            monkeypatch.delenv(env, raising=False)
        policy = FaultPolicy.from_env()
        assert policy.cell_timeout_s is None
        assert policy.max_retries == 2
        assert policy.backoff_s == 0.1

    def test_env_values_parsed(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "45.5")
        monkeypatch.setenv(RETRIES_ENV, "5")
        monkeypatch.setenv(BACKOFF_ENV, "0.25")
        policy = FaultPolicy.from_env()
        assert policy.cell_timeout_s == 45.5
        assert policy.max_retries == 5
        assert policy.backoff_s == 0.25

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "45.5")
        monkeypatch.setenv(RETRIES_ENV, "5")
        policy = FaultPolicy.from_env(cell_timeout_s=2.0, max_retries=0)
        assert policy.cell_timeout_s == 2.0
        assert policy.max_retries == 0

    def test_garbage_env_rejected_loudly(self, monkeypatch):
        """A typo'd env var must not be silently ignored."""
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(ExperimentError):
            FaultPolicy.from_env()

    def test_negative_backoff_clamps_to_zero(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        monkeypatch.setenv(BACKOFF_ENV, "-1")
        assert FaultPolicy.from_env().backoff_s == 0.0

    def test_invalid_values_rejected(self, monkeypatch):
        for env in (TIMEOUT_ENV, RETRIES_ENV, BACKOFF_ENV):
            monkeypatch.delenv(env, raising=False)
        with pytest.raises(ExperimentError):
            FaultPolicy.from_env(max_retries=-1)
        with pytest.raises(ExperimentError):
            FaultPolicy.from_env(cell_timeout_s=0.0)
