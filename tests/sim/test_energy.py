"""Tests for LLC energy accounting."""

import pytest

from repro.errors import SimulationError
from repro.nvsim.published import published_model, sram_baseline
from repro.sim.energy import llc_energy
from repro.sim.llc import LLCCounts


def _counts(read_hits=100, read_misses=50, write_accesses=30, write_hits=25,
            write_misses=5, dirty_evictions=10):
    counts = LLCCounts(capacity_bytes=2 * 1024 * 1024, associativity=16)
    counts.read_lookups = read_hits + read_misses
    counts.read_hits = read_hits
    counts.read_misses = read_misses
    counts.write_accesses = write_accesses
    counts.write_hits = write_hits
    counts.write_misses = write_misses
    counts.dirty_evictions = dirty_evictions
    return counts


class TestLLCEnergy:
    def test_event_pricing(self):
        model = sram_baseline()
        counts = _counts()
        energy = llc_energy(counts, model, runtime_s=1e-3)
        assert energy.hit_energy_j == pytest.approx(100 * model.hit_energy_j)
        assert energy.miss_energy_j == pytest.approx(50 * model.miss_energy_j)
        assert energy.write_energy_j == pytest.approx(30 * model.write_energy_j)
        assert energy.leakage_energy_j == pytest.approx(model.leakage_w * 1e-3)

    def test_totals(self):
        energy = llc_energy(_counts(), sram_baseline(), 1e-3)
        assert energy.total_j == pytest.approx(
            energy.dynamic_j + energy.leakage_energy_j
        )
        assert 0.0 <= energy.leakage_fraction <= 1.0

    def test_fills_free_by_default(self):
        # Paper equation (7): a miss costs only the tag probe.
        model = published_model("Kang_P")
        without = llc_energy(_counts(), model, 1e-3)
        with_fills = llc_energy(_counts(), model, 1e-3, include_fill_writes=True)
        assert with_fills.write_energy_j > without.write_energy_j
        assert without.write_energy_j == pytest.approx(
            30 * model.write_energy_j
        )
        assert with_fills.write_energy_j == pytest.approx(
            (30 + 50) * model.write_energy_j
        )

    def test_leakage_dominates_sram_long_runs(self):
        # SRAM's 3.438 W at a millisecond dwarfs dynamic energy — the
        # mechanism behind the paper's 10x NVM energy savings.
        energy = llc_energy(_counts(), sram_baseline(), runtime_s=1e-3)
        assert energy.leakage_fraction > 0.95

    def test_pcram_write_heavy_dynamic(self):
        # 375 nJ Kang writes dominate its energy even over leakage.
        energy = llc_energy(
            _counts(write_accesses=10_000), published_model("Kang_P"), 1e-3
        )
        assert energy.write_energy_j > energy.leakage_energy_j

    def test_negative_runtime_rejected(self):
        with pytest.raises(SimulationError):
            llc_energy(_counts(), sram_baseline(), runtime_s=-1.0)

    def test_zero_runtime_zero_leakage(self):
        energy = llc_energy(_counts(), sram_baseline(), runtime_s=0.0)
        assert energy.leakage_energy_j == 0.0
