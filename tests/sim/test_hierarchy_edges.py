"""Edge-path tests for the private hierarchy filter."""

import dataclasses

import numpy as np
import pytest

from repro.sim.config import CacheLevelConfig, gainestown
from repro.sim.hierarchy import filter_private
from repro.trace.access import AccessType, MemoryAccess
from repro.trace.stream import Trace


def _tiny_arch():
    """An architecture with miniature private caches so eviction chains
    trigger within a handful of accesses."""
    return dataclasses.replace(
        gainestown(),
        l1d=CacheLevelConfig(4 * 64, 2, block_bytes=64),   # 4 blocks
        l2=CacheLevelConfig(8 * 64, 2, block_bytes=64),    # 8 blocks
    )


class TestEvictionChains:
    def test_l1_dirty_eviction_lands_in_l2(self):
        # Write 3 blocks mapping to one L1 set (assoc 2): the first gets
        # evicted dirty into L2 — no LLC write yet (L2 absorbs it).
        arch = _tiny_arch()
        accesses = [
            MemoryAccess(0 * 64, AccessType.WRITE),
            MemoryAccess(2 * 64, AccessType.WRITE),
            MemoryAccess(4 * 64, AccessType.WRITE),
        ]
        result = filter_private(Trace.from_accesses(accesses), arch)
        assert result.stream.n_writes == 0

    def test_l2_dirty_spill_reaches_llc(self):
        # Enough dirty blocks to overflow L1 and then L2: the LLC must
        # eventually receive writeback traffic.
        arch = _tiny_arch()
        accesses = [
            MemoryAccess(i * 64, AccessType.WRITE) for i in range(64)
        ] * 2
        result = filter_private(Trace.from_accesses(accesses), arch)
        assert result.stream.n_writes > 0
        # Writebacks are a subset of blocks actually written.
        written = {a.block_address for a in accesses}
        spilled = set(int(b) for b in result.stream.blocks[result.stream.writes])
        assert spilled <= written

    def test_empty_trace(self):
        result = filter_private(Trace.empty("none"), gainestown())
        assert len(result.stream) == 0
        assert result.total_instructions == 0

    def test_thread_beyond_core_count_wraps(self):
        accesses = [
            MemoryAccess(i * 64, AccessType.READ, thread_id=6) for i in range(10)
        ]
        result = filter_private(Trace.from_accesses(accesses), gainestown())
        # Thread 6 on a 4-core machine lands on core 2.
        assert result.per_core[2].accesses == 10


class TestTechniqueRemapCorrectness:
    def test_rotation_preserves_total_traffic(self):
        from repro.sim.hierarchy import LLCStream
        from repro.techniques.base import Technique
        from repro.techniques.replay import replay_with_technique
        from repro.techniques.wear_leveling import SetRotationLeveling

        rng = np.random.default_rng(2)
        blocks = rng.integers(0, 4096, size=3000).astype(np.uint64)
        writes = rng.random(3000) < 0.3
        stream = LLCStream(
            blocks=blocks,
            writes=writes,
            cores=np.zeros(3000, dtype=np.uint16),
            instr_positions=np.arange(3000, dtype=np.uint64),
        )
        base = replay_with_technique(stream, Technique(), 256 * 1024)
        rotated = replay_with_technique(
            stream, SetRotationLeveling(period=500), 256 * 1024
        )
        # Rotation changes placement, never the amount of traffic.
        assert (
            rotated.counts.read_lookups + rotated.counts.write_accesses
            == base.counts.read_lookups + base.counts.write_accesses
        )
