"""Tests for the top-level system simulation wiring."""

import pytest

from repro.nvsim.published import published_model, published_models, sram_baseline
from repro.sim.config import gainestown
from repro.sim.system import SimulationSession, simulate_system


class TestSimulateSystem:
    def test_one_call_entry_point(self, leela_trace, sram_model):
        result = simulate_system(leela_trace, sram_model)
        assert result.workload == "leela"
        assert result.llc_name == "SRAM"
        assert result.runtime_s > 0

    def test_precomputed_stages_give_same_answer(self, leela_trace, xue_model):
        from repro.sim.hierarchy import filter_private
        from repro.sim.system import replay_llc

        arch = gainestown()
        private = filter_private(leela_trace, arch)
        counts = replay_llc(private, xue_model, arch)
        direct = simulate_system(leela_trace, xue_model, arch)
        staged = simulate_system(
            leela_trace, xue_model, arch, private=private, llc_counts=counts
        )
        assert staged.runtime_s == pytest.approx(direct.runtime_s)
        assert staged.llc_energy_j == pytest.approx(direct.llc_energy_j)


class TestSimulationSession:
    def test_private_computed_once(self, leela_trace):
        session = SimulationSession(leela_trace)
        first = session.private
        assert session.private is first

    def test_llc_counts_cached_by_capacity(self, leela_trace):
        session = SimulationSession(leela_trace)
        a = session.counts_for(sram_baseline())          # 2 MB
        b = session.counts_for(published_model("Xue_S"))  # 2 MB too
        assert a is b
        c = session.counts_for(published_model("Xue_S", "fixed-area"))  # 8 MB
        assert c is not a

    def test_same_capacity_same_misses(self, leela_trace):
        # Technology never changes hit/miss behaviour at equal geometry.
        session = SimulationSession(leela_trace)
        results = [
            session.run(m)
            for m in published_models("fixed-capacity")
        ]
        misses = {r.counts.read_misses for r in results}
        assert len(misses) == 1

    def test_configuration_override(self, leela_trace, sram_model):
        session = SimulationSession(leela_trace, configuration="fixed-capacity")
        result = session.run(sram_model, configuration="fixed-area")
        assert result.configuration == "fixed-area"
