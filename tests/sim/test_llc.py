"""Tests for the shared LLC replay and MLP estimation."""

import numpy as np
import pytest

from repro import units
from repro.sim.hierarchy import LLCStream
from repro.sim.llc import LLCCounts, estimate_mlp, simulate_llc


def _stream(blocks, writes=None, cores=None, positions=None):
    n = len(blocks)
    return LLCStream(
        blocks=np.array(blocks, dtype=np.uint64),
        writes=np.array(writes if writes is not None else [False] * n),
        cores=np.array(cores if cores is not None else [0] * n, dtype=np.uint16),
        instr_positions=np.array(
            positions if positions is not None else range(n), dtype=np.uint64
        ),
    )


class TestLLCReplay:
    def test_cold_then_hot(self):
        counts = simulate_llc(_stream([1, 2, 3, 1, 2, 3]), 64 * units.KB)
        assert counts.read_misses == 3
        assert counts.read_hits == 3

    def test_capacity_knee(self):
        # Cyclic sweep over 2x capacity: zero hits; at 4x capacity LLC the
        # same stream hits on the second pass.
        blocks = list(range(64)) * 3
        thrash = simulate_llc(_stream(blocks), capacity_bytes=32 * 64,
                              associativity=4, block_bytes=64)
        roomy = simulate_llc(_stream(blocks), capacity_bytes=128 * 64,
                             associativity=4, block_bytes=64)
        assert thrash.read_hits == 0
        assert roomy.read_hits == 128

    def test_writeback_writes_counted(self):
        counts = simulate_llc(
            _stream([1, 2], writes=[True, True]), 64 * units.KB
        )
        assert counts.write_accesses == 2
        assert counts.write_misses == 2
        assert counts.read_lookups == 0

    def test_fills_property(self):
        counts = simulate_llc(
            _stream([1, 2, 3], writes=[False, False, True]), 64 * units.KB
        )
        assert counts.fills == counts.read_misses + counts.write_misses == 3

    def test_data_writes_includes_fills(self):
        counts = simulate_llc(
            _stream([1, 2, 3], writes=[False, False, True]), 64 * units.KB
        )
        assert counts.data_writes == counts.write_accesses + counts.read_misses

    def test_dirty_evictions_reach_dram(self):
        # Fill a tiny LLC with dirty lines, then push them out.
        blocks = list(range(100))
        counts = simulate_llc(
            _stream(blocks, writes=[True] * 100),
            capacity_bytes=16 * 64,
            associativity=4,
        )
        assert counts.dirty_evictions > 0
        assert counts.dram_writes == counts.dirty_evictions

    def test_dram_reads_are_demand_misses_only(self):
        counts = simulate_llc(
            _stream([1, 2, 3], writes=[False, True, True]), 64 * units.KB
        )
        assert counts.dram_reads == 1

    def test_per_core_split(self):
        counts = simulate_llc(
            _stream([1, 2, 3, 4], cores=[0, 1, 0, 1]), 64 * units.KB,
            n_cores=2,
        )
        assert counts.per_core_read_misses == [2, 2]

    def test_mpki(self):
        counts = simulate_llc(_stream([1, 2, 3]), 64 * units.KB)
        assert counts.mpki(3000) == pytest.approx(1.0)

    def test_miss_rate(self):
        counts = simulate_llc(_stream([1, 1, 1, 2]), 64 * units.KB)
        assert counts.miss_rate == pytest.approx(0.5)


class TestMLPEstimation:
    def test_isolated_misses_mlp_one(self):
        positions = np.array([0, 1000, 2000, 3000], dtype=np.uint64)
        assert estimate_mlp(positions, window=128, ceiling=6.0) == 1.0

    def test_clustered_misses_overlap(self):
        # Four misses within one ROB window: MLP 4.
        positions = np.array([0, 10, 20, 30], dtype=np.uint64)
        assert estimate_mlp(positions, window=128, ceiling=6.0) == 4.0

    def test_ceiling_respected(self):
        positions = np.arange(0, 100, 5, dtype=np.uint64)
        assert estimate_mlp(positions, window=128, ceiling=4.0) == 4.0

    def test_mixed_clusters(self):
        positions = np.array([0, 10, 5000, 5010], dtype=np.uint64)
        assert estimate_mlp(positions, window=128, ceiling=6.0) == 2.0

    def test_empty_and_single(self):
        assert estimate_mlp(np.array([], dtype=np.uint64), 128, 6.0) == 1.0
        assert estimate_mlp(np.array([5], dtype=np.uint64), 128, 6.0) == 1.0
