"""Tests for the persistent replay cache (:mod:`repro.sim.replay_cache`)."""

import dataclasses
import os

import numpy as np
import pytest

from repro.sim.config import gainestown
from repro.sim.replay_cache import (
    CACHE_DIR_ENV,
    CACHE_ENABLE_ENV,
    ReplayCache,
    default_cache,
    llc_geometry_key,
    private_arch_key,
    reset_default_cache,
    trace_fingerprint,
)
from repro.trace.stream import Trace


def _trace(n=64, seed=3, name="t"):
    rng = np.random.default_rng(seed)
    return Trace(
        addresses=rng.integers(0, 1 << 20, n).astype(np.uint64),
        writes=rng.random(n) < 0.3,
        thread_ids=np.zeros(n, dtype=np.uint16),
        gaps=rng.integers(0, 10, n).astype(np.uint32),
        name=name,
    )


class TestFingerprint:
    def test_deterministic(self):
        assert trace_fingerprint(_trace()) == trace_fingerprint(_trace())

    def test_content_sensitive(self):
        assert trace_fingerprint(_trace(seed=3)) != trace_fingerprint(_trace(seed=4))

    def test_name_does_not_matter(self):
        assert trace_fingerprint(_trace(name="a")) == trace_fingerprint(_trace(name="b"))


class TestArchKeys:
    def test_private_key_ignores_timing_constants(self):
        """Sensitivity sweeps vary timing knobs only; they must share
        one private replay."""
        arch = gainestown()
        tweaked = dataclasses.replace(arch, base_cpi=9.9, max_mlp=2.0)
        assert private_arch_key(arch) == private_arch_key(tweaked)

    def test_private_key_sees_geometry(self):
        arch = gainestown()
        assert private_arch_key(arch) != private_arch_key(gainestown(n_cores=8))

    def test_llc_key_sees_capacity_and_mlp(self):
        arch = gainestown()
        assert llc_geometry_key(arch, 1 << 20) != llc_geometry_key(arch, 2 << 20)
        tweaked = dataclasses.replace(arch, max_mlp=2.0)
        assert llc_geometry_key(arch, 1 << 20) != llc_geometry_key(tweaked, 1 << 20)


class TestStore:
    def test_round_trip(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.hits == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        assert cache.get("absent") is None
        assert cache.misses == 1

    @pytest.mark.parametrize(
        "junk",
        [
            b"not a pickle",  # UnpicklingError
            b"garbage\n",     # ValueError ('g' is the GET opcode)
            b"",              # EOFError
        ],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, junk):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", [1, 2])
        (tmp_path / "k.pkl").write_bytes(junk)
        assert cache.get("k") is None

    def test_disabled_cache_stores_nothing(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=False)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert cache.entries() == 0

    def test_clear(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.entries() == 2
        assert cache.clear() == 2
        assert cache.entries() == 0

    def test_small_traces_skip_cache(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True, min_accesses=100)
        assert not cache.should_cache(_trace(n=64))
        assert cache.should_cache(_trace(n=128))


class TestIntegrity:
    def test_corruption_quarantines_entry(self, tmp_path):
        """A damaged entry is a counted miss and is deleted so it can
        never fail (or lie) twice."""
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", [1, 2])
        (tmp_path / "k.pkl").write_bytes(b"RPC2" + b"\x00" * 40)
        assert cache.get("k") is None
        assert cache.corrupt == 1
        assert not (tmp_path / "k.pkl").exists()

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", list(range(100)))
        blob = (tmp_path / "k.pkl").read_bytes()
        (tmp_path / "k.pkl").write_bytes(blob[: len(blob) // 2])
        assert cache.get("k") is None
        assert cache.corrupt == 1
        assert not (tmp_path / "k.pkl").exists()

    def test_single_bit_flip_is_detected(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", {"value": 123456})
        blob = bytearray((tmp_path / "k.pkl").read_bytes())
        blob[len(blob) // 2] ^= 0x01
        (tmp_path / "k.pkl").write_bytes(bytes(blob))
        assert cache.get("k") is None
        assert cache.corrupt == 1

    def test_entry_format_round_trips(self):
        from repro.sim.replay_cache import _pack, _unpack

        value = {"a": [1.5, 2.5], "b": "text"}
        assert _unpack(_pack(value)) == value
        with pytest.raises(ValueError):
            _unpack(b"XXXX" + _pack(value)[4:])
        with pytest.raises(ValueError):
            _unpack(b"RPC2")


class TestMeta:
    def test_meta_round_trip(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", {"x": 1}, meta={"engine": "vector"})
        assert cache.get("k") == {"x": 1}
        assert cache.entry_meta("k") == {"engine": "vector"}

    def test_legacy_entry_reports_empty_meta(self, tmp_path):
        """Entries stored before (or without) metadata read back
        unchanged and report ``{}`` — no cache-version bump."""
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("old", [1, 2, 3])
        assert cache.get("old") == [1, 2, 3]
        assert cache.entry_meta("old") == {}

    def test_dict_values_survive_without_meta(self, tmp_path):
        """A plain dict value must not be mistaken for the envelope."""
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("d", {"value": 9, "other": 1})
        assert cache.get("d") == {"value": 9, "other": 1}

    def test_missing_entry_meta_is_none(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        assert cache.entry_meta("absent") is None

    def test_entry_meta_is_side_effect_free(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("k", 1, meta={"engine": "fast"})
        hits, misses = cache.hits, cache.misses
        cache.entry_meta("k")
        cache.entry_meta("absent")
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_session_records_resolved_engine(self, tmp_path, monkeypatch):
        from repro.nvsim.published import sram_baseline
        from repro.sim.engine import ENGINE_ENV
        from repro.sim.system import SimulationSession

        monkeypatch.setenv(ENGINE_ENV, "vector")
        cache = ReplayCache(root=tmp_path, enabled=True, min_accesses=10)
        SimulationSession(_trace(n=200), replay_cache=cache).run(sram_baseline())
        stems = [p.stem for p in tmp_path.glob("*.pkl")]
        assert stems
        for stem in stems:
            assert cache.entry_meta(stem) == {"engine": "vector"}


class TestEviction:
    def _fill(self, cache, names, payload_bytes=2048):
        for name in names:
            cache.put(name, b"x" * payload_bytes)

    def test_lru_eviction_under_cap(self, tmp_path):
        """A fresh instance (empty live set) evicts oldest-first."""
        writer = ReplayCache(root=tmp_path, enabled=True, max_bytes=None)
        self._fill(writer, ["a", "b", "c"])
        os.utime(tmp_path / "a.pkl", (1, 1))
        os.utime(tmp_path / "b.pkl", (2, 2))
        capped = ReplayCache(root=tmp_path, enabled=True, max_bytes=5000)
        capped.put("d", b"x" * 2048)
        remaining = {p.name for p in tmp_path.glob("*.pkl")}
        assert "a.pkl" not in remaining  # oldest went first
        assert "d.pkl" in remaining
        assert capped.evictions >= 1

    def test_live_entries_never_evicted(self, tmp_path):
        """The cap may be transiently exceeded, but entries this
        process wrote are never its own victims."""
        cache = ReplayCache(root=tmp_path, enabled=True, max_bytes=3000)
        self._fill(cache, ["a", "b", "c", "d"])
        assert cache.evictions == 0
        assert {p.stem for p in tmp_path.glob("*.pkl")} == {"a", "b", "c", "d"}

    def test_hit_refreshes_recency(self, tmp_path):
        writer = ReplayCache(root=tmp_path, enabled=True)
        self._fill(writer, ["old", "hot"])
        os.utime(tmp_path / "old.pkl", (10, 10))
        os.utime(tmp_path / "hot.pkl", (5, 5))
        reader = ReplayCache(root=tmp_path, enabled=True)
        assert reader.get("hot") is not None  # re-touches mtime (and pins)
        assert (tmp_path / "hot.pkl").stat().st_mtime > 10

    def test_unbounded_without_cap(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True, max_bytes=None)
        self._fill(cache, [f"k{i}" for i in range(8)])
        assert cache.evictions == 0
        assert cache.entries() == 8

    def test_cap_parsing(self, monkeypatch):
        from repro.sim.replay_cache import CACHE_MAX_MB_ENV, cache_max_bytes

        monkeypatch.delenv(CACHE_MAX_MB_ENV, raising=False)
        assert cache_max_bytes() is None
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "2")
        assert cache_max_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "0.5")
        assert cache_max_bytes() == 512 * 1024
        for bad in ("", "nope", "-3", "0"):
            monkeypatch.setenv(CACHE_MAX_MB_ENV, bad)
            assert cache_max_bytes() is None


class TestTmpSweep:
    def test_stale_tmp_swept_on_open(self, tmp_path):
        """A worker killed mid-store leaves a *.tmp orphan; the next
        cache open removes it once it is clearly abandoned."""
        tmp_path.mkdir(exist_ok=True)
        stale = tmp_path / "orphan123.tmp"
        stale.write_bytes(b"partial write")
        os.utime(stale, (1, 1))  # ancient
        cache = ReplayCache(root=tmp_path, enabled=True)
        assert not stale.exists()
        assert cache.tmp_swept == 1

    def test_young_tmp_survives(self, tmp_path):
        """A fresh temp file may belong to a live concurrent writer."""
        young = tmp_path / "inflight.tmp"
        young.write_bytes(b"being written right now")
        cache = ReplayCache(root=tmp_path, enabled=True)
        assert young.exists()
        assert cache.tmp_swept == 0

    def test_explicit_sweep_with_zero_age(self, tmp_path):
        young = tmp_path / "inflight.tmp"
        young.write_bytes(b"x")
        cache = ReplayCache(root=tmp_path, enabled=True)
        assert cache.sweep_stale_tmp(max_age_s=0.0) == 1
        assert not young.exists()

    def test_entries_not_touched_by_sweep(self, tmp_path):
        cache = ReplayCache(root=tmp_path, enabled=True)
        cache.put("keep", 1)
        os.utime(tmp_path / "keep.pkl", (1, 1))
        cache.sweep_stale_tmp(max_age_s=0.0)
        assert cache.get("keep") == 1


class TestEnvironment:
    def test_disable_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENABLE_ENV, "0")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        reset_default_cache()
        try:
            assert not default_cache().enabled
        finally:
            reset_default_cache()

    def test_dir_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "sub"))
        reset_default_cache()
        try:
            assert default_cache().root == tmp_path / "sub"
        finally:
            reset_default_cache()


class TestSessionIntegration:
    def test_session_reuses_disk_entries(self, tmp_path):
        from repro.sim.system import SimulationSession
        from repro.nvsim.published import sram_baseline

        cache = ReplayCache(root=tmp_path, enabled=True, min_accesses=10)
        trace = _trace(n=200)
        model = sram_baseline()

        first = SimulationSession(trace, replay_cache=cache)
        result = first.run(model)
        stored = cache.entries()
        assert stored >= 2  # private replay + one LLC replay

        second = SimulationSession(trace, replay_cache=cache)
        hits_before = cache.hits
        replayed = second.run(model)
        assert cache.hits > hits_before
        assert cache.entries() == stored
        assert replayed.runtime_s == result.runtime_s
        assert replayed.counts == result.counts

    def test_cached_results_match_fresh_compute(self, tmp_path):
        from repro.sim.system import SimulationSession
        from repro.nvsim.published import published_model

        trace = _trace(n=300)
        model = published_model("Jan_S")
        warm_cache = ReplayCache(root=tmp_path, enabled=True, min_accesses=10)
        SimulationSession(trace, replay_cache=warm_cache).run(model)

        from_disk = SimulationSession(trace, replay_cache=warm_cache).run(model)
        no_cache = SimulationSession(
            trace, replay_cache=ReplayCache(enabled=False)
        ).run(model)
        assert from_disk.counts == no_cache.counts
        assert from_disk.runtime_s == no_cache.runtime_s
        assert from_disk.energy == no_cache.energy
