"""Tests for the structural DRAM subsystem model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import DRAMConfig
from repro.sim.dram import (
    BANKS_PER_CONTROLLER,
    ROW_CONFLICT_LATENCY_S,
    ROW_HIT_LATENCY_S,
    DRAMSubsystem,
    dram_traffic_from_stream,
)


class TestAddressMapping:
    def test_controllers_interleave_blocks(self):
        dram = DRAMSubsystem()
        controllers = [dram.controller_of(b) for b in range(8)]
        assert controllers == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_bank_in_range(self):
        dram = DRAMSubsystem()
        for block in range(0, 1 << 16, 997):
            assert 0 <= dram.bank_of(block) < BANKS_PER_CONTROLLER

    def test_row_groups_blocks(self):
        dram = DRAMSubsystem()
        # 8 KB row = 128 consecutive 64 B blocks share a row.
        assert dram.row_of(0) == dram.row_of(127)
        assert dram.row_of(0) != dram.row_of(128)


class TestReplay:
    def test_sequential_stream_hits_rows(self):
        dram = DRAMSubsystem()
        blocks = np.arange(4096, dtype=np.uint64)
        traffic = dram.replay(blocks)
        # Sequential blocks interleave over 4 controllers but stay in
        # the same row per bank for long runs.
        assert traffic.row_hit_rate > 0.9
        assert traffic.channel_imbalance == pytest.approx(1.0)

    def test_random_stream_conflicts(self):
        dram = DRAMSubsystem()
        rng = np.random.default_rng(5)
        blocks = rng.integers(0, 1 << 24, size=4000).astype(np.uint64)
        traffic = dram.replay(blocks)
        assert traffic.row_hit_rate < 0.2

    def test_traffic_conserved(self):
        dram = DRAMSubsystem()
        blocks = np.arange(1000, dtype=np.uint64)
        traffic = dram.replay(blocks)
        assert traffic.total_accesses == 1000
        assert traffic.row_hits + traffic.row_conflicts == 1000

    def test_single_channel_hotspot_detected(self):
        dram = DRAMSubsystem()
        # All blocks congruent mod 4: one controller takes everything.
        blocks = np.arange(0, 4000, 4, dtype=np.uint64)
        traffic = dram.replay(blocks)
        assert traffic.channel_imbalance == pytest.approx(4.0)


class TestEffectiveLatency:
    def test_bounded_by_components(self):
        dram = DRAMSubsystem()
        blocks = np.arange(4096, dtype=np.uint64)
        traffic = dram.replay(blocks)
        latency = traffic.effective_latency_s(DRAMConfig(), window_s=1e-3)
        assert ROW_HIT_LATENCY_S * 0.9 < latency < ROW_CONFLICT_LATENCY_S * 10

    def test_row_misses_cost_more(self):
        dram = DRAMSubsystem()
        sequential = dram.replay(np.arange(4096, dtype=np.uint64))
        rng = np.random.default_rng(6)
        random = dram.replay(
            rng.integers(0, 1 << 24, size=4096).astype(np.uint64)
        )
        config = DRAMConfig()
        assert random.effective_latency_s(config, 1e-3) > (
            sequential.effective_latency_s(config, 1e-3)
        )

    def test_queueing_grows_with_pressure(self):
        dram = DRAMSubsystem()
        traffic = dram.replay(np.arange(100_000, dtype=np.uint64))
        config = DRAMConfig()
        relaxed = traffic.effective_latency_s(config, window_s=1.0)
        pressed = traffic.effective_latency_s(config, window_s=1e-3)
        assert pressed > relaxed

    def test_zero_window_rejected(self):
        dram = DRAMSubsystem()
        traffic = dram.replay(np.arange(10, dtype=np.uint64))
        with pytest.raises(SimulationError):
            traffic.effective_latency_s(DRAMConfig(), window_s=0.0)


class TestStreamWrapper:
    def test_from_llc_stream(self, leela_session):
        traffic = dram_traffic_from_stream(
            leela_session.private.stream, None
        )
        assert traffic.total_accesses == leela_session.private.stream.n_reads
