"""Unit tests for the whole-trace vector LLC engine.

The randomized bit-identity contract lives in
``tests/property/test_engine_equivalence.py``; these tests pin the
vector engine's edges — empty streams, the high-address sentinel guard,
non-LRU routing, and the provenance counters.
"""

import numpy as np
import pytest

from repro.obs.metrics import scoped_registry
from repro.sim.engine import simulate_llc_fast, simulate_llc_vector
from repro.sim.hierarchy import LLCStream, filter_private
from repro.sim.llc import simulate_llc
from repro.trace.stream import Trace


def _stream(blocks, writes=None, cores=None) -> LLCStream:
    n = len(blocks)
    return LLCStream(
        blocks=np.asarray(blocks, dtype=np.uint64),
        writes=(
            np.zeros(n, dtype=bool)
            if writes is None
            else np.asarray(writes, dtype=bool)
        ),
        cores=(
            np.zeros(n, dtype=np.uint16)
            if cores is None
            else np.asarray(cores, dtype=np.uint16)
        ),
        instr_positions=np.cumsum(np.ones(n, dtype=np.uint64)),
    )


def _random_stream(n=4000, block_span=600, seed=11) -> LLCStream:
    rng = np.random.default_rng(seed)
    return _stream(
        rng.integers(0, block_span, n),
        writes=rng.random(n) < 0.3,
        cores=rng.integers(0, 4, n),
    )


KWARGS = dict(capacity_bytes=64 * 64, associativity=8, block_bytes=64, n_cores=4)


class TestEdges:
    def test_empty_stream(self):
        counts = simulate_llc_vector(_stream([]), **KWARGS)
        assert counts == simulate_llc_fast(_stream([]), **KWARGS)
        assert counts.read_lookups == 0
        assert counts.write_misses == 0

    def test_single_access(self):
        counts = simulate_llc_vector(_stream([5], writes=[True]), **KWARGS)
        assert counts.write_misses == 1
        assert counts.write_hits == 0

    def test_all_unique_blocks_all_miss(self):
        # Round 0 only: every block appears once, nothing can hit.
        counts = simulate_llc_vector(_stream(range(200)), **KWARGS)
        assert counts.read_misses == 200
        assert counts.read_hits == 0

    def test_sentinel_guard_delegates(self):
        """Block addresses at or above 2**63 collide with the empty-way
        sentinel; the vector engine must hand such streams to the
        batched loop and stay bit-identical."""
        huge = _stream(
            [(1 << 63) + 3, 5, (1 << 64) - 1, 5, (1 << 63) + 3],
            writes=[False, True, False, False, True],
        )
        assert simulate_llc_vector(huge, **KWARGS) == simulate_llc_fast(
            huge, **KWARGS
        )

    def test_matches_fast_on_random_stream(self):
        stream = _random_stream()
        assert simulate_llc_vector(stream, **KWARGS) == simulate_llc_fast(
            stream, **KWARGS
        )

    def test_rejects_bad_geometry(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            simulate_llc_vector(_stream([1]), capacity_bytes=100, block_bytes=64)


class TestDispatch:
    def test_non_lru_policy_routes_to_reference(self):
        """The vector engine implements LRU only; other policies must
        silently take the reference path and tag it as such."""
        stream = _random_stream(n=800)
        with scoped_registry() as registry:
            counts = simulate_llc(stream, policy="srrip", engine="vector", **KWARGS)
        assert registry.counters.get("sim.engine.reference.llc_replays") == 1
        assert "sim.engine.vector.llc_replays" not in registry.counters
        assert counts == simulate_llc(
            stream, policy="srrip", engine="reference", **KWARGS
        )

    def test_llc_replay_counter_tags_vector(self):
        with scoped_registry() as registry:
            simulate_llc(_random_stream(n=500), engine="vector", **KWARGS)
        assert registry.counters.get("sim.engine.vector.llc_replays") == 1

    def test_private_replay_counter_tags_vector(self):
        """The private hierarchy has no vector implementation — the
        batched loop serves it — but provenance records the engine the
        caller resolved."""
        rng = np.random.default_rng(2)
        n = 400
        trace = Trace(
            addresses=rng.integers(0, 1 << 16, n).astype(np.uint64),
            writes=rng.random(n) < 0.3,
            thread_ids=np.zeros(n, dtype=np.uint16),
            gaps=rng.integers(0, 4, n).astype(np.uint32),
            name="prov",
        )
        from repro.sim.config import gainestown

        arch = gainestown()
        with scoped_registry() as registry:
            vector = filter_private(trace, arch, engine="vector")
        assert registry.counters.get("sim.engine.vector.private_replays") == 1
        reference = filter_private(trace, arch, engine="reference")
        np.testing.assert_array_equal(vector.stream.blocks, reference.stream.blocks)
        assert vector.per_core == reference.per_core
