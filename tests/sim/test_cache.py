"""Tests for the set-associative cache."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cache import SetAssocCache


def _cache(capacity=1024, block=64, assoc=2):
    return SetAssocCache(capacity, block, assoc)


class TestGeometry:
    def test_sets_computed(self):
        cache = _cache()
        assert cache.n_sets == 8
        assert cache.capacity_bytes == 1024

    def test_rejects_fractional_sets(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache(1000, 64, 3)


class TestAccessSemantics:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert not cache.access(5, False).hit
        assert cache.access(5, False).hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = _cache(capacity=256, block=64, assoc=2)  # 2 sets
        # Set 0 gets blocks 0, 2, 4 (all map to set 0): 0 is LRU.
        cache.access(0, False)
        cache.access(2, False)
        cache.access(4, False)
        assert not cache.contains(0)
        assert cache.contains(2)
        assert cache.contains(4)

    def test_hit_refreshes_lru(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.access(0, False)
        cache.access(2, False)
        cache.access(0, False)  # refresh 0 -> 2 becomes LRU
        cache.access(4, False)
        assert cache.contains(0)
        assert not cache.contains(2)

    def test_dirty_eviction_reports_victim(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.access(0, True)  # dirty
        cache.access(2, False)
        outcome = cache.access(4, False)
        assert outcome.dirty_victim == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_silent(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.access(0, False)
        cache.access(2, False)
        outcome = cache.access(4, False)
        assert outcome.dirty_victim is None

    def test_write_hit_marks_dirty(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.access(0, False)
        cache.access(0, True)  # now dirty via hit
        cache.access(2, False)
        outcome = cache.access(4, False)
        assert outcome.dirty_victim == 0

    def test_dirty_preserved_across_read_hits(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.access(0, True)
        cache.access(0, False)  # read hit must not clean the line
        cache.access(2, False)
        assert cache.access(4, False).dirty_victim == 0


class TestFill:
    def test_fill_does_not_count_access(self):
        cache = _cache()
        cache.fill(3, dirty=True)
        assert cache.stats.accesses == 0
        assert cache.contains(3)

    def test_fill_existing_merges_dirty(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.fill(0, dirty=True)
        cache.fill(0, dirty=False)  # must stay dirty
        cache.access(2, False)
        assert cache.access(4, False).dirty_victim == 0

    def test_fill_evicts_dirty_victim(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        cache.fill(0, dirty=True)
        cache.fill(2, dirty=False)
        assert cache.fill(4, dirty=False) == 0


class TestInvalidate:
    def test_invalidate_returns_dirtiness(self):
        cache = _cache()
        cache.access(1, True)
        cache.access(2, False)
        assert cache.invalidate(1) is True
        assert cache.invalidate(2) is False
        assert cache.invalidate(99) is False

    def test_invalidated_line_absent(self):
        cache = _cache()
        cache.access(1, False)
        cache.invalidate(1)
        assert not cache.contains(1)
        assert cache.stats.invalidations == 1


class TestOccupancy:
    def test_occupancy_counts_lines(self):
        cache = _cache()
        for block in range(5):
            cache.access(block, False)
        assert cache.occupancy() == 5

    def test_occupancy_bounded_by_capacity(self):
        cache = _cache(capacity=256, block=64, assoc=2)
        for block in range(100):
            cache.access(block, False)
        assert cache.occupancy() <= 4
