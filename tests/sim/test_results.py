"""Tests for SimResult metrics and normalisation."""

import pytest

from repro.errors import SimulationError
from repro.sim.results import normalize
from repro.sim.system import SimulationSession
from repro.workloads.generators import generate_trace


class TestSimResult:
    def test_metrics_positive(self, leela_session, sram_model):
        result = leela_session.run(sram_model)
        assert result.runtime_s > 0
        assert result.llc_energy_j > 0
        assert result.ipc > 0
        assert result.mpki > 0
        assert result.ed2p == pytest.approx(
            result.llc_energy_j * result.runtime_s**2
        )

    def test_ipc_plausible_for_ooo_core(self, leela_session, sram_model):
        result = leela_session.run(sram_model)
        # A 4-wide OoO core with misses lands between 0.05 and 2 IPC.
        assert 0.05 < result.ipc < 2.0

    def test_configuration_label(self, leela_session, sram_model):
        result = leela_session.run(sram_model, configuration="fixed-area")
        assert result.configuration == "fixed-area"


class TestNormalize:
    def test_self_normalisation_is_unity(self, leela_session, sram_model):
        result = leela_session.run(sram_model)
        norm = normalize(result, result)
        assert norm.speedup == pytest.approx(1.0)
        assert norm.energy_ratio == pytest.approx(1.0)
        assert norm.ed2p_ratio == pytest.approx(1.0)

    def test_nvm_vs_sram_directions(self, leela_session, sram_model, xue_model):
        baseline = leela_session.run(sram_model)
        result = leela_session.run(xue_model)
        norm = normalize(result, baseline)
        # Paper fixed-capacity: slight slowdown, large energy win.
        assert 0.9 < norm.speedup < 1.05
        assert norm.energy_ratio < 0.5

    def test_ed2p_consistent_with_components(self, leela_session, sram_model, xue_model):
        baseline = leela_session.run(sram_model)
        result = leela_session.run(xue_model)
        norm = normalize(result, baseline)
        assert norm.ed2p_ratio == pytest.approx(
            norm.energy_ratio / norm.speedup**2, rel=1e-6
        )

    def test_workload_mismatch_rejected(self, leela_session, sram_model):
        other = SimulationSession(generate_trace("tonto", n_accesses=8000))
        with pytest.raises(SimulationError):
            normalize(other.run(sram_model), leela_session.run(sram_model))
