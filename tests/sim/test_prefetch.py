"""Tests for the optional next-line L2 prefetcher."""

import dataclasses

import pytest

from repro.sim.config import gainestown
from repro.sim.hierarchy import filter_private
from repro.trace.access import AccessType, MemoryAccess
from repro.trace.stream import Trace
from repro.workloads.generators import generate_trace


def _arch(prefetch):
    return dataclasses.replace(gainestown(), l2_next_line_prefetch=prefetch)


class TestNextLinePrefetch:
    def test_off_by_default(self):
        assert gainestown().l2_next_line_prefetch is False

    def test_prefetch_pulls_next_block(self):
        # Access block 0; with prefetch on, block 1 is in L2 so the next
        # demand access to it hits in L2 (no second LLC read for it).
        accesses = [
            MemoryAccess(0, AccessType.READ),
            MemoryAccess(64, AccessType.READ),
        ]
        trace = Trace.from_accesses(accesses)
        off = filter_private(trace, _arch(False))
        on = filter_private(trace, _arch(True))
        assert off.per_core[0].l2_misses == 2
        assert on.per_core[0].l2_misses == 1  # block 1 prefetched

    def test_prefetch_adds_llc_traffic(self):
        # Random accesses: prefetches fetch useless next lines, so the
        # LLC sees more reads with prefetch on.
        trace = generate_trace("gobmk", n_accesses=10_000)
        off = filter_private(trace, _arch(False))
        on = filter_private(trace, _arch(True))
        assert len(on.stream) > len(off.stream)

    def test_prefetch_helps_streaming_l2(self):
        # A word-granular stream: next-line prefetch converts half the
        # L2 misses into hits.
        trace = generate_trace("GemsFDTD", n_accesses=20_000)
        off = filter_private(trace, _arch(False))
        on = filter_private(trace, _arch(True))
        off_misses = sum(c.l2_misses for c in off.per_core)
        on_misses = sum(c.l2_misses for c in on.per_core)
        assert on_misses < off_misses

    def test_instruction_counts_unchanged(self):
        trace = generate_trace("tonto", n_accesses=5000)
        off = filter_private(trace, _arch(False))
        on = filter_private(trace, _arch(True))
        assert on.total_instructions == off.total_instructions
