"""Tests for the system timing model."""

import dataclasses

import pytest

from repro.nvsim.published import published_model, sram_baseline
from repro.sim.config import gainestown
from repro.sim.hierarchy import filter_private
from repro.sim.llc import simulate_llc
from repro.sim.system import replay_llc
from repro.sim.timing import llc_bank_busy_s, resolve_timing


@pytest.fixture(scope="module")
def pipeline(leela_trace_module=None):
    from repro.workloads.generators import generate_trace

    arch = gainestown()
    trace = generate_trace("leela", n_accesses=20_000)
    private = filter_private(trace, arch)
    model = sram_baseline()
    counts = replay_llc(private, model, arch)
    return arch, private, counts


class TestResolveTiming:
    def test_runtime_positive_and_bounded(self, pipeline):
        arch, private, counts = pipeline
        timing = resolve_timing(private, counts, sram_baseline(), arch)
        assert timing.runtime_s > 0
        # Runtime at least base CPI over the busiest core.
        busiest = max(c.instructions for c in private.per_core)
        assert timing.runtime_s >= busiest * arch.base_cpi * arch.cycle_s

    def test_slower_llc_reads_slow_the_system(self, pipeline):
        arch, private, counts = pipeline
        fast = resolve_timing(private, counts, sram_baseline(), arch)
        slow_model = published_model("Jan_S")  # 3.07 ns reads
        slow = resolve_timing(private, counts, slow_model, arch)
        assert slow.runtime_s > fast.runtime_s

    def test_write_latency_hidden_by_default(self, pipeline):
        # Paper's assumption: LLC writes off the critical path, so even
        # Zhang_R's 300 ns writes change runtime only via reads.
        arch, private, counts = pipeline
        zhang = published_model("Zhang_R")
        fast_writes = dataclasses.replace(
            zhang, set_latency_s=1e-9, reset_latency_s=1e-9
        )
        a = resolve_timing(private, counts, zhang, arch)
        b = resolve_timing(private, counts, fast_writes, arch)
        assert a.runtime_s == pytest.approx(b.runtime_s)

    def test_write_backpressure_ablation_bites(self, pipeline):
        arch, private, counts = pipeline
        pressured = dataclasses.replace(arch, llc_write_backpressure=1.0)
        zhang = published_model("Zhang_R")
        baseline = resolve_timing(private, counts, zhang, arch)
        throttled = resolve_timing(private, counts, zhang, pressured)
        assert throttled.runtime_s >= baseline.runtime_s

    def test_dram_utilization_bounded(self, pipeline):
        arch, private, counts = pipeline
        timing = resolve_timing(private, counts, sram_baseline(), arch)
        assert 0.0 <= timing.dram_utilization <= arch.dram.max_utilization
        assert timing.dram_latency_s >= arch.dram.base_latency_s

    def test_bound_label_valid(self, pipeline):
        arch, private, counts = pipeline
        timing = resolve_timing(private, counts, sram_baseline(), arch)
        assert timing.bound in ("core", "llc", "dram")

    def test_breakdown_sums(self, pipeline):
        arch, private, counts = pipeline
        timing = resolve_timing(private, counts, sram_baseline(), arch)
        for b in timing.core_breakdowns:
            assert b.total_cycles == pytest.approx(
                b.base_cycles
                + b.l2_stall_cycles
                + b.llc_hit_stall_cycles
                + b.llc_miss_stall_cycles
            )


class TestBankBusy:
    def test_busy_scales_with_write_latency(self, pipeline):
        arch, private, counts = pipeline
        slow = published_model("Zhang_R")
        fast = sram_baseline()
        assert llc_bank_busy_s(counts, slow) > llc_bank_busy_s(counts, fast)

    def test_write_backpressure_scales_writes_only(self, pipeline):
        _, __, counts = pipeline
        model = published_model("Zhang_R")
        none = llc_bank_busy_s(counts, model, write_backpressure=0.0)
        full = llc_bank_busy_s(counts, model, write_backpressure=1.0)
        assert full > none
        read_only = (
            counts.read_hits * (model.tag_latency_s + model.read_latency_s)
            + counts.read_misses * model.tag_latency_s
        )
        assert none == pytest.approx(read_only)
