"""Tests for multi-programmed workload mixes."""

import pytest

from repro.errors import WorkloadError
from repro.nvsim.published import published_model, sram_baseline
from repro.sim.multiprogram import build_mix, simulate_mix

MIX = ("tonto", "leela")
N = 20_000


class TestBuildMix:
    def test_one_thread_per_benchmark(self):
        mix = build_mix(MIX, n_accesses_each=N)
        assert mix.n_threads == 2
        assert mix.name == "tonto+leela"
        assert len(mix) == 2 * N

    def test_address_spaces_disjoint(self):
        import numpy as np

        mix = build_mix(MIX, n_accesses_each=N)
        t0 = set(np.asarray(mix.thread(0).addresses))
        t1 = set(np.asarray(mix.thread(1).addresses))
        assert not (t0 & t1)

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            build_mix([])

    def test_rejects_multithreaded_member(self):
        with pytest.raises(WorkloadError):
            build_mix(["cg"], n_accesses_each=N)


class TestSimulateMix:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_mix(
            MIX, sram_baseline(), n_accesses_each=N
        )

    def test_per_benchmark_speedups(self, result):
        assert set(result.per_benchmark_speedup) == set(MIX)
        # Sharing an LLC never beats running alone on the same machine.
        for name, speedup in result.per_benchmark_speedup.items():
            assert 0.1 < speedup <= 1.3, name

    def test_weighted_speedup_bounds(self, result):
        # Bounded by the core count (2 here).
        assert 0.0 < result.weighted_speedup <= 2.2

    def test_dense_llc_helps_colocation(self):
        # At fixed area, the 8 MB Xue_S absorbs the co-located
        # capacity-hungry working sets (full-length traces so the
        # sweep components complete their passes) better than the
        # 1 MB Jan_S.
        hungry = ("bzip2", "gobmk")
        small = simulate_mix(
            hungry,
            published_model("Jan_S", "fixed-area"),
            configuration="fixed-area",
        )
        large = simulate_mix(
            hungry,
            published_model("Xue_S", "fixed-area"),
            configuration="fixed-area",
        )
        assert large.weighted_speedup > small.weighted_speedup

    def test_core_shortage_rejected(self):
        from repro.sim.config import gainestown

        with pytest.raises(WorkloadError):
            simulate_mix(
                ("tonto", "leela", "x264"),
                sram_baseline(),
                arch=gainestown(n_cores=2),
                n_accesses_each=N,
            )
