"""Tests for the MLC derivation."""

import pytest

from repro import units
from repro.cells.library import CHUNG, JAN, SRAM, XUE, ZHANG
from repro.errors import ModelGenerationError
from repro.nvsim.mlc import (
    MLC_ENERGY_FACTOR,
    MLC_PULSE_FACTOR,
    compare_slc_mlc,
    derive_mlc_cell,
)


class TestDeriveMLCCell:
    def test_doubles_bits(self):
        mlc = derive_mlc_cell(CHUNG)
        assert mlc.bits_per_cell == 2
        assert mlc.name == "ChungMLC"
        assert mlc.cell_class is CHUNG.cell_class

    def test_pulse_and_energy_stretched(self):
        mlc = derive_mlc_cell(CHUNG)
        assert mlc.value("set_pulse_ns") == pytest.approx(
            CHUNG.value("set_pulse_ns") * MLC_PULSE_FACTOR
        )
        assert mlc.value("set_energy_pj") == pytest.approx(
            CHUNG.value("set_energy_pj") * MLC_ENERGY_FACTOR
        )

    def test_footprint_unchanged(self):
        mlc = derive_mlc_cell(ZHANG)
        assert mlc.value("cell_size_f2") == ZHANG.value("cell_size_f2")
        assert mlc.value("process_nm") == ZHANG.value("process_nm")

    def test_already_mlc_unchanged(self):
        assert derive_mlc_cell(XUE) is XUE

    def test_sram_rejected(self):
        with pytest.raises(ModelGenerationError):
            derive_mlc_cell(SRAM)


class TestCompareSLCMLC:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_slc_mlc(CHUNG)

    def test_fixed_area_capacity_gain(self, comparison):
        # Two bits per cell buys roughly double the capacity in the
        # same silicon (ladder-quantised).
        assert comparison.capacity_gain >= 2.0

    def test_read_latency_penalty(self, comparison):
        # Two-step sensing slows reads (the paper's Xue_S reads at
        # 2.9 ns despite a 1.2 V read for the same reason).
        assert comparison.read_latency_penalty > 1.2

    def test_write_latency_penalty(self, comparison):
        assert comparison.write_latency_penalty > 1.5

    def test_same_capacity_at_fixed_capacity(self, comparison):
        assert (
            comparison.mlc_fixed_capacity.capacity_bytes
            == comparison.slc_fixed_capacity.capacity_bytes
            == 2 * units.MB
        )

    def test_rram_mlc_density(self):
        comparison = compare_slc_mlc(ZHANG)
        assert comparison.mlc_fixed_area.capacity_bytes >= (
            comparison.slc_fixed_area.capacity_bytes
        )
