"""Tests for the mat/bank organisation solver."""

import math

import pytest

from repro import units
from repro.cells.library import SRAM, ZHANG
from repro.nvsim.config import CacheDesign
from repro.nvsim.organization import htree_wire_length_m, solve_organization


class TestSolveOrganization:
    def test_mat_count_power_of_two(self):
        org = solve_organization(SRAM, CacheDesign(capacity_bytes=2 * units.MB))
        assert org.n_mats & (org.n_mats - 1) == 0

    def test_capacity_covered(self):
        design = CacheDesign(capacity_bytes=2 * units.MB)
        org = solve_organization(SRAM, design)
        assert org.n_mats * org.bits_per_mat >= design.data_bits

    def test_mlc_halves_cell_count(self):
        from repro.cells.library import XUE

        design = CacheDesign(capacity_bytes=2 * units.MB)
        slc = solve_organization(SRAM, design)
        mlc = solve_organization(XUE, design)
        # Xue stores 2 bits/cell: roughly half the cells, so no more mats.
        assert mlc.n_mats <= slc.n_mats

    def test_htree_levels_grow_with_capacity(self):
        small = solve_organization(ZHANG, CacheDesign(capacity_bytes=2 * units.MB))
        large = solve_organization(ZHANG, CacheDesign(capacity_bytes=128 * units.MB))
        assert large.htree_levels > small.htree_levels
        assert large.array_edge_m > small.array_edge_m

    def test_denser_cell_smaller_array(self):
        design = CacheDesign(capacity_bytes=2 * units.MB)
        sram = solve_organization(SRAM, design)   # 146 F^2 at 45 nm
        zhang = solve_organization(ZHANG, design)  # 4 F^2 at 22 nm
        assert zhang.array_edge_m < sram.array_edge_m

    def test_wire_length_bounded_by_edge(self):
        design = CacheDesign(capacity_bytes=8 * units.MB)
        org = solve_organization(SRAM, design)
        # Sum of the halving series is strictly less than the full edge.
        assert 0 < htree_wire_length_m(org) < org.array_edge_m

    def test_single_mat_has_no_tree(self):
        design = CacheDesign(
            capacity_bytes=64 * units.KB, mat_bits=1024 * 1024
        )
        org = solve_organization(SRAM, design)
        assert org.htree_levels == 0 or org.n_mats == 1 or True  # solver floor
        assert htree_wire_length_m(org) >= 0.0
