"""Tests for fixed-area capacity solving and capacity sweeps."""

import pytest

from repro import units
from repro.cells.library import HAYAKAWA, JAN, SRAM, XUE, ZHANG
from repro.errors import ModelGenerationError
from repro.nvsim.sweep import (
    CAPACITY_LADDER,
    capacity_sweep,
    generate_fixed_area_model,
    solve_fixed_area_capacity,
)


class TestFixedAreaSolver:
    def test_denser_cells_buy_more_capacity(self):
        zhang = solve_fixed_area_capacity(ZHANG)
        jan = solve_fixed_area_capacity(JAN)
        assert zhang > jan

    def test_zhang_reaches_tens_of_mb(self):
        # Published fixed-area Zhang_R is 128 MB; the analytical model
        # must land within one ladder step of that magnitude.
        capacity = solve_fixed_area_capacity(ZHANG)
        assert capacity >= 32 * units.MB

    def test_jan_at_ladder_floor(self):
        # Jan_S exceeds the budget even at 2 MB (paper: 9.17 mm^2) and
        # is assigned the 1 MB floor.
        assert solve_fixed_area_capacity(JAN) <= 2 * units.MB

    def test_sram_solves_to_its_own_budget(self):
        capacity = solve_fixed_area_capacity(SRAM)
        assert capacity in (1 * units.MB, 2 * units.MB)

    def test_larger_budget_never_shrinks_capacity(self):
        small = solve_fixed_area_capacity(XUE, area_budget_mm2=3.0)
        large = solve_fixed_area_capacity(XUE, area_budget_mm2=12.0)
        assert large >= small

    def test_generated_fixed_area_model_capacity(self):
        model = generate_fixed_area_model(HAYAKAWA)
        assert model.capacity_bytes == solve_fixed_area_capacity(HAYAKAWA)


class TestCapacitySweep:
    def test_models_at_each_point(self):
        capacities = [2 * units.MB, 8 * units.MB]
        models = capacity_sweep(XUE, capacities)
        assert [m.capacity_bytes for m in models] == capacities

    def test_leakage_monotone_in_capacity(self):
        models = capacity_sweep(ZHANG, [2 * units.MB, 8 * units.MB, 32 * units.MB])
        leaks = [m.leakage_w for m in models]
        assert leaks == sorted(leaks)

    def test_read_latency_monotone_in_capacity(self):
        models = capacity_sweep(ZHANG, [2 * units.MB, 32 * units.MB])
        assert models[1].read_latency_s >= models[0].read_latency_s

    def test_empty_sweep_raises(self):
        with pytest.raises(ModelGenerationError):
            capacity_sweep(XUE, [])

    def test_ladder_is_sorted_powers(self):
        assert list(CAPACITY_LADDER) == sorted(CAPACITY_LADDER)
