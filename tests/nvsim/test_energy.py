"""Tests for the circuit energy model (equations (6)-(8))."""

import pytest

from repro import units
from repro.cells.heuristics import apply_electrical_properties
from repro.cells.library import CHUNG, JAN, KANG, OH, SRAM, XUE, ZHANG
from repro.nvsim.config import CacheDesign
from repro.nvsim.energy import compute_energy, leakage_power

DESIGN = CacheDesign(capacity_bytes=2 * units.MB)


def _energy(cell):
    return compute_energy(apply_electrical_properties(cell), DESIGN)


class TestEquations6To8:
    def test_hit_is_tag_plus_read(self):
        e = _energy(CHUNG)
        assert e.hit_energy_j == pytest.approx(
            e.tag_energy_j + e.data_read_energy_j
        )

    def test_miss_is_tag_only(self):
        e = _energy(CHUNG)
        assert e.miss_energy_j == e.tag_energy_j
        assert e.miss_energy_j < e.hit_energy_j

    def test_write_is_tag_plus_data_write(self):
        e = _energy(CHUNG)
        assert e.write_energy_j == pytest.approx(
            e.tag_energy_j + e.data_write_energy_j
        )


class TestClassBehaviour:
    def test_pcram_write_energy_dominates(self):
        # Kang's block write lands in the hundreds of nJ (Table III: 375).
        e = _energy(KANG)
        assert e.write_energy_j > 100 * units.NJ
        assert e.write_energy_j / e.hit_energy_j > 50

    def test_sttram_write_energy_regime(self):
        # STTRAM block writes are near 1 nJ (Table III: 0.6-2.3).
        for cell in (CHUNG, JAN, XUE):
            e = _energy(cell)
            assert 0.1 * units.NJ < e.write_energy_j < 10 * units.NJ

    def test_sram_write_read_symmetric(self):
        e = _energy(SRAM)
        assert e.write_energy_j < 2 * e.hit_energy_j

    def test_mlc_fewer_cells_cheaper_write(self):
        # Xue (2 bits/cell) programs half the cells per block.
        xue = _energy(XUE)
        slc_like = _energy(CHUNG)
        assert xue.data_write_energy_j < 4 * slc_like.data_write_energy_j

    def test_hit_energies_in_table3_regime(self):
        for cell in (SRAM, CHUNG, JAN, OH, ZHANG):
            e = _energy(cell)
            assert 0.05 * units.NJ < e.hit_energy_j < 2 * units.NJ


class TestLeakage:
    def test_sram_leaks_orders_more_than_nvm(self):
        sram = leakage_power(SRAM, DESIGN)
        for cell in (CHUNG, ZHANG, OH):
            assert sram / leakage_power(cell, DESIGN) > 10

    def test_sram_leakage_matches_baseline(self):
        # Table III: 3.438 W for the 2 MB SRAM LLC.
        assert leakage_power(SRAM, DESIGN) == pytest.approx(3.438, rel=0.1)

    def test_leakage_scales_with_capacity(self):
        small = leakage_power(ZHANG, CacheDesign(capacity_bytes=2 * units.MB))
        large = leakage_power(ZHANG, CacheDesign(capacity_bytes=128 * units.MB))
        assert large / small == pytest.approx(64, rel=0.05)
