"""Tests for the circuit area model (equation (3) applied at array scale)."""

import pytest

from repro import units
from repro.cells.library import HAYAKAWA, JAN, OH, SRAM, XUE, ZHANG
from repro.nvsim.area import compute_area
from repro.nvsim.config import CacheDesign

DESIGN = CacheDesign(capacity_bytes=2 * units.MB)


class TestAreaModel:
    def test_components_positive(self):
        breakdown = compute_area(SRAM, DESIGN)
        assert breakdown.data_array_m2 > 0
        assert breakdown.periphery_m2 > 0
        assert breakdown.tag_array_m2 > 0
        assert breakdown.total_m2 == pytest.approx(
            breakdown.data_array_m2
            + breakdown.periphery_m2
            + breakdown.tag_array_m2
        )

    def test_zhang_densest(self):
        # Table III: Zhang_R is the smallest 2 MB LLC by an order.
        zhang = compute_area(ZHANG, DESIGN).total_mm2
        for cell in (SRAM, OH, JAN, XUE, HAYAKAWA):
            assert compute_area(cell, DESIGN).total_mm2 > zhang

    def test_jan_least_dense_nvm(self):
        # Table III: Jan_S (50 F^2 at 90 nm) is the largest NVM LLC.
        jan = compute_area(JAN, DESIGN).total_mm2
        for cell in (ZHANG, HAYAKAWA, XUE):
            assert compute_area(cell, DESIGN).total_mm2 < jan

    def test_rram_beats_sram_by_order(self):
        sram = compute_area(SRAM, DESIGN).total_mm2
        zhang = compute_area(ZHANG, DESIGN).total_mm2
        assert sram / zhang > 10

    def test_area_scales_linearly_with_capacity(self):
        two = compute_area(ZHANG, CacheDesign(capacity_bytes=2 * units.MB))
        eight = compute_area(ZHANG, CacheDesign(capacity_bytes=8 * units.MB))
        assert eight.total_m2 / two.total_m2 == pytest.approx(4.0, rel=0.1)

    def test_mlc_halves_data_area(self):
        # Same F^2 and process, 2 bits/cell -> half the data array.
        slc = XUE.with_params(cell_levels=XUE.get("cell_levels").__class__(1))
        assert (
            compute_area(XUE, DESIGN).data_array_m2
            == pytest.approx(compute_area(slc, DESIGN).data_array_m2 / 2)
        )

    def test_within_factor_three_of_published(self):
        # The simplified model must land within ~3x of every Table III
        # area (DESIGN.md's fidelity bar for the methodology substitute).
        from repro.nvsim.published import published_model

        for cell in (SRAM, OH, JAN, XUE, HAYAKAWA, ZHANG):
            generated = compute_area(cell, DESIGN).total_mm2
            published = published_model(cell.display_name, "fixed-capacity").area_mm2
            ratio = generated / published
            assert 1 / 3 < ratio < 3, (cell.display_name, ratio)
