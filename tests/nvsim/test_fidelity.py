"""Tests for the systematic model-fidelity validation."""

import pytest

from repro.errors import ModelGenerationError
from repro.nvsim.fidelity import (
    QUANTITIES,
    ordering_agreements,
    validate_fidelity,
)


@pytest.fixture(scope="module")
def report():
    return validate_fidelity()


class TestFidelityReport:
    def test_covers_all_models(self, report):
        assert len(report.names) == 11
        assert set(report.ratios) == set(QUANTITIES)

    def test_ratio_bands_within_regime(self, report):
        # DESIGN.md's bar: every quantity within 5x of Table III.
        for quantity in QUANTITIES:
            assert report.within_band(quantity, factor=5.0), (
                quantity,
                report.ratio_band(quantity),
            )

    def test_latencies_tighter(self, report):
        # Pulse-dominated NVM writes are the best-modelled quantity;
        # the loose end of the band is SRAM, whose sub-ns write is
        # periphery-bound rather than pulse-bound.
        low, high = report.ratio_band("write_latency_s")
        assert 0.4 < low and high < 2.5

    def test_geometric_mean_error_modest(self, report):
        for quantity in ("read_latency_s", "write_latency_s", "hit_energy_j"):
            assert report.geometric_mean_error(quantity) < 2.0, quantity

    def test_orderings_preserved(self, report):
        agreements = ordering_agreements(report)
        # The quantities the analysis leans on keep their technology
        # ordering: who writes expensively, who leaks, who reads slowly.
        assert agreements["write_energy_j"] > 0.8
        assert agreements["write_latency_s"] > 0.8
        assert agreements["leakage_w"] > 0.6
        assert agreements["read_latency_s"] > 0.5

    def test_only_fixed_capacity_defined(self):
        with pytest.raises(ModelGenerationError):
            validate_fidelity("fixed-area")
