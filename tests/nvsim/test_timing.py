"""Tests for the circuit timing model (equations (4)-(5))."""

import pytest

from repro import units
from repro.cells.library import CHUNG, JAN, OH, SRAM, UMEKI, ZHANG
from repro.nvsim.config import CacheDesign
from repro.nvsim.organization import solve_organization
from repro.nvsim.timing import (
    compute_timing,
    decode_latency,
    htree_latency,
    sense_latency,
)

DESIGN = CacheDesign(capacity_bytes=2 * units.MB)


class TestSenseLatency:
    def test_low_read_voltage_slows_sttram_sensing(self):
        # Jan reads at 0.08 V — the slowest STTRAM read in Table III.
        assert sense_latency(JAN) > sense_latency(CHUNG)
        assert sense_latency(JAN) > sense_latency(UMEKI)

    def test_pcram_scales_with_read_current(self):
        low_current = OH.with_params(
            read_current_ua=OH.get("read_current_ua").__class__(20.0)
        )
        assert sense_latency(low_current) > sense_latency(OH)

    def test_sram_fastest(self):
        assert sense_latency(SRAM) < sense_latency(CHUNG)


class TestEquations4And5:
    def test_read_pays_htree_twice(self):
        timing = compute_timing(SRAM, DESIGN)
        org = solve_organization(SRAM, DESIGN)
        tree = htree_latency(org)
        # eq (4): read = 2*htree + mat.
        assert timing.read_latency_s == pytest.approx(
            2 * tree + timing.read_mat_s
        )

    def test_write_latency_includes_pulse(self):
        timing = compute_timing(OH, DESIGN)
        # Oh's 180 ns set pulse dominates everything else.
        assert timing.set_latency_s > 180 * units.NS
        assert timing.set_latency_s < 200 * units.NS

    def test_pcram_set_reset_split(self):
        timing = compute_timing(OH, DESIGN)
        # Oh: set pulse 180 ns, reset 10 ns — Table III's 181/11 split.
        assert timing.set_latency_s > 10 * timing.reset_latency_s

    def test_rram_write_verify_doubles_pulse(self):
        timing = compute_timing(ZHANG, DESIGN)
        # Zhang: 150 ns pulse, 2 write-verify pulses ~ 300 ns (Table III
        # reports 300.8 ns).
        assert timing.write_latency_s > 300 * units.NS
        assert timing.write_latency_s < 320 * units.NS

    def test_nvm_reads_slower_than_sram(self):
        sram = compute_timing(SRAM, DESIGN)
        for cell in (CHUNG, JAN, ZHANG):
            assert compute_timing(cell, DESIGN).read_latency_s > sram.read_latency_s

    def test_tag_latency_below_read_latency(self):
        for cell in (SRAM, CHUNG, OH):
            timing = compute_timing(cell, DESIGN)
            assert 0 < timing.tag_latency_s < timing.read_latency_s * 2

    def test_latencies_in_table3_regime(self):
        # All generated read latencies should land in Table III's
        # 0.5-10 ns band at 2 MB.
        for cell in (SRAM, CHUNG, JAN, OH, ZHANG):
            timing = compute_timing(cell, DESIGN)
            assert 0.2 * units.NS < timing.read_latency_s < 10 * units.NS


class TestDecodeLatency:
    def test_scales_with_process(self):
        org = solve_organization(OH, DESIGN)
        fine = OH.with_params(process_nm=OH.get("process_nm").__class__(45.0))
        assert decode_latency(fine, org) < decode_latency(OH, org)
