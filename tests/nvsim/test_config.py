"""Tests for cache design configuration."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.nvsim.config import FIXED_AREA_BUDGET_MM2, GAINESTOWN_LLC_DESIGN, CacheDesign


class TestCacheDesign:
    def test_gainestown_defaults_match_table4(self):
        design = GAINESTOWN_LLC_DESIGN
        assert design.capacity_bytes == 2 * units.MB
        assert design.block_bytes == 64
        assert design.associativity == 16

    def test_derived_geometry(self):
        design = CacheDesign(capacity_bytes=2 * units.MB)
        assert design.n_blocks == 32768
        assert design.n_sets == 2048
        assert design.data_bits == 2 * units.MB * 8
        assert design.capacity_mb == pytest.approx(2.0)

    def test_tag_bits_scale_with_blocks(self):
        small = CacheDesign(capacity_bytes=1 * units.MB)
        large = CacheDesign(capacity_bytes=4 * units.MB)
        assert large.tag_bits == 4 * small.tag_bits

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheDesign(capacity_bytes=0)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            CacheDesign(capacity_bytes=units.MB, block_bytes=48)

    def test_rejects_fractional_sets(self):
        with pytest.raises(ConfigurationError):
            CacheDesign(capacity_bytes=1000, block_bytes=64, associativity=16)

    def test_rejects_tiny_mats(self):
        with pytest.raises(ConfigurationError):
            CacheDesign(capacity_bytes=units.MB, mat_bits=1024)

    def test_fixed_area_budget_is_sram_area(self):
        assert FIXED_AREA_BUDGET_MM2 == pytest.approx(6.548)
