"""Tests for LLC model generation and the LLCModel datatype."""

import dataclasses

import pytest

from repro import units
from repro.cells.base import CellClass
from repro.cells.library import ALL_CELLS, CHUNG, OH, SRAM, ZHANG
from repro.errors import ModelGenerationError
from repro.nvsim.config import CacheDesign
from repro.nvsim.model import LLCModel, generate_llc_model
from repro.nvsim.published import published_model

DESIGN = CacheDesign(capacity_bytes=2 * units.MB)


class TestGenerateLLCModel:
    def test_every_library_cell_generates(self):
        for cell in ALL_CELLS:
            model = generate_llc_model(cell, DESIGN)
            assert model.capacity_bytes == DESIGN.capacity_bytes
            assert model.read_latency_s > 0
            assert model.hit_energy_j > 0
            assert model.leakage_w > 0

    def test_pcram_keeps_set_reset_split(self):
        model = generate_llc_model(OH, DESIGN)
        assert model.set_latency_s != model.reset_latency_s

    def test_non_pcram_single_write_latency(self):
        model = generate_llc_model(CHUNG, DESIGN)
        assert model.set_latency_s == model.reset_latency_s

    def test_source_marked_generated(self):
        assert generate_llc_model(SRAM, DESIGN).source == "generated"


class TestLLCModelType:
    def test_write_latency_is_worst_case(self, kang_model):
        assert kang_model.write_latency_s == kang_model.set_latency_s
        assert kang_model.write_latency_s >= kang_model.reset_latency_s

    def test_mean_write_latency_between(self, kang_model):
        assert (
            kang_model.reset_latency_s
            <= kang_model.mean_write_latency_s
            <= kang_model.set_latency_s
        )

    def test_asymmetry_ratios(self, kang_model, sram_model):
        # Kang: 301 ns writes vs 1.5 ns reads; SRAM near-symmetric.
        assert kang_model.write_read_latency_ratio > 100
        assert sram_model.write_read_latency_ratio < 1

    def test_is_sram_flag(self, sram_model, xue_model):
        assert sram_model.is_sram
        assert not xue_model.is_sram

    def test_scaled_capacity_scales_leakage_linearly(self, xue_model):
        scaled = xue_model.scaled_capacity(xue_model.capacity_bytes * 4)
        assert scaled.leakage_w == pytest.approx(xue_model.leakage_w * 4)
        assert scaled.read_latency_s == xue_model.read_latency_s
        assert "scaled" in scaled.source

    def test_rejects_negative_quantities(self):
        good = published_model("Xue_S")
        with pytest.raises(ModelGenerationError):
            dataclasses.replace(good, hit_energy_j=-1.0)
        with pytest.raises(ModelGenerationError):
            dataclasses.replace(good, capacity_bytes=0)
