"""Tests for the published Table III models (transcription sanity)."""

import pytest

from repro import units
from repro.cells.base import CellClass
from repro.errors import ModelGenerationError
from repro.nvsim.published import (
    FIXED_AREA,
    FIXED_CAPACITY,
    nvm_models,
    published_model,
    published_models,
    sram_baseline,
)


class TestTableStructure:
    def test_eleven_models_each(self):
        assert len(FIXED_CAPACITY) == 11
        assert len(FIXED_AREA) == 11

    def test_fixed_capacity_all_2mb(self):
        for model in FIXED_CAPACITY:
            assert model.capacity_bytes == 2 * units.MB

    def test_fixed_area_capacities(self):
        expected = {
            "Oh_P": 2, "Chen_P": 4, "Kang_P": 2, "Close_P": 4, "Chung_S": 8,
            "Jan_S": 1, "Umeki_S": 2, "Xue_S": 8, "Hayakawa_R": 32,
            "Zhang_R": 128, "SRAM": 2,
        }
        for model in FIXED_AREA:
            assert model.capacity_mb == expected[model.name], model.name

    def test_lookup_by_name_and_config(self):
        xue = published_model("Xue_S", "fixed-area")
        assert xue.capacity_mb == 8

    def test_unknown_config_raises(self):
        with pytest.raises(ModelGenerationError):
            published_models("fixed-banana")
        with pytest.raises(ModelGenerationError):
            published_model("Xue_S", "fixed-banana")

    def test_unknown_model_raises(self):
        with pytest.raises(ModelGenerationError):
            published_model("Smith_Q")

    def test_nvm_models_excludes_sram(self):
        names = {m.name for m in nvm_models("fixed-capacity")}
        assert "SRAM" not in names
        assert len(names) == 10


class TestTranscribedValues:
    def test_sram_baseline_row(self):
        sram = sram_baseline()
        assert sram.area_mm2 == pytest.approx(6.548)
        assert sram.read_latency_s == pytest.approx(1.234 * units.NS)
        assert sram.write_energy_j == pytest.approx(0.537 * units.NJ)
        assert sram.leakage_w == pytest.approx(3.438)

    def test_kang_worst_write_energy(self):
        energies = {m.name: m.write_energy_j for m in FIXED_CAPACITY}
        assert max(energies, key=energies.get) == "Kang_P"
        assert energies["Kang_P"] == pytest.approx(375.073 * units.NJ)

    def test_pcram_set_reset_asymmetry(self):
        oh = published_model("Oh_P")
        assert oh.set_latency_s == pytest.approx(181.206 * units.NS)
        assert oh.reset_latency_s == pytest.approx(11.206 * units.NS)

    def test_sram_leakage_dominates_nvm(self):
        # The headline mechanism: SRAM leaks >10x any same-capacity NVM.
        sram = sram_baseline()
        for model in nvm_models("fixed-capacity"):
            assert sram.leakage_w / model.leakage_w > 10

    def test_jan_lowest_fixed_area_leakage(self):
        leaks = {m.name: m.leakage_w for m in FIXED_AREA if not m.is_sram}
        assert min(leaks, key=leaks.get) == "Jan_S"

    def test_zhang_densest_fixed_area(self):
        caps = {m.name: m.capacity_bytes for m in FIXED_AREA}
        assert max(caps, key=caps.get) == "Zhang_R"

    def test_paper_sweep_claims_section5c(self):
        # Jan_S leakage vs the big three (paper: 32x, 156x, 360x).
        jan = published_model("Jan_S", "fixed-area").leakage_w
        assert published_model("Xue_S", "fixed-area").leakage_w / jan == pytest.approx(33, rel=0.1)
        assert published_model("Hayakawa_R", "fixed-area").leakage_w / jan == pytest.approx(156, rel=0.1)
        assert published_model("Zhang_R", "fixed-area").leakage_w / jan == pytest.approx(360, rel=0.1)

    def test_nvm_read_latencies_slower_than_sram(self):
        sram = sram_baseline()
        for model in nvm_models("fixed-capacity"):
            if model.name == "Chen_P":  # Chen reads faster (Table III: 0.607)
                continue
            assert model.read_latency_s + model.tag_latency_s > sram.read_latency_s
