"""Property tests for the analytical surrogate (docs/DSE.md).

The surrogate's claim is exactness for a fully-associative LRU cache:
stack distances decide hits, the dirty curve decides writebacks.  These
tests pin that claim two independent ways — against a from-scratch
OrderedDict LRU oracle written here, and against the real simulator
configured fully-associatively (associativity == capacity, one set) —
for random streams at *every* capacity, plus the monotonicity and
guard invariants the planner's pruning argument rests on.
"""

from collections import OrderedDict

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analytic import predict_counts
from repro.prism.reuse import COLD_DISTANCE, stream_reuse_profile
from repro.sim.config import gainestown
from repro.sim.hierarchy import LLCStream
from repro.sim.llc import simulate_llc


def _stream(blocks, writes):
    n = len(blocks)
    return LLCStream(
        blocks=np.asarray(blocks, dtype=np.uint64),
        writes=np.asarray(writes, dtype=bool),
        cores=np.zeros(n, dtype=np.uint16),
        instr_positions=np.arange(n, dtype=np.uint64),
    )


def _lru_oracle(blocks, writes, capacity_blocks):
    """Brute-force fully-associative LRU with write-allocate.

    Returns (read_hits, write_hits, dirty_evictions); dirty lines left
    at end-of-stream are *not* flushed, mirroring the simulator.
    """
    cache = OrderedDict()  # block -> dirty bit, LRU order
    read_hits = write_hits = dirty = 0
    for block, is_write in zip(blocks, writes):
        if block in cache:
            was_dirty = cache.pop(block)
            cache[block] = was_dirty or is_write
            if is_write:
                write_hits += 1
                cache[block] = True
            else:
                read_hits += 1
        else:
            if len(cache) >= capacity_blocks:
                _, victim_dirty = cache.popitem(last=False)
                if victim_dirty:
                    dirty += 1
            cache[block] = is_write
    return read_hits, write_hits, dirty


ACCESSES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=24), st.booleans()),
    min_size=1,
    max_size=120,
)


@given(accesses=ACCESSES)
@settings(max_examples=60, deadline=None)
def test_profile_matches_brute_force_lru_at_every_capacity(accesses):
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    profile = stream_reuse_profile(_stream(blocks, writes), n_cores=1)
    for capacity in range(1, profile.unique_blocks + 3):
        read_hits, write_hits, dirty = _lru_oracle(blocks, writes, capacity)
        assert profile.read_hits_at(capacity) == read_hits
        assert profile.write_hits_at(capacity) == write_hits
        assert profile.dirty_evictions_at(capacity) == dirty


@given(accesses=ACCESSES)
@settings(max_examples=40, deadline=None)
def test_profile_matches_simulator_configured_fully_associative(accesses):
    """Distances and dirty curve agree with the real replay engine when
    the LLC is one set (associativity == capacity)."""
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    profile = stream_reuse_profile(_stream(blocks, writes), n_cores=1)
    for capacity in (1, 2, 4, 8, 16, 32):
        counts = simulate_llc(
            _stream(blocks, writes), capacity * 64,
            associativity=capacity, block_bytes=64,
        )
        assert profile.read_hits_at(capacity) == counts.read_hits
        assert profile.write_hits_at(capacity) == counts.write_hits
        assert profile.dirty_evictions_at(capacity) == counts.dirty_evictions


@given(accesses=ACCESSES)
@settings(max_examples=40, deadline=None)
def test_hits_monotone_and_miss_ratio_non_increasing_in_capacity(accesses):
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    profile = stream_reuse_profile(_stream(blocks, writes), n_cores=1)
    capacities = range(1, profile.unique_blocks + 3)
    read_hits = [profile.read_hits_at(b) for b in capacities]
    write_hits = [profile.write_hits_at(b) for b in capacities]
    ratios = [profile.miss_ratio(b) for b in capacities]
    assert read_hits == sorted(read_hits)
    assert write_hits == sorted(write_hits)
    assert ratios == sorted(ratios, reverse=True)


@given(accesses=ACCESSES)
@settings(max_examples=40, deadline=None)
def test_profile_accounting_identities(accesses):
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    profile = stream_reuse_profile(_stream(blocks, writes), n_cores=1)
    assert profile.n_reads + profile.n_writes == len(accesses)
    assert profile.cold_reads + profile.cold_writes == profile.unique_blocks
    # Beyond the unique-block count every reuse hits: only colds miss.
    big = profile.unique_blocks + 1
    assert profile.read_hits_at(big) == profile.n_reads - profile.cold_reads
    assert profile.write_hits_at(big) == profile.n_writes - profile.cold_writes
    assert profile.dirty_evictions_at(big) == 0
    # Cold sentinel is larger than any real capacity.
    assert (profile.read_dists[profile.read_dists != COLD_DISTANCE]
            < COLD_DISTANCE).all()


@given(
    accesses=ACCESSES,
    capacity_blocks=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_predict_counts_satisfies_guard_invariants(accesses, capacity_blocks):
    """Predicted counts obey the simulator's exact invariants at any
    capacity — the property guard_counts enforces at the chokepoint."""
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    arch = gainestown(n_cores=1)
    profile = stream_reuse_profile(_stream(blocks, writes), n_cores=1)
    counts = predict_counts(
        profile, capacity_blocks * arch.llc_block_bytes, arch
    )
    assert counts.read_hits + counts.read_misses == counts.read_lookups
    assert counts.write_hits + counts.write_misses == counts.write_accesses
    assert counts.read_lookups + counts.write_accesses == len(accesses)
    assert counts.dirty_evictions <= counts.fills
    assert sum(counts.per_core_read_hits) == counts.read_hits
    assert sum(counts.per_core_read_misses) == counts.read_misses
