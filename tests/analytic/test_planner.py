"""Property and unit tests for the DSE planner (docs/DSE.md).

The load-bearing claim: with pruning margin ``m`` and surrogate
relative error at most ``eps`` per axis, ``m > 2*eps/(1-eps)``
guarantees no true-frontier cell is margin-pruned.  The hypothesis
test below perturbs exact objective values by up to ``eps`` and
asserts exactly that; the integration test proves planner-vs-exhaustive
frontier equality on a real published-model grid.
"""

import math

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analytic.planner import (
    DEFAULT_DSE_MARGIN,
    DSE_MARGIN_ENV,
    DSE_WORKLOADS_ENV,
    PlanCell,
    PlanGrid,
    dominates,
    exhaustive_frontier,
    margin_pruned,
    pareto_frontier,
    plan_and_execute,
    resolve_margin,
    resolve_workloads,
)
from repro.errors import PlanError
from repro.sim.results import NormalizedResult


def _point(name, speedup, energy):
    return NormalizedResult("w", name, "c", speedup, energy, energy / speedup**2)


def _cell(name):
    return PlanCell("w", "c", name)


class TestDominance:
    def test_strict_dominance_requires_one_strict_inequality(self):
        a = _point("a", 1.0, 0.5)
        assert dominates(a, _point("b", 0.9, 0.6))
        assert dominates(a, _point("b", 1.0, 0.6))   # tie on one axis
        assert not dominates(a, _point("b", 1.0, 0.5))  # exact tie
        assert not dominates(a, _point("b", 1.1, 0.4))  # dominated

    def test_margin_demands_relative_slack_on_both_axes(self):
        a = _point("a", 1.00, 0.50)
        b = _point("b", 0.99, 0.52)
        assert dominates(a, b, margin=0.005)
        assert not dominates(a, b, margin=0.02)  # speedups too close
        # Equal points never dominate each other at any margin.
        assert not dominates(a, _point("b", 1.00, 0.50), margin=0.0)
        assert not dominates(a, _point("b", 1.00, 0.50), margin=0.01)

    def test_pareto_frontier_keeps_undominated_and_tied_points(self):
        values = {
            _cell("best"): _point("best", 1.2, 0.4),
            _cell("trade"): _point("trade", 1.4, 0.6),
            _cell("loser"): _point("loser", 1.1, 0.5),
            _cell("tie"): _point("tie", 1.2, 0.4),
        }
        frontier = set(pareto_frontier(values))
        assert frontier == {_cell("best"), _cell("trade"), _cell("tie")}

    def test_margin_pruned_is_conservative_subset_of_dominated(self):
        values = {
            _cell("best"): _point("best", 1.2, 0.4),
            _cell("close"): _point("close", 1.199, 0.401),
            _cell("far"): _point("far", 0.8, 0.9),
        }
        assert set(margin_pruned(values, 0.01)) == {_cell("far")}
        dominated = set(values) - set(pareto_frontier(values))
        assert set(margin_pruned(values, 0.01)) <= dominated


POINTS = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=2.0),
        st.floats(min_value=0.2, max_value=2.0),
    ),
    min_size=2,
    max_size=24,
)


@given(points=POINTS, eps=st.floats(min_value=0.0, max_value=0.01),
       seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=150, deadline=None)
def test_margin_pruning_never_drops_a_true_frontier_cell(points, eps, seed):
    """Perturb exact objectives by <= eps per axis; prune with
    m > 2*eps/(1-eps); no exact-frontier cell may be pruned."""
    import random

    rng = random.Random(seed)
    exact = {
        _cell(f"m{i}"): _point(f"m{i}", s, e)
        for i, (s, e) in enumerate(points)
    }
    predicted = {
        cell: _point(
            cell.model_name,
            value.speedup * (1.0 + rng.uniform(-eps, eps)),
            value.energy_ratio * (1.0 + rng.uniform(-eps, eps)),
        )
        for cell, value in exact.items()
    }
    margin = 2.0 * eps / (1.0 - eps) * 1.01 + 1e-9
    true_frontier = set(pareto_frontier(exact))
    pruned = set(margin_pruned(predicted, margin))
    assert not (pruned & true_frontier)


class TestKnobs:
    def test_resolve_margin_precedence(self, monkeypatch):
        monkeypatch.delenv(DSE_MARGIN_ENV, raising=False)
        assert resolve_margin() == DEFAULT_DSE_MARGIN
        monkeypatch.setenv(DSE_MARGIN_ENV, "0.02")
        assert resolve_margin() == 0.02
        assert resolve_margin(0.001) == 0.001  # explicit beats env

    @pytest.mark.parametrize("bad", [1.0, 1.5, -0.1, math.nan])
    def test_resolve_margin_rejects_out_of_range(self, bad):
        with pytest.raises(PlanError):
            resolve_margin(bad)

    def test_resolve_margin_rejects_unparseable_env(self, monkeypatch):
        monkeypatch.setenv(DSE_MARGIN_ENV, "lots")
        with pytest.raises(PlanError):
            resolve_margin()

    def test_resolve_workloads_default_env_and_validation(self, monkeypatch):
        from repro.workloads.registry import ai_benchmarks

        monkeypatch.delenv(DSE_WORKLOADS_ENV, raising=False)
        assert resolve_workloads() == ai_benchmarks()
        monkeypatch.setenv(DSE_WORKLOADS_ENV, "leela, x264")
        assert resolve_workloads() == ["leela", "x264"]
        with pytest.raises(PlanError, match="fluidanimate"):
            resolve_workloads(["leela", "fluidanimate"])


class TestPlanGridValidation:
    def _models(self):
        from repro.nvsim.published import published_models

        return tuple(published_models("fixed-capacity"))

    def test_published_grid_is_valid(self):
        grid = PlanGrid.published(["leela"], ["fixed-capacity"])
        assert grid.n_cells == len(self._models())
        assert grid.baseline("fixed-capacity").is_sram

    def test_rejects_empty_axes(self):
        models = {"fixed-capacity": self._models()}
        with pytest.raises(PlanError, match="workload"):
            PlanGrid((), ("fixed-capacity",), models)
        with pytest.raises(PlanError, match="configuration"):
            PlanGrid(("leela",), (), models)
        with pytest.raises(PlanError, match="no models"):
            PlanGrid(("leela",), ("fixed-capacity",), {})

    def test_rejects_duplicate_model_names(self):
        models = self._models()
        with pytest.raises(PlanError, match="duplicate"):
            PlanGrid(
                ("leela",), ("fixed-capacity",),
                {"fixed-capacity": models + (models[-1],)},
            )

    def test_rejects_missing_or_doubled_sram_baseline(self):
        models = self._models()
        sram = [m for m in models if m.is_sram]
        nvm = tuple(m for m in models if not m.is_sram)
        with pytest.raises(PlanError, match="SRAM"):
            PlanGrid(("leela",), ("fixed-capacity",), {"fixed-capacity": nvm})
        with pytest.raises(PlanError, match="SRAM"):
            PlanGrid(
                ("leela",), ("fixed-capacity",),
                {"fixed-capacity": models + (sram[0].__class__(
                    **{**sram[0].__dict__, "name": "SRAM-again"}),)},
            )


class TestPlannerAgainstExhaustive:
    def test_planner_reproduces_exhaustive_frontier_on_real_grid(self):
        """End to end on the paper's published models at test scale:
        the planner's frontier equals the oracle's while dispatching a
        strict subset of the grid."""
        from repro.experiments.common import ExperimentContext

        context = ExperimentContext(scale=0.05)
        grid = PlanGrid.published(["leela"])
        outcome = plan_and_execute(grid, context, margin=DEFAULT_DSE_MARGIN)
        _, oracle = exhaustive_frontier(grid, context)
        assert (
            sorted(c.label() for c in outcome.frontier)
            == sorted(c.label() for c in oracle)
        )
        assert len(outcome.plan.dispatch) < grid.n_cells
        assert outcome.plan.savings_ratio > 1.0
        # Every dispatched survivor was simulated; pruned cells were not.
        for cell in outcome.plan.pruned:
            assert cell not in outcome.simulated or cell in outcome.plan.dispatch
