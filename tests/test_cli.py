"""Tests for the repro-cli command line."""

import pytest

from repro.cli import build_parser, main
from repro.trace.io import save_npz
from repro.workloads.generators import generate_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_source_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["characterize", "--workload", "leela", "--trace-file", "x.npz"]
            )


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "deepsjeng" in out
        assert "NPB3.3.1" in out

    def test_characterize_workload(self, capsys):
        assert main(["characterize", "--workload", "leela",
                     "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "write_global_entropy" in out
        assert "5,000" in out

    def test_characterize_trace_file(self, capsys, tmp_path):
        trace = generate_trace("tonto", n_accesses=3000)
        path = tmp_path / "t.npz"
        save_npz(trace, path)
        assert main(["characterize", "--trace-file", str(path)]) == 0
        assert "total_reads" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "--workload", "tonto", "--accesses", "8000",
            "--llc", "Xue_S",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Xue_S vs SRAM" in out

    def test_model(self, capsys):
        assert main(["model", "--cell", "Zhang", "--capacity-mb", "2"]) == 0
        out = capsys.readouterr().out
        assert "Zhang_R" in out
        assert "leakage" in out

    def test_lifetime(self, capsys):
        assert main([
            "lifetime", "--workload", "gobmk", "--accesses", "10000",
            "--llc", "Kang_P",
        ]) == 0
        out = capsys.readouterr().out
        assert "unleveled lifetime" in out

    def test_lifetime_unlimited_for_sram(self, capsys):
        assert main([
            "lifetime", "--workload", "tonto", "--accesses", "8000",
            "--llc", "SRAM",
        ]) == 0
        assert "unlimited" in capsys.readouterr().out

    def test_techniques(self, capsys):
        assert main([
            "techniques", "--workload", "gobmk", "--accesses", "15000",
            "--llc", "Kang_P",
        ]) == 0
        out = capsys.readouterr().out
        assert "early-write-termination" in out

    def test_unknown_llc_is_clean_error(self, capsys):
        assert main([
            "simulate", "--workload", "tonto", "--accesses", "5000",
            "--llc", "Bogus_X",
        ]) == 1
        err = capsys.readouterr().err
        assert "error[MODEL]:" in err
        assert "Traceback" not in err
