"""Fixtures for the load-generation tests.

Same replay-cache isolation as ``tests/serve``: launcher tests run real
daemons, and their replay work must neither leak into nor depend on the
developer's cache directory.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.replay_cache import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_replay_cache(tmp_path_factory):
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(
        tmp_path_factory.mktemp("loadgen-replay-cache")
    )
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
