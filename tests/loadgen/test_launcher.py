"""The launcher against live servers (single daemon, shards, fleet).

Marked ``serial``: real daemons and thread pools.
"""

from __future__ import annotations

import pytest

from repro.errors import LoadGenError
from repro.loadgen import (
    offer,
    parse_scenario,
    summarize_fleet,
    summarize_rate,
    sweep_shards,
)
from repro.loadgen.launcher import RateRun
from repro.serve import ExperimentServer, InProcessFleet

pytestmark = pytest.mark.serial


def scenario(**overrides):
    mapping = {
        "name": "launcher_test",
        "seed": 1,
        "duration_s": 1.0,
        "qps": [8.0],
        "duplicate_rate": 0.5,
        "mix": [{"experiment": "table2", "scale": 0.02, "seeds": 2}],
        "concurrency": 8,
        "timeout_s": 30.0,
    }
    mapping.update(overrides)
    return parse_scenario(mapping)


@pytest.fixture
def server(tmp_path):
    daemon = ExperimentServer(
        port=0, workers=2, state_dir=str(tmp_path / "state")
    )
    daemon.start()
    yield daemon
    daemon.drain()


class TestOffer:
    def test_every_request_resolves_against_one_daemon(self, server):
        records = offer(scenario(), 8.0, url=server.url)
        assert len(records) == 8
        assert {r.state for r in records} == {"done"}
        assert all(r.job_id for r in records)
        # injected duplicates (and seed-pool collisions) dedup server-side
        assert sum(r.deduped for r in records) >= sum(
            r.duplicate for r in records
        )
        summary = summarize_rate(RateRun(8.0, records, wall_s=1.0))
        assert summary["states"]["done"] == 8
        assert summary["failure_rate"] == 0.0
        assert summary["latency_s"]["p99"] > 0.0

    def test_client_side_ring_routing_over_shards(self, tmp_path):
        with InProcessFleet(shards=2, root=str(tmp_path)) as fleet:
            records = offer(
                scenario(), 8.0, shards=fleet.shard_urls
            )
            assert {r.state for r in records} == {"done"}

    def test_rejections_recorded_not_raised(self, tmp_path):
        daemon = ExperimentServer(
            port=0, workers=1, max_queued=2,
            state_dir=str(tmp_path / "state"),
        )
        daemon.start()
        try:
            daemon.queue.pause_dispatch()  # nothing drains: queue fills
            records = offer(
                scenario(duplicate_rate=0.0,
                         mix=[{"experiment": "table2", "scale": 0.02,
                               "seeds": 100}],
                         timeout_s=0.5),
                8.0, url=daemon.url,
            )
            states = {r.state for r in records}
            assert "rejected" in states
            rejected = [r for r in records if r.state == "rejected"]
            assert all(r.job_id is None for r in rejected)
            # the 2 admitted jobs never ran: their waits time out as 504
            assert "timeout" in states
        finally:
            daemon.queue.resume_dispatch()
            daemon.drain()

    def test_unreachable_target_records_errors(self):
        records = offer(
            scenario(timeout_s=0.5), 8.0, url="http://127.0.0.1:9"
        )
        assert {r.state for r in records} == {"error"}
        assert all(r.error for r in records)

    def test_empty_timeline_is_a_loadgen_error(self, server):
        with pytest.raises(LoadGenError, match="no requests"):
            offer(scenario(duration_s=0.1), 0.5, url=server.url)


class TestSweepShards:
    def test_one_point_sweep_collects_fleet_counters(self, tmp_path):
        seen = []
        runs = sweep_shards(
            scenario(duration_s=1.0, duplicate_rate=0.25),
            shard_counts=[1],
            workers=2,
            root=str(tmp_path),
            progress=seen.append,
        )
        assert len(runs) == 1
        run = runs[0]
        assert run.shard_count == 1
        assert seen == ["1 shard(s) @ 8 qps"]
        rate = run.rates[0]
        assert {r.state for r in rate.records} == {"done"}
        executed = run.counters.get("serve.jobs.executed", 0)
        deduped = run.counters.get("serve.jobs.deduped", 0)
        assert executed >= 1
        assert executed + deduped == len(rate.records)
        report = summarize_fleet(
            runs, scenario().as_dict()
        )
        assert report["points"][0]["shards"] == 1
        assert report["scaling"]["speedup_vs_1_shard"]["8"]["1"] == 1.0
