"""Scenario parsing, planning determinism, and report arithmetic.

No daemons here — everything is pure: profile validation, the
deterministic request timeline, exact percentiles and the scaling
summary.  The launcher against live servers is ``test_launcher.py``.
"""

from __future__ import annotations

import importlib.util
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LoadGenError
from repro.loadgen import (
    FleetRun,
    RateRun,
    RequestRecord,
    Scenario,
    arrival_offsets,
    bundled_profile,
    bundled_profiles,
    load_scenario,
    parse_scenario,
    percentile,
    plan_requests,
    render_fleet,
    render_rate,
    resolve_scenario,
    summarize_fleet,
    summarize_rate,
)

MINIMAL = {
    "name": "t",
    "qps": [4.0],
    "mix": [{"experiment": "table2", "scale": 0.02, "seeds": 4}],
}


def scenario(**overrides) -> Scenario:
    mapping = dict(MINIMAL)
    mapping.update(overrides)
    return parse_scenario(mapping)


class TestParseScenario:
    def test_minimal_profile_defaults(self):
        parsed = scenario()
        assert parsed.name == "t"
        assert parsed.arrival == "uniform"
        assert parsed.duplicate_rate == 0.0
        assert parsed.qps == (4.0,)
        assert parsed.distinct_specs() == 4

    def test_roundtrips_through_as_dict(self):
        parsed = scenario(duplicate_rate=0.5, arrival="poisson")
        assert parse_scenario(parsed.as_dict()) == parsed
        # and as_dict is JSON-ready
        assert json.loads(json.dumps(parsed.as_dict())) == parsed.as_dict()

    @pytest.mark.parametrize("mapping, fragment", [
        ({**MINIMAL, "durationn_s": 3}, "duration_s"),     # did-you-mean
        ({**MINIMAL, "arrival": "bursty"}, "poisson"),
        ({**MINIMAL, "name": "Bad Name"}, "name"),
        ({**MINIMAL, "qps": []}, "qps"),
        ({**MINIMAL, "qps": "fast"}, "qps"),
        ({**MINIMAL, "qps": [0.0]}, "qps[0]"),
        ({**MINIMAL, "mix": []}, "mix"),
        ({**MINIMAL, "mix": [{"experiment": "tabel2"}]}, "table2"),
        ({**MINIMAL, "mix": [{"experiment": "table2", "scal": 1}]}, "scale"),
        ({**MINIMAL, "duplicate_rate": 1.5}, "duplicate_rate"),
        ({**MINIMAL, "concurrency": 0}, "concurrency"),
        ("not a mapping", "object"),
    ])
    def test_rejections_name_the_problem(self, mapping, fragment):
        with pytest.raises(LoadGenError) as excinfo:
            parse_scenario(mapping)
        assert fragment in str(excinfo.value)


class TestProfileFiles:
    def test_bundled_profiles_exist(self):
        names = bundled_profiles()
        assert {"smoke", "scaling", "duplicate_storm", "compute"} <= set(
            names
        )

    @pytest.mark.parametrize("name", [
        "smoke", "scaling", "duplicate_storm", "compute",
    ])
    def test_every_bundled_profile_parses(self, name):
        parsed = bundled_profile(name)
        assert parsed.name == name

    def test_unknown_bundled_profile_suggests(self):
        with pytest.raises(LoadGenError) as excinfo:
            bundled_profile("smke")
        assert "smoke" in str(excinfo.value)

    def test_load_scenario_from_path(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(json.dumps(MINIMAL))
        assert load_scenario(path).name == "t"
        assert resolve_scenario(str(path)).name == "t"

    def test_resolve_scenario_by_name(self):
        assert resolve_scenario("smoke").name == "smoke"

    def test_missing_file_is_a_loadgen_error(self, tmp_path):
        with pytest.raises(LoadGenError, match="cannot read"):
            load_scenario(tmp_path / "absent.json")

    def test_bad_json_is_a_loadgen_error(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text("{nope")
        with pytest.raises(LoadGenError, match="not valid JSON"):
            load_scenario(path)

    def test_yaml_gated_on_parser_availability(self, tmp_path):
        path = tmp_path / "p.yaml"
        path.write_text(json.dumps(MINIMAL))  # JSON is valid YAML
        if importlib.util.find_spec("yaml") is None:
            with pytest.raises(LoadGenError, match="no YAML parser"):
                load_scenario(path)
        else:
            assert load_scenario(path).name == "t"

    def test_scaling_profile_uses_emulated_service_time(self):
        """The committed scaling claim must come from the emulated
        backend (docs/SERVING.md): a 1-CPU host cannot scale real
        compute across shards, and the profile encodes that honesty."""
        assert bundled_profile("scaling").service_time_ms > 0
        assert bundled_profile("compute").service_time_ms == 0


class TestArrivals:
    def test_uniform_offsets_are_evenly_spaced(self):
        offsets = arrival_offsets("uniform", 10.0, 1.0, seed=0)
        assert offsets == [i / 10.0 for i in range(10)]

    def test_poisson_is_deterministic_per_seed(self):
        first = arrival_offsets("poisson", 20.0, 2.0, seed=7)
        again = arrival_offsets("poisson", 20.0, 2.0, seed=7)
        other = arrival_offsets("poisson", 20.0, 2.0, seed=8)
        assert first == again
        assert first != other

    def test_poisson_offsets_increase_within_window(self):
        offsets = arrival_offsets("poisson", 50.0, 2.0, seed=3)
        assert offsets == sorted(offsets)
        assert all(0.0 <= o < 2.0 for o in offsets)

    def test_unknown_arrival_rejected(self):
        with pytest.raises(LoadGenError):
            arrival_offsets("bursty", 1.0, 1.0, seed=0)


class TestPlanRequests:
    def test_plan_is_deterministic(self):
        parsed = scenario(duplicate_rate=0.5, seed=3)
        assert plan_requests(parsed, 8.0) == plan_requests(parsed, 8.0)

    def test_zero_duplicate_rate_plans_no_duplicates(self):
        planned = plan_requests(scenario(), 8.0)
        assert planned and not any(p.duplicate for p in planned)

    def test_duplicates_repeat_an_earlier_body(self):
        planned = plan_requests(
            scenario(duplicate_rate=0.6, duration_s=3.0), 8.0
        )
        seen = []
        for request in planned:
            if request.duplicate:
                assert request.body in seen
            else:
                seen.append(request.body)
        assert any(p.duplicate for p in planned)

    def test_fresh_specs_stay_inside_the_mix(self):
        parsed = scenario(duration_s=3.0)
        planned = plan_requests(parsed, 8.0)
        bodies = {json.dumps(p.body, sort_keys=True) for p in planned}
        assert len(bodies) <= parsed.distinct_specs()
        for request in planned:
            assert request.body["experiment"] == "table2"
            assert request.body["seed"] - parsed.seed in range(4)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        qps=st.floats(min_value=1.0, max_value=50.0),
        rate=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_offsets_ride_the_arrival_process(self, seed, qps, rate):
        parsed = scenario(seed=seed, duplicate_rate=rate, duration_s=2.0)
        planned = plan_requests(parsed, qps)
        offsets = arrival_offsets("uniform", qps, 2.0, seed)
        assert [p.offset_s for p in planned] == offsets
        assert [p.index for p in planned] == list(range(len(planned)))


class TestPercentile:
    def test_exact_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 25) == 2.0

    def test_interpolates_between_samples(self):
        assert percentile([0.0, 1.0], 50) == 0.5
        assert percentile([0.0, 10.0], 99) == pytest.approx(9.9)

    def test_degenerate_inputs(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.5], 99) == 7.5

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0


def _record(index, state="done", deduped=False, duplicate=False,
            latency=0.1, job=True):
    return RequestRecord(
        index=index, offset_s=0.0, body={"experiment": "table2"},
        duplicate=duplicate, state=state,
        job_id=f"job-{index}" if job else None,
        deduped=deduped, latency_s=latency, submit_s=0.01,
    )


class TestSummaries:
    def test_summarize_rate_counts_states(self):
        records = [
            _record(0), _record(1, deduped=True, duplicate=True),
            _record(2, state="rejected", job=False),
            _record(3, state="failed"),
            _record(4, state="timeout"),
        ]
        summary = summarize_rate(RateRun(8.0, records, wall_s=2.0))
        assert summary["offered"] == 5
        assert summary["states"]["done"] == 2
        assert summary["states"]["rejected"] == 1
        assert summary["throughput_rps"] == 1.0  # 2 done / 2 s
        assert summary["failure_rate"] == pytest.approx(2 / 5)
        assert summary["rejected_rate"] == pytest.approx(1 / 5)
        dedup = summary["dedup"]
        assert dedup["duplicates_offered"] == 1
        assert dedup["client_observed_deduped"] == 1
        assert dedup["hit_rate"] == pytest.approx(1 / 5)

    def test_latency_percentiles_use_done_records_only(self):
        records = [
            _record(0, latency=0.1), _record(1, latency=0.3),
            _record(2, state="failed", latency=99.0),
        ]
        summary = summarize_rate(RateRun(4.0, records, wall_s=1.0))
        assert summary["latency_s"]["p99"] < 1.0

    def test_summarize_fleet_scaling_block(self):
        def run(shards, rps):
            records = [
                _record(i, latency=0.05) for i in range(int(rps))
            ]
            return FleetRun(
                shard_count=shards,
                rates=[RateRun(8.0, records, wall_s=1.0)],
                counters={"serve.jobs.executed": float(rps)},
            )

        report = summarize_fleet(
            [run(1, 4), run(2, 8), run(4, 16)], scenario().as_dict()
        )
        assert [p["shards"] for p in report["points"]] == [1, 2, 4]
        speedup = report["scaling"]["speedup_vs_1_shard"]["8"]
        assert speedup == {"1": 1.0, "2": 2.0, "4": 4.0}

    def test_summarize_fleet_without_one_shard_point(self):
        records = [_record(0)]
        report = summarize_fleet(
            [FleetRun(2, [RateRun(8.0, records, 1.0)], {})],
            scenario().as_dict(),
        )
        assert "speedup_vs_1_shard" not in report["scaling"]
        assert report["scaling"]["throughput_rps"]

    def test_renderings_are_human_strings(self):
        records = [_record(0), _record(1, state="rejected", job=False)]
        rate_summary = summarize_rate(RateRun(8.0, records, 1.0))
        line = render_rate(rate_summary)
        assert "qps" in line and "p99" in line and "rej 1" in line
        report = summarize_fleet(
            [FleetRun(1, [RateRun(8.0, records, 1.0)],
                      {"serve.jobs.executed": 1.0})],
            scenario().as_dict(),
        )
        text = render_fleet(report)
        assert "scenario t" in text
        assert "shards=1" in text
        assert "executed=1" in text
