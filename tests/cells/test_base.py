"""Tests for cell datatypes and provenance handling."""

import math

import pytest

from repro.cells.base import (
    CellClass,
    NVMCell,
    Param,
    Provenance,
    electrical,
    interpolated,
    reported,
    similarity,
)
from repro.cells.library import CHUNG, CLOSE, OH, SRAM, XUE, ZHANG
from repro.errors import CellParameterError


class TestProvenance:
    def test_table_marks(self):
        assert Provenance.REPORTED.table_mark == ""
        assert Provenance.ELECTRICAL.table_mark == "†"
        assert Provenance.INTERPOLATED.table_mark == "*"
        assert Provenance.SIMILARITY.table_mark == "*"

    def test_is_derived(self):
        assert not Provenance.REPORTED.is_derived
        assert Provenance.ELECTRICAL.is_derived
        assert Provenance.INTERPOLATED.is_derived
        assert Provenance.SIMILARITY.is_derived

    def test_class_is_nvm(self):
        assert not CellClass.SRAM.is_nvm
        for cls in (CellClass.PCRAM, CellClass.STTRAM, CellClass.RRAM):
            assert cls.is_nvm


class TestParam:
    def test_marked_rendering(self):
        assert reported(10).marked() == "10"
        assert electrical(0.52).marked() == "0.52†"
        assert similarity(2).marked() == "2*"
        assert interpolated(60).marked() == "60*"

    def test_rejects_non_finite(self):
        with pytest.raises(CellParameterError):
            Param(float("nan"))
        with pytest.raises(CellParameterError):
            Param(float("inf"))


class TestNVMCell:
    def test_display_name_has_class_subscript(self):
        assert OH.display_name == "Oh_P"
        assert CHUNG.display_name == "Chung_S"
        assert ZHANG.display_name == "Zhang_R"
        assert SRAM.display_name == "SRAM"

    def test_get_known_parameter(self):
        assert OH.get("reset_current_ua").value == 600

    def test_get_unknown_parameter_raises(self):
        with pytest.raises(CellParameterError):
            OH.get("bogus_parameter")

    def test_value_of_unset_parameter_raises(self):
        with pytest.raises(CellParameterError):
            OH.value("read_voltage_v")  # PCRAM reports current, not voltage

    def test_parameters_iterates_only_set(self):
        names = {name for name, _ in OH.parameters()}
        assert "reset_current_ua" in names
        assert "read_voltage_v" not in names

    def test_derived_parameters_subset(self):
        derived = OH.derived_parameters()
        assert "cell_size_f2" in derived  # similarity-derived in Table II
        assert "reset_current_ua" not in derived  # reported

    def test_with_params_replaces(self):
        modified = OH.with_params(reset_current_ua=reported(500))
        assert modified.value("reset_current_ua") == 500
        assert OH.value("reset_current_ua") == 600  # original untouched

    def test_with_params_rejects_unknown(self):
        with pytest.raises(CellParameterError):
            OH.with_params(nonsense=reported(1))

    def test_bits_per_cell_mlc(self):
        assert OH.bits_per_cell == 1
        assert CLOSE.bits_per_cell == 2
        assert XUE.bits_per_cell == 2
        assert XUE.is_mlc
        assert not OH.is_mlc

    def test_physical_cell_area(self):
        # Zhang: 4 F^2 at 22 nm.
        assert ZHANG.physical_cell_area_m2() == pytest.approx(4 * (22e-9) ** 2)

    def test_write_pulse_is_worst_of_set_reset(self):
        # Oh: set 180 ns, reset 10 ns.
        assert OH.write_pulse_s() == pytest.approx(180e-9)

    def test_write_asymmetry_positive(self):
        for cell in (CHUNG, XUE, ZHANG):
            assert cell.write_asymmetry() > 0

    def test_read_energy_from_power_fallback(self):
        # Chung has read power, not read energy: derived via 1 ns sensing.
        expected = 24.1e-6 * 1e-9
        assert CHUNG.read_energy_j() == pytest.approx(expected)

    def test_read_energy_reported_preferred(self):
        assert OH.read_energy_j() == pytest.approx(2e-12)

    def test_implausible_year_rejected(self):
        with pytest.raises(CellParameterError):
            NVMCell(name="X", citation="", cell_class=CellClass.RRAM, year=1960)

    def test_nonpositive_process_rejected(self):
        with pytest.raises(CellParameterError):
            NVMCell(
                name="X",
                citation="",
                cell_class=CellClass.RRAM,
                year=2015,
                process_nm=Param(-1.0),
            )
