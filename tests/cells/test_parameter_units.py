"""Consistency tests between the parameter registry and the cell type."""

import dataclasses

from repro.cells.base import PARAMETER_UNITS, NVMCell
from repro.cells.library import ALL_CELLS


def test_registry_matches_dataclass_fields():
    """Every registered parameter is an NVMCell field and vice versa
    (identity fields excluded)."""
    field_names = {f.name for f in dataclasses.fields(NVMCell)}
    identity = {"name", "citation", "cell_class", "year", "access_device"}
    assert set(PARAMETER_UNITS) == field_names - identity


def test_units_are_table2_units():
    assert PARAMETER_UNITS["reset_pulse_ns"] == "ns"
    assert PARAMETER_UNITS["set_energy_pj"] == "pJ"
    assert PARAMETER_UNITS["read_power_uw"] == "uW"
    assert PARAMETER_UNITS["cell_size_f2"] == "F^2"


def test_every_set_parameter_is_positive():
    for cell in ALL_CELLS:
        for name, param in cell.parameters():
            assert param.value > 0, (cell.display_name, name)


def test_class_exclusive_parameters():
    """Current-mode parameters never coexist with voltage-mode ones for
    the same operation (Table II's grayed-out structure)."""
    for cell in ALL_CELLS:
        for op in ("set", "reset"):
            current = cell.get(f"{op}_current_ua")
            voltage = cell.get(f"{op}_voltage_v")
            assert not (current is not None and voltage is not None), (
                cell.display_name,
                op,
            )
