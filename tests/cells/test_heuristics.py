"""Tests for the paper's three modeling heuristics (Section III-A)."""

import pytest

from repro.cells.base import CellClass, Provenance
from repro.cells.heuristics import (
    DEFAULT_ACCESS_VOLTAGE_V,
    apply_electrical_properties,
    cell_size_f2_from_dims,
    interpolate_from_cells,
    interpolate_parameter,
    read_current_from_pv,
    read_power_from_iv,
    similar_parameter,
    write_current_from_energy,
    write_energy_from_current,
)
from repro.cells.library import CHEN, CHUNG, KANG, OH, UMEKI
from repro.errors import HeuristicError


class TestHeuristic1Electrical:
    def test_equation1_read_power(self):
        # Chung: 37 uA at 0.65 V ~ 24.1 uW (the paper's dagger value).
        param = read_power_from_iv(37.0, 0.65)
        assert param.value == pytest.approx(24.05, rel=0.01)
        assert param.provenance is Provenance.ELECTRICAL

    def test_equation1_inverted(self):
        param = read_current_from_pv(24.1, 0.65)
        assert param.value == pytest.approx(37.08, rel=0.01)

    def test_equation1_rejects_nonpositive(self):
        with pytest.raises(HeuristicError):
            read_power_from_iv(0.0, 0.65)
        with pytest.raises(HeuristicError):
            read_current_from_pv(24.1, -1.0)

    def test_equation2_write_energy_units(self):
        # 100 uA * 1 V * 10 ns = 1e-12 J = 1 pJ.
        param = write_energy_from_current(100.0, 1.0, 10.0)
        assert param.value == pytest.approx(1.0)

    def test_equation2_chung_reset(self):
        # Chung reset: 80 uA, 10 ns at the default access voltage
        # reproduces Table II's 0.52 pJ dagger within ~20%.
        param = write_energy_from_current(80.0, 0.55, 10.0)
        assert param.value == pytest.approx(0.44, rel=0.05)

    def test_equation2_round_trip(self):
        energy = write_energy_from_current(150.0, 1.2, 2.0)
        current = write_current_from_energy(energy.value, 1.2, 2.0)
        assert current.value == pytest.approx(150.0)

    def test_equation3_cell_size(self):
        # A 90x120 nm cell at 45 nm process: 10800/2025 = 5.33 F^2.
        param = cell_size_f2_from_dims(90.0, 120.0, 45.0)
        assert param.value == pytest.approx(10800 / 2025)

    def test_equation3_rejects_nonpositive(self):
        with pytest.raises(HeuristicError):
            cell_size_f2_from_dims(0.0, 120.0, 45.0)


class TestHeuristic2Interpolation:
    def test_exact_linear_trend(self):
        known = [(45.0, 10.0), (90.0, 20.0)]
        param = interpolate_parameter(known, at=67.5)
        assert param.value == pytest.approx(15.0)
        assert param.provenance is Provenance.INTERPOLATED

    def test_single_point_copies(self):
        param = interpolate_parameter([(45.0, 10.0)], at=90.0)
        assert param.value == pytest.approx(10.0)

    def test_empty_raises(self):
        with pytest.raises(HeuristicError):
            interpolate_parameter([], at=45.0)

    def test_nonpositive_extrapolation_falls_back_to_nearest(self):
        # A steep decreasing trend extrapolated far right goes negative;
        # the heuristic must return the nearest physical value instead.
        known = [(10.0, 100.0), (20.0, 10.0)]
        param = interpolate_parameter(known, at=100.0)
        assert param.value == pytest.approx(10.0)

    def test_flat_x_uses_mean(self):
        known = [(45.0, 10.0), (45.0, 30.0)]
        param = interpolate_parameter(known, at=45.0)
        assert param.value == pytest.approx(20.0)

    def test_interpolate_from_cells(self):
        # Trend of PCRAM reset current against process node.
        param = interpolate_from_cells(
            [OH, CHEN], "process_nm", "reset_current_ua", at=100.0
        )
        # Oh (120, 600) and Chen (60, 90) -> slope 8.5, at 100: 430.
        assert param.value == pytest.approx(430.0)

    def test_interpolate_from_cells_requires_donor_params(self):
        with pytest.raises(HeuristicError):
            interpolate_from_cells([OH], "read_voltage_v", "reset_current_ua", 45.0)


class TestHeuristic3Similarity:
    def test_papers_worked_example(self):
        # Kang's set current comes from Oh, matched on reset current.
        stripped = KANG.with_params(set_current_ua=None) if False else KANG
        param = similar_parameter(
            KANG, [OH, CHEN], "set_current_ua", match_on="reset_current_ua"
        )
        assert param.value == pytest.approx(200.0)
        assert "Oh" in param.note

    def test_no_donor_raises(self):
        with pytest.raises(HeuristicError):
            similar_parameter(CHUNG, [OH, CHEN], "read_voltage_v")  # wrong class

    def test_nearest_process_default(self):
        # Without match_on, the donor closest in process node wins.
        param = similar_parameter(KANG, [OH, CHEN], "reset_pulse_ns")
        assert param.value == pytest.approx(10.0)  # Oh at 120nm vs Chen at 60nm

    def test_self_excluded_as_donor(self):
        param = similar_parameter(KANG, [KANG, OH], "set_current_ua")
        assert "Oh" in param.note


class TestApplyElectricalProperties:
    def test_fills_pcram_write_energies(self):
        enriched = apply_electrical_properties(OH)
        assert enriched.set_energy_pj is not None
        assert enriched.reset_energy_pj is not None
        expected_set = 200 * DEFAULT_ACCESS_VOLTAGE_V * 180 / 1000
        assert enriched.set_energy_pj.value == pytest.approx(expected_set)

    def test_never_overwrites_reported(self):
        enriched = apply_electrical_properties(UMEKI)
        assert enriched.set_energy_pj.value == UMEKI.set_energy_pj.value

    def test_idempotent_when_complete(self):
        once = apply_electrical_properties(OH)
        twice = apply_electrical_properties(once)
        assert once == twice
