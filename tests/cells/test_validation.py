"""Tests for per-class NVSim-requirement validation."""

import pytest

from repro.cells.base import CellClass, Param, Provenance
from repro.cells.heuristics import apply_electrical_properties
from repro.cells.library import ALL_CELLS, CHUNG, OH, SRAM
from repro.cells.validation import (
    PLAUSIBILITY_BOUNDS,
    check_plausibility,
    describe_provenance,
    required_parameters,
    require_complete,
    require_plausible,
    validate_cell,
)
from repro.errors import CellParameterError, PlausibilityError


class TestRequiredParameters:
    def test_pcram_requires_currents(self):
        required = required_parameters(CellClass.PCRAM)
        assert "read_current_ua" in required
        assert "read_voltage_v" not in required

    def test_sttram_requires_energies(self):
        required = required_parameters(CellClass.STTRAM)
        assert "set_energy_pj" in required
        assert "read_power_uw" in required

    def test_rram_requires_voltages(self):
        required = required_parameters(CellClass.RRAM)
        assert "set_voltage_v" in required
        assert "set_current_ua" not in required


class TestValidateCell:
    def test_library_cells_complete_after_heuristic1(self):
        # Every released cell must be NVSim-specifiable once heuristic 1
        # fills the electrically-derivable gaps (the paper's pipeline).
        for cell in ALL_CELLS:
            report = validate_cell(apply_electrical_properties(cell))
            assert report.is_complete, (cell.display_name, report.missing)

    def test_chung_reports_derived_parameters(self):
        report = validate_cell(CHUNG)
        assert "read_power_uw" in report.derived
        assert "reset_energy_pj" in report.derived

    def test_derived_fraction_bounds(self):
        for cell in ALL_CELLS:
            fraction = validate_cell(cell).derived_fraction
            assert 0.0 <= fraction <= 1.0

    def test_missing_parameter_detected(self):
        # Oh lacks set/reset energy until heuristic 1 runs.
        report = validate_cell(OH)
        assert report.is_complete  # PCRAM requires currents, which Oh has

    def test_require_complete_passes_for_sram(self):
        require_complete(SRAM)

    def test_require_complete_raises_with_names(self):
        incomplete = CHUNG.with_params(read_power_uw=None)
        with pytest.raises(CellParameterError) as excinfo:
            require_complete(incomplete)
        assert "read_power_uw" in str(excinfo.value)


class TestPlausibility:
    def test_library_cells_all_plausible(self):
        # The paper's own cells — published or heuristic-filled — must
        # never trip the bounds; they exist to catch unit mistakes.
        for cell in ALL_CELLS:
            assert check_plausibility(apply_electrical_properties(cell)) == []

    def test_out_of_range_value_flagged(self):
        lo, hi = PLAUSIBILITY_BOUNDS["set_pulse_ns"]
        broken = OH.with_params(
            set_pulse_ns=Param(hi * 10, Provenance.INTERPOLATED)
        )
        violations = check_plausibility(broken)
        assert any(v.parameter == "set_pulse_ns" for v in violations)

    def test_violation_names_the_heuristic(self):
        broken = OH.with_params(
            set_pulse_ns=Param(1e7, Provenance.INTERPOLATED)
        )
        with pytest.raises(PlausibilityError) as excinfo:
            require_plausible(broken, policy="strict")
        error = excinfo.value
        assert "heuristic 2" in error.provenance
        assert error.field == "set_pulse_ns"
        assert "Oh_P" in str(error)

    def test_pcram_pulse_ordering_checked(self):
        # set (crystallisation) faster than reset means the operations
        # were swapped somewhere upstream.
        swapped = OH.with_params(
            set_pulse_ns=Param(5.0, Provenance.REPORTED),
            reset_pulse_ns=Param(100.0, Provenance.REPORTED),
        )
        violations = check_plausibility(swapped)
        assert any("set>=reset" in v.bound for v in violations)

    def test_write_below_read_energy_flagged(self):
        cheap_write = CHUNG.with_params(
            set_energy_pj=Param(1e-4, Provenance.SIMILARITY),
            reset_energy_pj=Param(1e-4, Provenance.SIMILARITY),
        )
        violations = check_plausibility(cheap_write)
        assert any("write>=read" in v.bound for v in violations)

    def test_lenient_returns_violations(self):
        broken = OH.with_params(
            set_pulse_ns=Param(1e7, Provenance.INTERPOLATED)
        )
        violations = require_plausible(broken, policy="lenient")
        assert violations and violations[0].parameter == "set_pulse_ns"

    def test_off_skips_scan(self):
        broken = OH.with_params(
            set_pulse_ns=Param(1e7, Provenance.INTERPOLATED)
        )
        assert require_plausible(broken, policy="off") == []

    def test_describe_provenance_labels(self):
        assert "reported" in describe_provenance(
            Param(1.0, Provenance.REPORTED)
        )
        assert "heuristic 1" in describe_provenance(
            Param(1.0, Provenance.ELECTRICAL)
        )
        assert "heuristic 3" in describe_provenance(
            Param(1.0, Provenance.SIMILARITY, note="donor: Kang")
        )
