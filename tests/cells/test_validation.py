"""Tests for per-class NVSim-requirement validation."""

import pytest

from repro.cells.base import CellClass
from repro.cells.heuristics import apply_electrical_properties
from repro.cells.library import ALL_CELLS, CHUNG, OH, SRAM
from repro.cells.validation import (
    required_parameters,
    require_complete,
    validate_cell,
)
from repro.errors import CellParameterError


class TestRequiredParameters:
    def test_pcram_requires_currents(self):
        required = required_parameters(CellClass.PCRAM)
        assert "read_current_ua" in required
        assert "read_voltage_v" not in required

    def test_sttram_requires_energies(self):
        required = required_parameters(CellClass.STTRAM)
        assert "set_energy_pj" in required
        assert "read_power_uw" in required

    def test_rram_requires_voltages(self):
        required = required_parameters(CellClass.RRAM)
        assert "set_voltage_v" in required
        assert "set_current_ua" not in required


class TestValidateCell:
    def test_library_cells_complete_after_heuristic1(self):
        # Every released cell must be NVSim-specifiable once heuristic 1
        # fills the electrically-derivable gaps (the paper's pipeline).
        for cell in ALL_CELLS:
            report = validate_cell(apply_electrical_properties(cell))
            assert report.is_complete, (cell.display_name, report.missing)

    def test_chung_reports_derived_parameters(self):
        report = validate_cell(CHUNG)
        assert "read_power_uw" in report.derived
        assert "reset_energy_pj" in report.derived

    def test_derived_fraction_bounds(self):
        for cell in ALL_CELLS:
            fraction = validate_cell(cell).derived_fraction
            assert 0.0 <= fraction <= 1.0

    def test_missing_parameter_detected(self):
        # Oh lacks set/reset energy until heuristic 1 runs.
        report = validate_cell(OH)
        assert report.is_complete  # PCRAM requires currents, which Oh has

    def test_require_complete_passes_for_sram(self):
        require_complete(SRAM)

    def test_require_complete_raises_with_names(self):
        incomplete = CHUNG.with_params(read_power_uw=None)
        with pytest.raises(CellParameterError) as excinfo:
            require_complete(incomplete)
        assert "read_power_uw" in str(excinfo.value)
