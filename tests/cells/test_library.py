"""Tests for the Table II cell library."""

import pytest

from repro.cells.base import CellClass, Provenance
from repro.cells.library import (
    ALL_CELLS,
    NVM_CELLS,
    CHUNG,
    HAYAKAWA,
    JAN,
    KANG,
    OH,
    SRAM,
    UMEKI,
    XUE,
    ZHANG,
    cell_by_name,
    cells_of_class,
    table2_rows,
)
from repro.errors import CellParameterError


class TestLibraryContents:
    def test_ten_nvm_cells(self):
        assert len(NVM_CELLS) == 10

    def test_class_counts_match_table2(self):
        assert len(cells_of_class(CellClass.PCRAM)) == 4
        assert len(cells_of_class(CellClass.STTRAM)) == 4
        assert len(cells_of_class(CellClass.RRAM)) == 2
        assert len(cells_of_class(CellClass.SRAM)) == 1

    def test_all_cells_includes_sram(self):
        assert SRAM in ALL_CELLS
        assert len(ALL_CELLS) == 11

    def test_table2_order(self):
        names = [c.name for c in NVM_CELLS]
        assert names == [
            "Oh", "Chen", "Kang", "Close", "Chung", "Jan", "Umeki", "Xue",
            "Hayakawa", "Zhang",
        ]


class TestTable2Values:
    """Spot-check transcription against the paper's Table II."""

    def test_process_nodes(self):
        expected = {
            "Oh": 120, "Chen": 60, "Kang": 100, "Close": 90, "Chung": 54,
            "Jan": 90, "Umeki": 65, "Xue": 45, "Hayakawa": 40, "Zhang": 22,
        }
        for cell in NVM_CELLS:
            assert cell.value("process_nm") == expected[cell.name]

    def test_years_monotone_within_class(self):
        pcram = cells_of_class(CellClass.PCRAM)
        assert [c.year for c in pcram] == sorted(c.year for c in pcram)

    def test_kang_set_current_is_papers_worked_example(self):
        param = KANG.get("set_current_ua")
        assert param.value == 200
        assert param.provenance is Provenance.SIMILARITY

    def test_chung_dagger_values(self):
        assert CHUNG.get("read_power_uw").provenance is Provenance.ELECTRICAL
        assert CHUNG.get("reset_energy_pj").value == pytest.approx(0.52)
        assert CHUNG.get("set_energy_pj").value == pytest.approx(0.75)

    def test_umeki_cell_size_dagger(self):
        param = UMEKI.get("cell_size_f2")
        assert param.value == 48
        assert param.provenance is Provenance.ELECTRICAL

    def test_zhang_reported_row(self):
        assert ZHANG.get("read_voltage_v").value == pytest.approx(0.2)
        assert ZHANG.get("reset_pulse_ns").value == 150
        assert ZHANG.get("set_energy_pj").value == pytest.approx(0.4)

    def test_pcram_has_current_not_voltage_reads(self):
        for cell in cells_of_class(CellClass.PCRAM):
            assert cell.read_current_ua is not None
            assert cell.read_voltage_v is None

    def test_rram_has_voltage_not_current_writes(self):
        for cell in (HAYAKAWA, ZHANG):
            assert cell.set_voltage_v is not None
            assert cell.set_current_ua is None

    def test_write_asymmetry_pcram_dominates(self):
        # PCRAM writes are orders of magnitude above its reads (after
        # heuristic 1 derives the programming energies); STTRAM
        # asymmetry is about an order (paper Section II-B).
        from repro.cells.heuristics import apply_electrical_properties

        oh = apply_electrical_properties(OH)
        assert oh.write_energy_j() / oh.read_energy_j() > 1.0
        chung = CHUNG.write_energy_j() / CHUNG.read_energy_j()
        assert chung > 5.0


class TestLookup:
    def test_by_citation_name(self):
        assert cell_by_name("Kang") is KANG
        assert cell_by_name("kang") is KANG

    def test_by_display_name(self):
        assert cell_by_name("Kang_P") is KANG
        assert cell_by_name("xue_s") is XUE

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(CellParameterError) as excinfo:
            cell_by_name("nonexistent")
        assert "Zhang_R" in str(excinfo.value)


class TestTable2Rendering:
    def test_rows_cover_all_parameters(self):
        rows = table2_rows()
        # header + one row per parameter in PARAMETER_UNITS
        from repro.cells.base import PARAMETER_UNITS

        assert len(rows) == 1 + len(PARAMETER_UNITS)

    def test_grayed_cells_are_none(self):
        rows = table2_rows()
        read_voltage_row = next(
            r for r in rows if str(r["parameter"]).startswith("read_voltage_v")
        )
        assert read_voltage_row["Oh_P"] is None  # PCRAM: grayed out
        assert read_voltage_row["Chung_S"] == "0.65"

    def test_marks_present(self):
        rows = table2_rows()
        cell_size_row = next(
            r for r in rows if str(r["parameter"]).startswith("cell_size_f2")
        )
        assert cell_size_row["Umeki_S"].endswith("†")
        assert cell_size_row["Oh_P"].endswith("*")
        assert cell_size_row["Kang_P"] == "16.6"
