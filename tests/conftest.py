"""Shared fixtures for the test suite.

Session-scoped fixtures cache the expensive artefacts (traces, private
replays) so the whole suite stays fast while still exercising the real
pipeline end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext
from repro.nvsim.published import published_model, sram_baseline
from repro.sim.config import gainestown
from repro.sim.system import SimulationSession
from repro.trace.stream import Trace
from repro.workloads.generators import generate_trace


@pytest.fixture(scope="session")
def rng():
    """Deterministic RNG for test-local synthesis."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_context():
    """Experiment context with shortened traces (fast integration runs)."""
    return ExperimentContext(scale=0.25)


@pytest.fixture(scope="session")
def leela_trace():
    """A short but realistic single-threaded trace."""
    return generate_trace("leela", n_accesses=30_000)


@pytest.fixture(scope="session")
def cg_trace():
    """A short multi-threaded trace (4 threads, sharing)."""
    return generate_trace("cg", n_accesses=30_000)


@pytest.fixture(scope="session")
def leela_session(leela_trace):
    """Cached simulation session for the leela trace."""
    return SimulationSession(leela_trace, arch=gainestown())


@pytest.fixture(scope="session")
def cg_session(cg_trace):
    """Cached simulation session for the cg trace."""
    return SimulationSession(cg_trace, arch=gainestown())


@pytest.fixture(scope="session")
def sram_model():
    """The published fixed-capacity SRAM baseline."""
    return sram_baseline("fixed-capacity")


@pytest.fixture(scope="session")
def xue_model():
    """A representative STTRAM model."""
    return published_model("Xue_S", "fixed-capacity")


@pytest.fixture(scope="session")
def kang_model():
    """The PCRAM model with the paper's worst write energy."""
    return published_model("Kang_P", "fixed-capacity")
