"""Documentation honesty checks: links resolve, examples run.

Mirrors the CI ``docs`` job so a broken link or a stale example in
``docs/CONFIGURATION.md`` fails locally too, not just on GitHub.
"""

import doctest
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402


class TestLinkChecker:
    def test_default_doc_set_is_clean(self, capsys):
        assert check_links.main([]) == 0

    def test_detects_broken_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md)\n")
        assert check_links.main([str(bad)]) == 1
        assert "broken path" in capsys.readouterr().err

    def test_detects_broken_anchor(self, tmp_path, capsys):
        bad = tmp_path / "bad.md"
        bad.write_text("# Only Heading\n\n[jump](#nowhere)\n")
        assert check_links.main([str(bad)]) == 1
        assert "broken anchor" in capsys.readouterr().err

    def test_good_anchor_and_path_pass(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Target Section\n")
        good = tmp_path / "good.md"
        good.write_text(
            "# A Heading: with `code`\n\n"
            "[self](#a-heading-with-code) "
            "[file](other.md) [deep](other.md#target-section)\n"
        )
        assert check_links.main([str(good)]) == 0

    def test_links_inside_code_are_ignored(self, tmp_path):
        md = tmp_path / "code.md"
        md.write_text(
            "# T\n\n```python\nx = rows[i](cols[j])\n```\n"
            "and inline `a[0](b)` too\n"
        )
        assert check_links.main([str(md)]) == 0

    def test_slugs_match_github_rules(self):
        seen = {}
        assert check_links.github_slug("Observability: `repro.obs`", seen) == (
            "observability-reproobs"
        )
        seen = {}
        assert check_links.github_slug("Same", seen) == "same"
        assert check_links.github_slug("Same", seen) == "same-1"


class TestConfigurationDoctests:
    def test_examples_execute(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "CONFIGURATION.md"),
            module_relative=False,
            optionflags=doctest.IGNORE_EXCEPTION_DETAIL,
        )
        assert results.attempted >= 5, "CONFIGURATION.md lost its examples"
        assert results.failed == 0


class TestDSEDoctests:
    def test_examples_execute(self):
        results = doctest.testfile(
            str(REPO_ROOT / "docs" / "DSE.md"),
            module_relative=False,
            optionflags=doctest.IGNORE_EXCEPTION_DETAIL,
        )
        assert results.attempted >= 10, "DSE.md lost its examples"
        assert results.failed == 0
