"""Unit tests for the compacted-way compressed LLC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CompressionError, render_error
from repro.nvsim.published import published_model
from repro.techniques.compression import (
    DEFAULT_TAG_FACTOR,
    TAG_FACTOR_ENV,
    CompactedWayCache,
    CompressedLLC,
    resolve_tag_factor,
)
from repro.techniques.evaluate import evaluate_technique
from repro.workloads.generators import generate_trace, line_compressed_sizes


class TestResolveTagFactor:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(TAG_FACTOR_ENV, raising=False)
        assert resolve_tag_factor() == DEFAULT_TAG_FACTOR

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TAG_FACTOR_ENV, "7")
        assert resolve_tag_factor(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(TAG_FACTOR_ENV, "4")
        assert resolve_tag_factor() == 4

    def test_env_not_integer(self, monkeypatch):
        monkeypatch.setenv(TAG_FACTOR_ENV, "two")
        with pytest.raises(CompressionError) as exc:
            resolve_tag_factor()
        assert render_error(exc.value).startswith("error[COMPRESS]")
        assert exc.value.exit_code == 2

    def test_below_one_rejected(self):
        with pytest.raises(CompressionError):
            resolve_tag_factor(0)


class TestCompactedWayCache:
    def test_capacity_must_divide_into_sets(self):
        with pytest.raises(CompressionError):
            CompactedWayCache(1000, 64, 4)

    def test_rejects_out_of_range_size(self):
        cache = CompactedWayCache(1024, 64, 4)
        for bad in (0, -8, 65):
            with pytest.raises(CompressionError):
                cache.access(1, False, bad)

    def test_full_size_degenerates_to_assoc_lines(self):
        cache = CompactedWayCache(4 * 64, 64, 4)  # one set, 4 ways
        for block in range(5):
            cache.access(block, False, 64)
        # Fifth full-size line evicted exactly one LRU victim.
        assert cache.peak_lines == 4
        assert not cache.access(0, False, 64).hit  # block 0 was the LRU

    def test_compacted_set_holds_more_lines(self):
        cache = CompactedWayCache(4 * 64, 64, 4, tag_factor=2)
        for block in range(8):  # quarter-size lines: 8 fit the bytes
            cache.access(block, False, 16)
        assert cache.peak_lines == 8
        for block in range(8):
            assert cache.access(block, False, 16).hit

    def test_tag_budget_caps_residency(self):
        cache = CompactedWayCache(4 * 64, 64, 4, tag_factor=2)
        for block in range(12):  # eighth-size: bytes allow 32, tags 8
            cache.access(block, False, 8)
        assert cache.peak_lines == cache.tag_budget == 8

    def test_one_miss_can_evict_many_dirty_victims(self):
        cache = CompactedWayCache(4 * 64, 64, 4, tag_factor=4)
        for block in range(16):  # 16 dirty quarter-lines: bytes full
            cache.access(block, True, 16)
        outcome = cache.access(100, False, 64)  # full-size fill
        assert not outcome.hit
        assert len(outcome.dirty_victims) == 4  # 4 x 16 B make room

    def test_mean_resident_lines_empty_cache(self):
        cache = CompactedWayCache(1024, 64, 4)
        assert cache.mean_resident_lines == 0.0

    def test_hit_keeps_stored_size_and_sticky_dirty(self):
        cache = CompactedWayCache(4 * 64, 64, 4)
        cache.access(1, True, 16)
        cache.access(1, False, 16)  # read hit: stays dirty
        victims = []
        for block in range(2, 7):
            victims += cache.access(block, False, 64).dirty_victims
        assert 1 in victims


class TestCompressedLLC:
    def test_uniform_size_fn(self):
        technique = CompressedLLC.uniform(32)
        assert technique.line_size_bytes(123, 64) == 32

    def test_for_workload_matches_sampler(self):
        technique = CompressedLLC.for_workload("gobmk")
        blocks = np.arange(50, dtype=np.uint64)
        expected = line_compressed_sizes(blocks, "gobmk")
        got = [technique.line_size_bytes(int(b), 64) for b in blocks]
        assert got == list(expected)
        # Second lookup comes from the memo cache, same values.
        assert technique.line_size_bytes(7, 64) == int(expected[7])

    def test_size_fn_out_of_range_rejected(self):
        technique = CompressedLLC(lambda block: 0)
        with pytest.raises(CompressionError):
            technique.line_size_bytes(1, 64)

    def test_leveling_period_must_be_positive(self):
        with pytest.raises(CompressionError):
            CompressedLLC.uniform(16, leveling_period=0)

    def test_device_factors_compose_with_ewt(self):
        plain = CompressedLLC.uniform(16)
        assert plain.write_energy_factor() == 1.0
        assert plain.write_latency_factor() == 1.0
        fused = CompressedLLC.uniform(16, redundant_fraction=0.5)
        assert fused.write_energy_factor() < 1.0
        assert fused.write_latency_factor() < 1.0

    def test_make_cache_carries_tag_factor(self):
        cache = CompressedLLC.uniform(16, tag_factor=3).make_cache(1024, 64, 4)
        assert isinstance(cache, CompactedWayCache)
        assert cache.tag_factor == 3

    def test_evaluate_technique_end_to_end(self):
        """The full seam: replay, pricing, and the parameterised
        lifetime forecast all see the compressed accounting."""
        trace = generate_trace("gobmk", n_accesses=8000)
        model = published_model("Kang_P", "fixed-capacity")
        evaluation = evaluate_technique(
            trace, model, CompressedLLC.for_workload("gobmk")
        )
        assert evaluation.technique == "compression"
        assert 0.0 < evaluation.write_bytes_reduction < 1.0
        assert evaluation.treated_write_energy_j < (
            evaluation.baseline_write_energy_j
        )
        assert evaluation.treated_lifetime.cell_write_fraction < 1.0
        gain = evaluation.lifetime_gain
        assert gain is not None and gain > 1.0
