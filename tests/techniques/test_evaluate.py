"""Tests for the technique evaluation harness."""

import pytest

from repro.errors import SimulationError
from repro.nvsim.published import published_model
from repro.techniques.early_write_termination import EarlyWriteTermination
from repro.techniques.evaluate import evaluate_all, evaluate_technique
from repro.techniques.wear_leveling import SetRotationLeveling
from repro.techniques.write_bypass import ReuseWriteBypass
from repro.workloads.generators import generate_trace


@pytest.fixture(scope="module")
def gobmk_trace():
    return generate_trace("gobmk", n_accesses=50_000)


@pytest.fixture(scope="module")
def kang():
    return published_model("Kang_P")


class TestEvaluateTechnique:
    def test_ewt_cuts_energy_not_writes(self, gobmk_trace, kang):
        evaluation = evaluate_technique(
            gobmk_trace, kang, EarlyWriteTermination()
        )
        assert evaluation.energy_reduction > 0.5
        assert evaluation.write_reduction == pytest.approx(0.0, abs=1e-9)

    def test_bypass_cuts_writes_adds_dram(self, gobmk_trace, kang):
        evaluation = evaluate_technique(
            gobmk_trace, kang, ReuseWriteBypass(filter_blocks=4096)
        )
        assert evaluation.write_reduction > 0.02
        assert evaluation.treated.bypassed_writes > 0
        assert evaluation.extra_dram_writes > 0

    def test_leveling_flattens_hottest_line(self, kang):
        trace = generate_trace("ft", n_accesses=60_000)
        evaluation = evaluate_technique(
            trace, kang, SetRotationLeveling(period=1024)
        )
        # Rotation spreads the hottest frame's writes across sets; the
        # per-frame maximum must not grow, and typically shrinks.
        assert (
            evaluation.treated.wear.hottest_line_writes
            <= evaluation.baseline.wear.hottest_line_writes
        )
        assert evaluation.treated.technique == "wear-leveling"

    def test_lifetime_reported_for_limited_class(self, gobmk_trace, kang):
        evaluation = evaluate_technique(
            gobmk_trace, kang, EarlyWriteTermination()
        )
        assert evaluation.baseline_lifetime.unleveled_years is not None
        assert evaluation.lifetime_gain is not None

    def test_zero_window_rejected(self, gobmk_trace, kang):
        with pytest.raises(SimulationError):
            evaluate_technique(
                gobmk_trace, kang, EarlyWriteTermination(), window_s=0.0
            )


class TestEvaluateAll:
    def test_shared_private_replay(self, gobmk_trace, kang):
        evaluations = evaluate_all(
            gobmk_trace,
            kang,
            [EarlyWriteTermination(), ReuseWriteBypass()],
        )
        assert [e.technique for e in evaluations] == [
            "early-write-termination",
            "write-bypass",
        ]
        # Baselines replayed from the same stream are identical.
        a, b = evaluations
        assert a.baseline.wear.total_writes == b.baseline.wear.total_writes
