"""Property-based invariants of the compressed-LLC family.

Four laws the compacted-way design must obey for *every* access stream
and size distribution:

1. compression ratio 1.0 is byte-identical to the uncompressed
   baseline — the published results are unperturbed by construction;
2. effective capacity and hit counts are monotone non-decreasing in
   compressibility (smaller lines never evict what bigger lines kept);
3. compressed write energy never exceeds uncompressed for the same
   stream (bytes programmed can only shrink);
4. the lifetime forecast is non-decreasing under any write-count (or
   per-cell write-fraction) reduction.
"""

from __future__ import annotations

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cells.base import CellClass
from repro.endurance.lifetime import estimate_lifetime
from repro.endurance.wear import WearSummary
from repro.sim.hierarchy import LLCStream
from repro.techniques.base import Technique
from repro.techniques.compression import CompressedLLC
from repro.techniques.replay import replay_with_technique

#: Small geometry so short random streams actually contend: 4 sets x
#: 4 ways of 64 B.
CAPACITY = 4 * 4 * 64
ASSOC = 4

ACCESS = st.tuples(
    st.integers(min_value=0, max_value=127),  # block
    st.booleans(),  # write flag
)

#: The eight compressed-size classes (eighths of a 64 B line).
SIZES = st.sampled_from([8, 16, 24, 32, 40, 48, 56, 64])


def _stream(accesses) -> LLCStream:
    n = len(accesses)
    return LLCStream(
        blocks=np.array([a[0] for a in accesses], dtype=np.int64),
        writes=np.array([a[1] for a in accesses], dtype=bool),
        cores=np.zeros(n, dtype=np.int64),
        instr_positions=np.arange(n, dtype=np.int64),
    )


def _replay(accesses, technique):
    return replay_with_technique(
        _stream(accesses), technique, CAPACITY, ASSOC, 64, n_cores=1
    )


@given(accesses=st.lists(ACCESS, max_size=300))
@settings(max_examples=60, deadline=None)
def test_ratio_one_is_byte_identical_to_baseline(accesses):
    """uniform(64) must reproduce the bare-Technique replay exactly."""
    base = _replay(accesses, Technique())
    comp = _replay(accesses, CompressedLLC.uniform(64))
    assert comp.counts == base.counts
    assert comp.wear.total_writes == base.wear.total_writes
    assert (comp.wear.set_writes == base.wear.set_writes).all()
    assert comp.wear.hottest_line_writes == base.wear.hottest_line_writes
    assert comp.write_bytes == base.write_bytes
    assert comp.write_bytes == base.wear.total_writes * 64
    assert comp.compressed_writes == 0
    assert comp.uncompressed_writes == comp.wear.total_writes


@given(
    accesses=st.lists(ACCESS, max_size=300),
    small=SIZES,
    large=SIZES,
)
@settings(max_examples=60, deadline=None)
def test_hits_and_capacity_monotone_in_compressibility(accesses, small, large):
    """Shrinking every line never loses hits or effective capacity."""
    if small > large:
        small, large = large, small
    more = _replay(accesses, CompressedLLC.uniform(small))
    less = _replay(accesses, CompressedLLC.uniform(large))
    assert more.counts.read_hits >= less.counts.read_hits
    assert more.counts.write_hits >= less.counts.write_hits
    assert more.mean_resident_lines >= less.mean_resident_lines
    assert more.effective_capacity_bytes >= less.effective_capacity_bytes


@given(accesses=st.lists(ACCESS, max_size=300), size=SIZES)
@settings(max_examples=60, deadline=None)
def test_compressed_write_energy_never_exceeds_uncompressed(accesses, size):
    """Bytes programmed (the energy bill) only shrink under compression."""
    base = _replay(accesses, Technique())
    comp = _replay(accesses, CompressedLLC.uniform(size))
    assert comp.write_bytes <= base.write_bytes
    # Energy is write_bytes/block_bytes * E_write: same monotonicity.
    assert comp.write_bytes_fraction <= 1.0
    assert comp.compressed_writes + comp.uncompressed_writes == (
        comp.wear.total_writes
    )


WRITES = st.integers(min_value=0, max_value=10_000)


@given(
    total=WRITES,
    hottest=WRITES,
    cut=st.floats(min_value=0.0, max_value=1.0),
    fraction=st.floats(min_value=0.125, max_value=1.0),
)
@settings(max_examples=80, deadline=None)
def test_lifetime_non_decreasing_under_write_reduction(
    total, hottest, cut, fraction
):
    """Removing writes (or shrinking the per-cell fraction) never
    shortens the forecast."""
    hottest = min(hottest, total)
    n_sets = 4
    before = WearSummary(
        n_sets=n_sets,
        associativity=ASSOC,
        total_writes=total,
        set_writes=np.full(n_sets, total // n_sets, dtype=np.int64),
        hottest_line_writes=hottest,
    )
    cut_total = int(total * (1.0 - cut))
    cut_hottest = min(hottest, cut_total)
    after = WearSummary(
        n_sets=n_sets,
        associativity=ASSOC,
        total_writes=cut_total,
        set_writes=np.full(n_sets, cut_total // n_sets, dtype=np.int64),
        hottest_line_writes=cut_hottest,
    )
    base = estimate_lifetime("Kang_P", CellClass.PCRAM, before, window_s=1e-3)
    less_writes = estimate_lifetime(
        "Kang_P", CellClass.PCRAM, after, window_s=1e-3
    )
    assert less_writes.unleveled_years >= base.unleveled_years
    assert less_writes.leveled_years >= base.leveled_years
    # The per-cell fraction is a pure rate scale: any fraction <= 1
    # also never shortens the forecast.
    scaled = estimate_lifetime(
        "Kang_P", CellClass.PCRAM, before, window_s=1e-3,
        cell_write_fraction=fraction,
    )
    assert scaled.unleveled_years >= base.unleveled_years
    assert scaled.leveled_years >= base.leveled_years
