"""Tests for the way-partitioned hybrid SRAM/NVM LLC."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.nvsim.published import published_model
from repro.sim.hierarchy import LLCStream
from repro.techniques.hybrid import HybridLLC, evaluate_hybrid


def _stream(blocks, writes):
    n = len(blocks)
    return LLCStream(
        blocks=np.array(blocks, dtype=np.uint64),
        writes=np.array(writes, dtype=bool),
        cores=np.zeros(n, dtype=np.uint16),
        instr_positions=np.arange(n, dtype=np.uint64),
    )


class TestHybridLLC:
    def test_partition_validated(self):
        with pytest.raises(ConfigurationError):
            HybridLLC(2 * units.MB, 64, 16, sram_ways=0)
        with pytest.raises(ConfigurationError):
            HybridLLC(2 * units.MB, 64, 16, sram_ways=16)

    def test_writebacks_land_in_sram(self):
        hybrid = HybridLLC(64 * units.KB, 64, 16, sram_ways=4)
        hybrid.access(1, True)
        hybrid.access(2, True)
        counts = hybrid.counts
        assert counts.sram_writes == 2
        assert counts.nvm_writes == 0

    def test_fills_land_in_nvm(self):
        hybrid = HybridLLC(64 * units.KB, 64, 16, sram_ways=4)
        hybrid.access(1, False)
        counts = hybrid.counts
        assert counts.read_misses == 1
        assert counts.nvm_writes == 1
        assert counts.sram_writes == 0

    def test_write_to_nvm_resident_migrates(self):
        hybrid = HybridLLC(64 * units.KB, 64, 16, sram_ways=4)
        hybrid.access(1, False)  # fill into NVM
        hybrid.access(1, True)   # write: migrate to SRAM
        counts = hybrid.counts
        assert counts.migrations == 1
        assert counts.sram_writes == 1

    def test_hits_found_in_either_region(self):
        hybrid = HybridLLC(64 * units.KB, 64, 16, sram_ways=4)
        hybrid.access(1, False)  # NVM resident
        hybrid.access(2, True)   # SRAM resident
        assert hybrid.access(1, False) is None  # returns None, counts hit
        hybrid.access(2, False)
        assert hybrid.counts.read_hits == 2

    def test_sram_region_capacity_respected(self):
        # 1 set x 4 SRAM ways: the 5th distinct writeback evicts.
        hybrid = HybridLLC(16 * 64, 64, 16, sram_ways=4)
        for block in range(5):
            hybrid.access(block, True)
        assert hybrid.counts.dirty_evictions == 1


class TestEvaluateHybrid:
    @pytest.fixture(scope="class")
    def stream(self):
        rng = np.random.default_rng(8)
        blocks = rng.integers(0, 1 << 15, size=20_000)
        writes = rng.random(20_000) < 0.4
        return _stream(blocks, writes)

    def test_reduces_nvm_writes(self, stream):
        evaluation = evaluate_hybrid(
            stream, published_model("Kang_P"), sram_ways=2
        )
        assert evaluation.nvm_write_reduction > 0.1
        assert evaluation.counts.sram_writes > 0

    def test_write_energy_reduction_for_pcram(self, stream):
        # SRAM writes at 0.537 nJ vs Kang's 375 nJ: diverted writes are
        # nearly free.
        evaluation = evaluate_hybrid(
            stream, published_model("Kang_P"), sram_ways=2
        )
        assert evaluation.write_energy_reduction > 0.1
        assert evaluation.write_energy_reduction == pytest.approx(
            evaluation.nvm_write_reduction, abs=0.02
        )

    def test_leakage_cost(self, stream):
        # SRAM ways leak ~3.4 W prorated: hybrid leaks more than the
        # pure low-leakage NVM.
        evaluation = evaluate_hybrid(
            stream, published_model("Kang_P"), sram_ways=2
        )
        assert evaluation.leakage_increase > 1.0

    def test_more_sram_ways_more_diversion(self, stream):
        small = evaluate_hybrid(stream, published_model("Kang_P"), sram_ways=1)
        large = evaluate_hybrid(stream, published_model("Kang_P"), sram_ways=4)
        assert large.nvm_write_reduction >= small.nvm_write_reduction
