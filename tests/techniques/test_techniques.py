"""Tests for the LLC management techniques."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.sim.hierarchy import LLCStream
from repro.techniques.base import Technique
from repro.techniques.early_write_termination import EarlyWriteTermination
from repro.techniques.replay import replay_with_technique
from repro.techniques.wear_leveling import SetRotationLeveling
from repro.techniques.write_bypass import ReuseWriteBypass


def _stream(blocks, writes):
    n = len(blocks)
    return LLCStream(
        blocks=np.array(blocks, dtype=np.uint64),
        writes=np.array(writes, dtype=bool),
        cores=np.zeros(n, dtype=np.uint16),
        instr_positions=np.arange(n, dtype=np.uint64),
    )


class TestBaselineTechnique:
    def test_noop_hooks(self):
        technique = Technique()
        assert technique.map_set(123, 64) == 123 % 64
        assert not technique.should_bypass_write(123)
        assert technique.write_energy_factor() == 1.0
        assert technique.write_latency_factor() == 1.0

    def test_baseline_replay_matches_plain_llc(self):
        from repro.sim.llc import simulate_llc

        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 8192, size=3000)
        writes = rng.random(3000) < 0.3
        stream = _stream(blocks, writes)
        plain = simulate_llc(stream, 256 * units.KB, 16, 64, 1)
        technique = replay_with_technique(stream, Technique(), 256 * units.KB)
        assert technique.counts.read_hits == plain.read_hits
        assert technique.counts.read_misses == plain.read_misses
        assert technique.counts.write_accesses == plain.write_accesses


class TestSetRotationLeveling:
    def test_rotates_after_period(self):
        leveler = SetRotationLeveling(period=3)
        before = leveler.map_set(0, 64)
        for _ in range(3):
            leveler.observe_write(0)
        after = leveler.map_set(0, 64)
        assert leveler.rotated
        assert after == (before + 1) % 64

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            SetRotationLeveling(period=0)

    def test_spreads_hot_set_wear(self):
        # A single write-hot block, long stream, aggressive rotation.
        stream = _stream([7] * 3000, [True] * 3000)
        base = replay_with_technique(stream, Technique(), 64 * units.KB)
        leveled = replay_with_technique(
            stream, SetRotationLeveling(period=100), 64 * units.KB
        )
        assert leveled.wear.hottest_line_writes < base.wear.hottest_line_writes
        assert (leveled.wear.set_writes > 0).sum() > 1
        assert (base.wear.set_writes > 0).sum() == 1


class TestReuseWriteBypass:
    def test_bypasses_unread_blocks(self):
        stream = _stream([1, 2, 3], [True, True, True])
        outcome = replay_with_technique(
            stream, ReuseWriteBypass(filter_blocks=16), 64 * units.KB
        )
        assert outcome.bypassed_writes == 3
        assert outcome.counts.write_accesses == 0
        # Bypassed writebacks go to DRAM.
        assert outcome.counts.dirty_evictions == 3

    def test_keeps_recently_read_blocks(self):
        stream = _stream([1, 1], [False, True])
        outcome = replay_with_technique(
            stream, ReuseWriteBypass(filter_blocks=16), 64 * units.KB
        )
        assert outcome.bypassed_writes == 0
        assert outcome.counts.write_accesses == 1

    def test_filter_eviction(self):
        bypass = ReuseWriteBypass(filter_blocks=2)
        bypass.observe_read(1)
        bypass.observe_read(2)
        bypass.observe_read(3)  # evicts 1
        assert bypass.should_bypass_write(1)
        assert not bypass.should_bypass_write(3)

    def test_rejects_empty_filter(self):
        with pytest.raises(ConfigurationError):
            ReuseWriteBypass(filter_blocks=0)


class TestEarlyWriteTermination:
    def test_energy_factor_scales_with_redundancy(self):
        none = EarlyWriteTermination(redundant_fraction=0.0)
        typical = EarlyWriteTermination()
        total = EarlyWriteTermination(redundant_fraction=1.0)
        assert none.write_energy_factor() == pytest.approx(1.0)
        assert 0.1 < typical.write_energy_factor() < 0.4
        assert total.write_energy_factor() < typical.write_energy_factor()

    def test_latency_factor_modest(self):
        technique = EarlyWriteTermination()
        assert 0.8 < technique.write_latency_factor() <= 1.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            EarlyWriteTermination(redundant_fraction=1.5)

    def test_does_not_change_counts(self):
        rng = np.random.default_rng(4)
        blocks = rng.integers(0, 2048, size=1000)
        writes = rng.random(1000) < 0.4
        stream = _stream(blocks, writes)
        base = replay_with_technique(stream, Technique(), 128 * units.KB)
        ewt = replay_with_technique(
            stream, EarlyWriteTermination(), 128 * units.KB
        )
        assert ewt.counts.read_hits == base.counts.read_hits
        assert ewt.wear.total_writes == base.wear.total_writes
        assert ewt.write_energy_factor < base.write_energy_factor
