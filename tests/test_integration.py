"""End-to-end integration tests: the paper's headline claims.

These tests run the whole pipeline (generator -> private levels -> LLC
-> timing -> energy -> normalisation) through the public API and assert
the *shape* of the paper's results, per DESIGN.md section 5.
"""

import dataclasses

import pytest

from repro import nvsim, prism, sim, workloads


@pytest.fixture(scope="module")
def bzip2_session():
    trace = workloads.generate_trace("bzip2")  # full length: capacity knee
    return sim.SimulationSession(trace)


@pytest.fixture(scope="module")
def bzip2_baseline(bzip2_session):
    return bzip2_session.run(nvsim.sram_baseline())


class TestHeadlineClaims:
    def test_nvm_energy_order_of_magnitude(self, bzip2_session, bzip2_baseline):
        """Abstract: 'NVM-based LLC energy use is up to an order of
        magnitude less than that of an SRAM-based LLC'."""
        best = min(
            sim.normalize(bzip2_session.run(m), bzip2_baseline).energy_ratio
            for m in nvsim.nvm_models("fixed-capacity")
        )
        assert best < 0.1

    def test_ed2p_on_par(self, bzip2_session, bzip2_baseline):
        """Abstract: 'ED^2P is generally on par' — no worse than ~unity
        for the efficient NVMs."""
        for name in ("Jan_S", "Xue_S", "Chung_S", "Hayakawa_R"):
            norm = sim.normalize(
                bzip2_session.run(nvsim.published_model(name)), bzip2_baseline
            )
            assert norm.ed2p_ratio < 1.0

    def test_fixed_capacity_speedup_band(self, bzip2_session, bzip2_baseline):
        """Section V-A: NVM speedups neighbour -1% to -3%."""
        for model in nvsim.nvm_models("fixed-capacity"):
            norm = sim.normalize(bzip2_session.run(model), bzip2_baseline)
            assert 0.93 < norm.speedup <= 1.02, model.name

    def test_write_latency_off_critical_path(self, bzip2_session, bzip2_baseline):
        """Section V-A-7: 300 ns writes (Zhang_R) barely dent runtime."""
        norm = sim.normalize(
            bzip2_session.run(nvsim.published_model("Zhang_R")), bzip2_baseline
        )
        assert norm.speedup > 0.95

    def test_fixed_area_capacity_win(self):
        """Section V-B: dense NVMs buy capacity that wins misses back."""
        trace = workloads.generate_trace("gobmk")
        session = sim.SimulationSession(trace, configuration="fixed-area")
        baseline = session.run(nvsim.sram_baseline("fixed-area"))
        hayakawa = sim.normalize(
            session.run(nvsim.published_model("Hayakawa_R", "fixed-area")),
            baseline,
        )
        assert hayakawa.speedup > 1.05
        # And the mechanism is misses: 32 MB vs 2 MB.
        counts_small = session.counts_for(nvsim.sram_baseline("fixed-area"))
        counts_large = session.counts_for(
            nvsim.published_model("Hayakawa_R", "fixed-area")
        )
        assert counts_large.read_misses < 0.65 * counts_small.read_misses


class TestAblations:
    """The DESIGN.md ablation switches must change results in the
    physically-expected direction."""

    def test_write_backpressure_throttles_pcram(self):
        trace = workloads.generate_trace("deepsjeng", n_accesses=40_000)
        relaxed = sim.simulate_system(trace, nvsim.published_model("Zhang_R"))
        pressured_arch = dataclasses.replace(
            sim.gainestown(), llc_write_backpressure=1.0
        )
        pressured = sim.simulate_system(
            trace, nvsim.published_model("Zhang_R"), arch=pressured_arch
        )
        assert pressured.runtime_s > 1.3 * relaxed.runtime_s
        assert pressured.timing.bound == "llc"

    def test_fill_energy_ablation_raises_pcram_energy(self):
        trace = workloads.generate_trace("cg", n_accesses=40_000)
        base = sim.simulate_system(trace, nvsim.published_model("Kang_P"))
        fills_arch = dataclasses.replace(sim.gainestown(), llc_fill_writes=True)
        fills = sim.simulate_system(
            trace, nvsim.published_model("Kang_P"), arch=fills_arch
        )
        assert fills.llc_energy_j > 2 * base.llc_energy_j

    def test_entropy_skip_bits_sensitivity(self):
        trace = workloads.generate_trace("leela", n_accesses=30_000)
        coarse = prism.extract_features(trace, skip_bits=12)
        default = prism.extract_features(trace, skip_bits=10)
        fine = prism.extract_features(trace, skip_bits=6)
        assert (
            coarse.read_local_entropy
            <= default.read_local_entropy
            <= fine.read_local_entropy
        )


class TestCrossModuleConsistency:
    def test_features_and_trace_agree(self):
        trace = workloads.generate_trace("ft", n_accesses=20_000)
        features = prism.extract_features(trace)
        assert features.total_reads == trace.n_reads
        assert features.total_writes == trace.n_writes

    def test_mpki_consistent_between_result_and_counts(self, bzip2_session):
        result = bzip2_session.run(nvsim.sram_baseline())
        assert result.mpki == pytest.approx(
            1000.0 * result.counts.read_misses / result.total_instructions
        )

    def test_generated_and_published_models_same_interface(self):
        trace = workloads.generate_trace("tonto", n_accesses=15_000)
        from repro.cells import XUE
        from repro.nvsim import CacheDesign, generate_llc_model

        generated = generate_llc_model(
            XUE, CacheDesign(capacity_bytes=2 * 1024 * 1024)
        )
        result = sim.simulate_system(trace, generated)
        assert result.llc_energy_j > 0
