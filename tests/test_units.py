"""Unit-constant and conversion tests."""

import math

import pytest

from repro import units


def test_time_constants_scale():
    assert units.NS == 1e-9
    assert units.US == pytest.approx(1000 * units.NS)
    assert units.MS == pytest.approx(1000 * units.US)
    assert units.S == pytest.approx(1000 * units.MS)


def test_energy_constants_scale():
    assert units.PJ == 1e-12
    assert units.NJ == pytest.approx(1000 * units.PJ)
    assert units.FJ == pytest.approx(units.PJ / 1000)


def test_round_trip_ns():
    assert units.to_ns(5 * units.NS) == pytest.approx(5.0)


def test_round_trip_pj_nj():
    assert units.to_pj(3 * units.PJ) == pytest.approx(3.0)
    assert units.to_nj(3 * units.NJ) == pytest.approx(3.0)


def test_round_trip_uw():
    assert units.to_uw(7 * units.UW) == pytest.approx(7.0)


def test_round_trip_mm2():
    assert units.to_mm2(2 * units.MM2) == pytest.approx(2.0)


def test_capacity_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB
    assert units.to_mb(2 * units.MB) == pytest.approx(2.0)


def test_feature_size_area_matches_equation3():
    # A 4 F^2 cell at 22 nm: 4 * (22e-9)^2 m^2.
    area = units.feature_size_area(4.0, 22.0)
    assert area == pytest.approx(4 * (22e-9) ** 2)


def test_feature_size_area_scales_quadratically():
    small = units.feature_size_area(10.0, 45.0)
    large = units.feature_size_area(10.0, 90.0)
    assert large / small == pytest.approx(4.0)
