"""Fault-injection hooks fired inside sweep workers.

:mod:`repro.sim.parallel` calls ``REPRO_FAULT_HOOK`` (``module:function``)
with each cell before running it.  These hooks implement the harness's
deliberate failures — killing, stalling or crashing a worker at a
deterministic point.  They coordinate across processes through files in
``REPRO_FAULT_STATE`` (``O_EXCL`` creation = exactly-once semantics),
and most target a single workload (``REPRO_FAULT_WORKLOAD``) so the
rest of the sweep proceeds normally.

Workers are forked from the test process, so this module is already
imported (or importable via the inherited ``sys.path``) on their side.
"""

from __future__ import annotations

import os
import signal
import time

#: Directory for cross-process once-only coordination files.
STATE_ENV = "REPRO_FAULT_STATE"

#: Workload name the fault targets (others run clean).
WORKLOAD_ENV = "REPRO_FAULT_WORKLOAD"


def _targets(cell) -> bool:
    wanted = os.environ.get(WORKLOAD_ENV)
    return wanted is None or cell.workload == wanted


def _once(tag: str) -> bool:
    """True exactly once per (state dir, tag) across all processes."""
    state = os.environ.get(STATE_ENV)
    if not state:
        return False
    try:
        fd = os.open(os.path.join(state, f"{tag}.fired"),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def kill_once(cell) -> None:
    """SIGKILL this worker mid-cell, the first time the target runs."""
    if _targets(cell) and _once("kill"):
        os.kill(os.getpid(), signal.SIGKILL)


def kill_always(cell) -> None:
    """SIGKILL the worker every time the target cell runs (exhausts
    pool respawns, forcing the serial in-process fallback — where the
    hook must *not* kill the parent, so it only fires in children)."""
    state = os.environ.get(STATE_ENV)
    if not _targets(cell) or not state:
        return
    parent = os.path.join(state, "parent.pid")
    if os.path.exists(parent):
        with open(parent) as handle:
            if handle.read().strip() == str(os.getpid()):
                return  # serial fallback in the parent: run clean
    os.kill(os.getpid(), signal.SIGKILL)


def fail_twice(cell) -> None:
    """Raise a transient error on the target cell's first two attempts."""
    if not _targets(cell):
        return
    for attempt in ("fail1", "fail2"):
        if _once(attempt):
            raise RuntimeError(f"injected transient failure ({attempt})")


def always_fail(cell) -> None:
    """Raise a transient error on every attempt of the target cell."""
    if _targets(cell):
        raise RuntimeError("injected permanent transient-looking failure")


def hang(cell) -> None:
    """Stall the target cell far past any reasonable timeout."""
    if _targets(cell):
        time.sleep(300)


def sleepy(cell) -> None:
    """Slow every cell down (paces a run so a test can kill it mid-way)."""
    time.sleep(float(os.environ.get("REPRO_FAULT_SLEEP", "0.2")))
