"""Concurrency stress: many processes sharing one replay-cache dir.

Atomic entry writes (temp file + rename) plus checksummed containers
mean concurrent readers, writers and evictors may race freely: a get is
either a verified hit, or a miss — never a deadlock, a torn read, or a
poisoned entry.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

# Fault-injection tests mutate process-global state (env hooks,
# the default replay cache, child processes, signals): CI runs
# them in the dedicated non-parallel `serial` job.
pytestmark = pytest.mark.serial

_WORKER = r"""
import json, random, sys
from pathlib import Path
from repro.sim.replay_cache import ReplayCache, _unpack

root, seed = sys.argv[1], int(sys.argv[2])
rng = random.Random(seed)
# Small cap so writers evict each other's (non-live) entries constantly.
cache = ReplayCache(root=root, enabled=True, max_bytes=64 * 1024)
keys = [f"stress-{i}" for i in range(24)]
# Each worker never writes a quarter of the keyspace, so entries that
# are non-live (evictable) from its point of view always exist.
writable = [k for i, k in enumerate(keys) if i % 4 != seed % 4]
payload = {k: k * 1024 for k in keys}  # ~9 KB each: keyspace >> cap

gets = puts = bad_values = 0
for step in range(250):
    if rng.random() < 0.5:
        key = rng.choice(writable)
        cache.put(key, (key, payload[key]))
        puts += 1
    else:
        key = rng.choice(keys)
        value = cache.get(key)
        gets += 1
        if value is not None and value != (key, payload[key]):
            bad_values += 1

# Every surviving entry on disk must verify and unpickle cleanly.
unverifiable = 0
for path in Path(root).glob("*.pkl"):
    try:
        _unpack(path.read_bytes())
    except FileNotFoundError:
        continue  # evicted underneath us: fine
    except Exception:
        unverifiable += 1

print(json.dumps({
    "gets": gets, "puts": puts, "hits": cache.hits, "misses": cache.misses,
    "corrupt": cache.corrupt, "evictions": cache.evictions,
    "bad_values": bad_values, "unverifiable": unverifiable,
}))
"""


class TestConcurrentCacheStress:
    def test_many_processes_one_cache_dir(self, tmp_path):
        root = tmp_path / "shared-cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", _WORKER, str(root), str(seed)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for seed in range(4)
        ]
        stats = []
        for worker in workers:
            out, err = worker.communicate(timeout=120)  # no deadlock
            assert worker.returncode == 0, err
            stats.append(json.loads(out))

        totals = {
            key: sum(s[key] for s in stats) for key in stats[0]
        }
        # Counters reconcile: every probe is exactly a hit or a miss.
        assert totals["hits"] + totals["misses"] == totals["gets"]
        # Atomic writes + checksums: no torn read ever surfaced as data.
        assert totals["corrupt"] == 0
        assert totals["bad_values"] == 0
        assert totals["unverifiable"] == 0
        # The cap was under real pressure (4 writers, 64 KiB budget).
        assert totals["evictions"] > 0

        # And the directory itself ends consistent: entries all verify.
        from repro.sim.replay_cache import _unpack

        for path in root.glob("*.pkl"):
            _unpack(path.read_bytes())
