"""Fault injection: workers killed, crashing, or hanging mid-sweep.

Every scenario must end in either a correct full result (identical to
an undisturbed run) or a structured, resumable partial one
(:class:`~repro.errors.PartialResultError` carrying the completed
cells) — never a silent loss.
"""

from __future__ import annotations

import pytest

from repro.errors import PartialResultError, WorkloadError
from repro.sim.parallel import FaultPolicy, SweepCell, run_cells

from tests.faults.conftest import arm_hook

# Fault-injection tests mutate process-global state (env hooks,
# the default replay cache, child processes, signals): CI runs
# them in the dedicated non-parallel `serial` job.
pytestmark = pytest.mark.serial


def _cells(workloads=("leela", "exchange2", "gamess", "tonto")):
    return [
        SweepCell(
            workload=workload,
            configuration="fixed-capacity",
            model_names=("SRAM", "Jan_S"),
            seed=11,
            n_accesses=6000,
        )
        for workload in workloads
    ]


def _assert_identical(results, reference):
    assert len(results) == len(reference)
    for got, want in zip(results, reference):
        assert set(got) == set(want)
        for name in want:
            assert got[name] == want[name]


@pytest.fixture(scope="module")
def reference():
    """Undisturbed serial results for the standard cell set."""
    return run_cells(_cells(), jobs=1)


class TestWorkerKill:
    def test_sigkill_mid_cell_recovers_and_matches(
        self, reference, fault_state, monkeypatch
    ):
        """A worker SIGKILLed mid-cell breaks the pool; the respawned
        pool re-runs the lost cells and the sweep completes with
        results identical to an undisturbed run."""
        arm_hook(monkeypatch, "kill_once", workload="gamess")
        results = run_cells(
            _cells(), jobs=2,
            policy=FaultPolicy(max_retries=2, backoff_s=0.01, pool_respawns=1),
        )
        _assert_identical(results, reference)

    def test_repeated_kills_degrade_to_serial_and_match(
        self, reference, fault_state, monkeypatch
    ):
        """A cell whose worker dies on *every* attempt exhausts the
        pool respawn budget; the surviving cells (and the killer cell
        itself) finish in-process and still match the reference."""
        arm_hook(monkeypatch, "kill_always", workload="gamess")
        results = run_cells(
            _cells(), jobs=2,
            policy=FaultPolicy(max_retries=3, backoff_s=0.01, pool_respawns=1),
        )
        _assert_identical(results, reference)


class TestTransientFailures:
    def test_two_transient_failures_then_success(
        self, reference, fault_state, monkeypatch
    ):
        """Retries with backoff absorb transient worker exceptions."""
        arm_hook(monkeypatch, "fail_twice", workload="exchange2")
        results = run_cells(
            _cells(), jobs=2,
            policy=FaultPolicy(max_retries=2, backoff_s=0.01),
        )
        _assert_identical(results, reference)

    def test_exhausted_retries_yield_partial_result(
        self, reference, fault_state, monkeypatch
    ):
        """An unrecoverable cell fails the sweep with every completed
        result preserved — nothing is discarded."""
        arm_hook(monkeypatch, "always_fail", workload="gamess")
        with pytest.raises(PartialResultError) as excinfo:
            run_cells(
                _cells(), jobs=2,
                policy=FaultPolicy(max_retries=1, backoff_s=0.01),
            )
        error = excinfo.value
        assert set(error.failures) == {2}  # gamess is the third cell
        assert set(error.completed) == {0, 1, 3}
        for index, results in error.completed.items():
            _assert_identical([results], [reference[index]])

    def test_serial_path_preserves_partial_results(
        self, reference, fault_state, monkeypatch
    ):
        arm_hook(monkeypatch, "always_fail", workload="gamess")
        with pytest.raises(PartialResultError) as excinfo:
            run_cells(_cells(), jobs=1, policy=FaultPolicy(max_retries=0))
        assert set(excinfo.value.completed) == {0, 1, 3}

    def test_library_errors_fail_fast_without_retry(self, fault_state):
        """Deterministic ReproErrors (here: unknown workload) must not
        burn retries — every attempt would fail identically."""
        bad = [SweepCell("no-such-workload", "fixed-capacity", ("SRAM",), seed=1)]
        with pytest.raises((PartialResultError, WorkloadError)):
            run_cells(bad, jobs=1, policy=FaultPolicy(max_retries=5, backoff_s=60.0))


class TestHangingWorker:
    def test_hung_cell_times_out_others_complete(
        self, reference, fault_state, monkeypatch
    ):
        """A hung worker is bounded by the cell timeout: the stuck cell
        fails, the pool is abandoned (hung process force-killed), and
        every other cell still completes correctly."""
        arm_hook(monkeypatch, "hang", workload="gamess")
        with pytest.raises(PartialResultError) as excinfo:
            run_cells(
                _cells(), jobs=2,
                policy=FaultPolicy(
                    cell_timeout_s=1.5, max_retries=0, pool_respawns=1
                ),
            )
        error = excinfo.value
        assert set(error.failures) == {2}
        assert "timed out" in error.failures[2]
        assert set(error.completed) == {0, 1, 3}
        for index, results in error.completed.items():
            _assert_identical([results], [reference[index]])


class TestOnResultCallback:
    def test_fires_exactly_once_per_cell_despite_kill(
        self, fault_state, monkeypatch
    ):
        arm_hook(monkeypatch, "kill_once", workload="gamess")
        seen = []
        run_cells(
            _cells(), jobs=2,
            policy=FaultPolicy(max_retries=2, backoff_s=0.01, pool_respawns=1),
            on_result=lambda index, cell, results: seen.append(index),
        )
        assert sorted(seen) == [0, 1, 2, 3]
