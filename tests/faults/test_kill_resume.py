"""Fault injection: SIGKILL a checkpointed run mid-sweep, then resume.

The end-to-end contract of the tentpole: a run killed at an arbitrary
point restarts with ``--resume RUN_DIR``, skips every journaled cell,
and produces a report byte-identical (modulo timing lines) to an
uninterrupted run.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

# Fault-injection tests mutate process-global state (env hooks,
# the default replay cache, child processes, signals): CI runs
# them in the dedicated non-parallel `serial` job.
pytestmark = pytest.mark.serial

REPO = Path(__file__).resolve().parents[2]

#: Strips wall-clock noise: stdout "[1.2s]" stamps and the report's
#: "_(generated in 1.2s)_" suffixes.
_TIMING = re.compile(r"\[[0-9.]+s\]|_\(generated in [0-9.]+s\)_")


def _normalize(text: str) -> str:
    return _TIMING.sub("", text)


def _run(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *args],
        env=env,
        cwd=str(REPO),
        capture_output=True,
        text=True,
        timeout=180,
        **kwargs,
    )


@pytest.fixture
def run_env(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}{REPO}"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "replay-cache")
    env.pop("REPRO_FAULT_HOOK", None)
    env.pop("REPRO_METRICS", None)
    return env


def _journal_lines(path: Path) -> int:
    try:
        return len(path.read_text().splitlines())
    except FileNotFoundError:
        return 0


class TestKillAndResume:
    def test_sigkill_mid_run_then_resume_matches_uninterrupted(
        self, tmp_path, run_env
    ):
        args = ["--scale", "0.1", "--only", "figure1", "--jobs", "2"]

        reference = _run(args + ["--write", str(tmp_path / "ref.md")], run_env)
        assert reference.returncode == 0, reference.stderr

        # Victim: paced by the sleepy hook so the kill lands mid-sweep.
        run_dir = tmp_path / "run"
        victim_env = dict(run_env)
        victim_env["REPRO_FAULT_HOOK"] = "tests.faults.hooks:sleepy"
        victim_env["REPRO_FAULT_SLEEP"] = "0.2"
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", *args,
             "--run-dir", str(run_dir), "--write", str(tmp_path / "dead.md")],
            env=victim_env,
            cwd=str(REPO),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,  # its own process group: workers die too
        )
        journal = run_dir / "checkpoint.jsonl"
        deadline = time.time() + 120
        try:
            while _journal_lines(journal) < 3:
                assert victim.poll() is None, "victim finished before the kill"
                assert time.time() < deadline, "victim never journaled 3 cells"
                time.sleep(0.05)
        finally:
            try:
                os.killpg(victim.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        victim.wait(timeout=30)
        assert victim.returncode != 0  # killed, not completed

        journaled = _journal_lines(journal)
        assert journaled >= 3
        for line in journal.read_text().splitlines()[:-1]:
            json.loads(line)  # all but a possibly-torn tail parse cleanly

        resumed = _run(
            args + ["--resume", str(run_dir), "--write", str(tmp_path / "final.md")],
            run_env,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from" in resumed.stdout
        skipped = re.search(r"checkpoint: (\d+) cells skipped", resumed.stdout)
        assert skipped is not None and int(skipped.group(1)) >= 3

        final = (tmp_path / "final.md").read_text()
        ref = (tmp_path / "ref.md").read_text()
        assert _normalize(final) == _normalize(ref)

        # A worker killed mid-store may orphan a fresh *.tmp in the
        # replay cache; it must be sweepable and never read as data.
        from repro.sim.replay_cache import ReplayCache

        cache = ReplayCache(root=Path(run_env["REPRO_CACHE_DIR"]), enabled=True)
        cache.sweep_stale_tmp(max_age_s=0.0)
        assert not list(Path(run_env["REPRO_CACHE_DIR"]).glob("*.tmp"))

    def test_fresh_run_dir_discards_stale_journal(self, tmp_path, run_env):
        """--run-dir (not --resume) must not trust a leftover journal."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "checkpoint.jsonl").write_text('{"check":"bogus"}\n')
        result = _run(
            ["--scale", "0.05", "--only", "table5", "--run-dir", str(run_dir)],
            run_env,
        )
        assert result.returncode == 0, result.stderr
        assert "resuming from" not in result.stdout
