"""Fixtures for the fault-injection harness.

Every test here runs against an isolated replay-cache directory and a
fresh fault-state directory, with the hook environment scrubbed, so
injected faults cannot leak between tests (or into a developer's real
``~/.cache``).
"""

from __future__ import annotations

import os

import pytest

from repro.sim.parallel import FAULT_HOOK_ENV, SweepCell
from repro.sim.replay_cache import CACHE_DIR_ENV, reset_default_cache

from tests.faults import hooks


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the process-wide replay cache at a per-test directory."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "replay-cache"))
    monkeypatch.delenv(FAULT_HOOK_ENV, raising=False)
    monkeypatch.delenv(hooks.STATE_ENV, raising=False)
    monkeypatch.delenv(hooks.WORKLOAD_ENV, raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


@pytest.fixture
def fault_state(tmp_path, monkeypatch):
    """A state directory for once-only hook coordination files."""
    state = tmp_path / "fault-state"
    state.mkdir()
    monkeypatch.setenv(hooks.STATE_ENV, str(state))
    (state / "parent.pid").write_text(str(os.getpid()))
    return state


def arm_hook(monkeypatch, name: str, workload: str = None) -> None:
    """Point REPRO_FAULT_HOOK at one of :mod:`tests.faults.hooks`."""
    monkeypatch.setenv(FAULT_HOOK_ENV, f"tests.faults.hooks:{name}")
    if workload is not None:
        monkeypatch.setenv(hooks.WORKLOAD_ENV, workload)


def make_cells(seeds=(1, 2, 3, 4)):
    """Small distinct cells (one workload each, two models)."""
    return [
        SweepCell(
            workload="leela",
            configuration="fixed-capacity",
            model_names=("SRAM", "Jan_S"),
            seed=seed,
            n_accesses=6000,
        )
        for seed in seeds
    ]
