"""Fault injection: damaged replay-cache entries under a real sweep.

A corrupt entry (truncated, bit-flipped, zeroed — e.g. a torn disk
write or a killed worker on a non-atomic filesystem) must behave as a
quarantined miss: the sweep recomputes the value, re-stores it, and the
final results are identical to an undisturbed run.  Silent
deserialization of damaged bytes would poison every later run that
hits the entry.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.sim.parallel import SweepCell, run_cells
from repro.sim.replay_cache import CACHE_DIR_ENV, default_cache, reset_default_cache

# Fault-injection tests mutate process-global state (env hooks,
# the default replay cache, child processes, signals): CI runs
# them in the dedicated non-parallel `serial` job.
pytestmark = pytest.mark.serial

#: Long enough to clear DEFAULT_MIN_ACCESSES so the sweep uses the cache.
_N_ACCESSES = 12_000


def _cells():
    return [
        SweepCell(
            workload=workload,
            configuration="fixed-capacity",
            model_names=("SRAM", "Jan_S"),
            seed=5,
            n_accesses=_N_ACCESSES,
        )
        for workload in ("leela", "exchange2")
    ]


def _cache_dir() -> Path:
    return Path(os.environ[CACHE_DIR_ENV])


def _truncate(path: Path) -> None:
    blob = path.read_bytes()
    path.write_bytes(blob[: max(1, len(blob) // 2)])


def _bit_flip(path: Path) -> None:
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    path.write_bytes(bytes(blob))


def _zero(path: Path) -> None:
    path.write_bytes(b"")


class TestCorruptEntries:
    @pytest.mark.parametrize("damage", [_truncate, _bit_flip, _zero])
    def test_damaged_entries_recompute_identically(self, damage):
        reference = run_cells(_cells(), jobs=1)
        entries = sorted(_cache_dir().glob("*.pkl"))
        assert entries, "warm run must populate the replay cache"
        for path in entries:
            damage(path)

        reset_default_cache()  # fresh instance: no in-memory shadow
        rerun = run_cells(_cells(), jobs=1)

        assert default_cache().corrupt >= 1
        assert len(rerun) == len(reference)
        for got, want in zip(rerun, reference):
            for name in want:
                assert got[name] == want[name]

    def test_quarantined_entries_are_rewritten(self):
        run_cells(_cells()[:1], jobs=1)
        entries = sorted(_cache_dir().glob("*.pkl"))
        before = {p.name for p in entries}
        for path in entries:
            _bit_flip(path)

        reset_default_cache()
        run_cells(_cells()[:1], jobs=1)

        after = {p.name for p in _cache_dir().glob("*.pkl")}
        assert after == before  # same keys, freshly re-stored
        from repro.sim.replay_cache import _unpack

        for path in _cache_dir().glob("*.pkl"):
            _unpack(path.read_bytes())  # every survivor verifies clean

    def test_corruption_in_parallel_sweep_recovers(self):
        """Workers probing damaged entries recompute instead of dying."""
        reference = run_cells(_cells(), jobs=1)
        for path in _cache_dir().glob("*.pkl"):
            _truncate(path)
        reset_default_cache()
        rerun = run_cells(_cells(), jobs=2)
        for got, want in zip(rerun, reference):
            for name in want:
                assert got[name] == want[name]
