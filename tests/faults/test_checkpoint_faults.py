"""Fault injection: checkpoint writes failing mid-run (ENOSPC et al.).

Losing the *journal* must never lose the *run*: results stay correct in
memory, the operator is warned once, the journal remains loadable, and
whatever prefix did reach disk still resumes.
"""

from __future__ import annotations

import errno
import os

from repro.experiments.common import ExperimentContext
from repro.sim.checkpoint import CheckpointJournal, cell_digest

import pytest

# Fault-injection tests mutate process-global state (env hooks,
# the default replay cache, child processes, signals): CI runs
# them in the dedicated non-parallel `serial` job.
pytestmark = pytest.mark.serial


def _context(tmp_path, jobs=1, **kwargs):
    return ExperimentContext(
        scale=0.05,
        jobs=jobs,
        checkpoint=CheckpointJournal(tmp_path / "run"),
        **kwargs,
    )


def _cells(context, workloads=("leela", "exchange2", "gamess")):
    return [
        context.cell(w, "fixed-capacity", ("SRAM", "Jan_S"), n_accesses=6000)
        for w in workloads
    ]


class _FullDisk:
    """A file handle whose writes fail with ENOSPC."""

    def __init__(self, handle):
        self._handle = handle

    def write(self, text):
        raise OSError(errno.ENOSPC, "No space left on device")

    def flush(self):
        pass

    def fileno(self):
        return self._handle.fileno()

    def close(self):
        self._handle.close()


def _fill_disk(journal: CheckpointJournal) -> None:
    """Make every subsequent journal write fail like a full disk."""
    handle = journal._handle or open(os.devnull, "a")
    journal._handle = _FullDisk(handle)


class TestEnospcMidRun:
    def test_run_survives_full_disk(self, tmp_path, capsys):
        """The disk fills after the first cell: the sweep still returns
        every result, warns exactly once, and the journal keeps the
        prefix that made it to disk."""
        context = _context(tmp_path)
        cells = _cells(context)

        first = context.run_cells(cells[:1])
        _fill_disk(context.checkpoint)
        rest = context.run_cells(cells[1:])
        context.checkpoint.close()

        results = first + rest
        assert len(results) == 3 and all(r is not None for r in results)
        stderr = capsys.readouterr().err
        assert stderr.count("resumability degraded") == 1  # warned once

        loaded = CheckpointJournal(tmp_path / "run").load()
        assert set(loaded) == {cell_digest(cells[0])}

    def test_journaled_prefix_still_resumes(self, tmp_path):
        context = _context(tmp_path)
        cells = _cells(context)
        reference = context.run_cells(cells[:2])
        _fill_disk(context.checkpoint)
        reference += context.run_cells(cells[2:])
        context.checkpoint.close()

        resumed_context = _context(tmp_path)
        assert len(resumed_context._checkpointed) == 2
        resumed = resumed_context.run_cells(_cells(resumed_context))
        resumed_context.checkpoint.close()
        assert resumed_context.cells_skipped == 2
        for got, want in zip(resumed, reference):
            for name in want:
                assert got[name] == want[name]

    def test_total_write_failure_is_only_a_warning(self, tmp_path, capsys):
        context = _context(tmp_path)
        _fill_disk(context.checkpoint)
        results = context.run_cells(_cells(context))
        context.checkpoint.close()
        assert all(r is not None for r in results)
        assert "resumability degraded" in capsys.readouterr().err
        assert CheckpointJournal(tmp_path / "run").load() == {}

    def test_parallel_sweep_survives_full_disk(self, tmp_path, capsys):
        """The parent journals workers' results via on_result; a dead
        journal must not take the pool down with it."""
        context = _context(tmp_path, jobs=2)
        _fill_disk(context.checkpoint)
        results = context.run_cells(_cells(context))
        context.checkpoint.close()
        assert all(r is not None for r in results)
        assert "resumability degraded" in capsys.readouterr().err
