"""Property-based tests for simulator-level invariants."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import units
from repro.prism.reuse import reuse_profile
from repro.sim.cache import SetAssocCache
from repro.sim.hierarchy import LLCStream
from repro.sim.llc import simulate_llc
from repro.techniques.hybrid import HybridLLC


def _stream(blocks, writes):
    n = len(blocks)
    return LLCStream(
        blocks=np.asarray(blocks, dtype=np.uint64),
        writes=np.asarray(writes, dtype=bool),
        cores=np.zeros(n, dtype=np.uint16),
        instr_positions=np.arange(n, dtype=np.uint64),
    )


STREAMS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=511), st.booleans()),
    min_size=1,
    max_size=400,
)


@given(accesses=STREAMS)
@settings(max_examples=50, deadline=None)
def test_llc_counts_partition(accesses):
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    counts = simulate_llc(_stream(blocks, writes), 64 * units.KB)
    assert counts.read_hits + counts.read_misses == counts.read_lookups
    assert counts.write_hits + counts.write_misses == counts.write_accesses
    assert counts.read_lookups + counts.write_accesses == len(accesses)
    assert counts.dirty_evictions <= counts.data_writes


@given(accesses=STREAMS)
@settings(max_examples=30, deadline=None)
def test_llc_misses_monotone_in_capacity(accesses):
    """Doubling LLC capacity (with associativity growing in step, so
    inclusion holds) never increases demand misses."""
    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    small = simulate_llc(_stream(blocks, writes), 32 * 64,
                         associativity=32, block_bytes=64)
    large = simulate_llc(_stream(blocks, writes), 64 * 64,
                         associativity=64, block_bytes=64)
    assert large.read_misses <= small.read_misses


@given(accesses=STREAMS)
@settings(max_examples=30, deadline=None)
def test_mrc_agrees_with_fully_associative_sim(accesses):
    """The reuse-distance MRC equals the measured fully-associative LRU
    miss ratio at any capacity — for all streams, not just examples."""
    blocks = np.asarray([a for a, _ in accesses], dtype=np.uint64)
    profile = reuse_profile(blocks)
    capacity = 16
    cache = SetAssocCache(capacity * 64, 64, capacity)  # one set
    misses = sum(not cache.access(int(b), False).hit for b in blocks)
    assert profile.miss_ratio(capacity) * len(blocks) == misses


@given(accesses=STREAMS, sram_ways=st.integers(min_value=1, max_value=15))
@settings(max_examples=30, deadline=None)
def test_hybrid_conservation(accesses, sram_ways):
    """Hybrid counts conserve: every access is a read hit, read miss or
    write; every miss programs exactly one NVM frame."""
    hybrid = HybridLLC(64 * units.KB, 64, 16, sram_ways=sram_ways)
    for block, is_write in accesses:
        hybrid.access(block, is_write)
    counts = hybrid.counts
    assert (
        counts.read_hits + counts.read_misses + counts.write_accesses
        == len(accesses)
    )
    assert counts.nvm_writes == counts.read_misses
    assert counts.sram_writes == counts.write_accesses
    assert 0.0 <= counts.nvm_write_share <= 1.0


@given(accesses=STREAMS)
@settings(max_examples=30, deadline=None)
def test_wear_conservation(accesses):
    """Set-attributed wear equals total data-array writes."""
    from repro.endurance.wear import replay_with_wear

    blocks = [a for a, _ in accesses]
    writes = [w for _, w in accesses]
    wear = replay_with_wear(_stream(blocks, writes), 64 * units.KB)
    assert wear.set_writes.sum() == wear.total_writes
    assert wear.hottest_line_writes <= wear.total_writes
