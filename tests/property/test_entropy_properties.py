"""Property-based tests for entropy and footprint metrics."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.prism.entropy import global_entropy, local_entropy, max_entropy
from repro.prism.footprint import coverage_footprint, unique_footprint

ADDRESSES = arrays(
    dtype=np.uint64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.integers(min_value=0, max_value=1 << 40),
)


@given(addresses=ADDRESSES)
@settings(max_examples=80, deadline=None)
def test_entropy_nonnegative_and_bounded(addresses):
    h = global_entropy(addresses)
    assert 0.0 <= h <= max_entropy(unique_footprint(addresses)) + 1e-9


@given(addresses=ADDRESSES)
@settings(max_examples=80, deadline=None)
def test_local_entropy_never_exceeds_global(addresses):
    assert local_entropy(addresses) <= global_entropy(addresses) + 1e-9


@given(addresses=ADDRESSES, skip=st.integers(min_value=0, max_value=20))
@settings(max_examples=80, deadline=None)
def test_entropy_monotone_in_skip_bits(addresses, skip):
    """Dropping more low bits merges buckets: entropy cannot rise."""
    assert local_entropy(addresses, skip + 4) <= local_entropy(addresses, skip) + 1e-9


@given(addresses=ADDRESSES)
@settings(max_examples=80, deadline=None)
def test_entropy_invariant_under_duplication(addresses):
    """Repeating the whole sample preserves the distribution."""
    doubled = np.concatenate([addresses, addresses])
    assert global_entropy(doubled) == global_entropy(addresses)


@given(addresses=ADDRESSES)
@settings(max_examples=80, deadline=None)
def test_coverage_footprint_bounds(addresses):
    ninety = coverage_footprint(addresses, 0.9)
    assert 1 <= ninety <= unique_footprint(addresses)


@given(addresses=ADDRESSES)
@settings(max_examples=80, deadline=None)
def test_coverage_monotone(addresses):
    assert coverage_footprint(addresses, 0.5) <= coverage_footprint(addresses, 0.9)


@given(addresses=ADDRESSES, shift=st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=60, deadline=None)
def test_entropy_translation_invariant(addresses, shift):
    """Entropy depends on the frequency distribution, not the values."""
    shifted = addresses + np.uint64(shift)
    assert global_entropy(shifted) == global_entropy(addresses)
