"""Property-based tests for checkpoint durability and cache eviction.

The crash model: a run may die at *any byte offset* of its journal.
Whatever prefix survives must recover cleanly, and recovery plus
recomputation of the remainder must reproduce the full run exactly.
"""

import json
import tempfile
from pathlib import Path

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.checkpoint import (
    CHECKPOINT_NAME,
    CheckpointJournal,
    cell_digest,
    result_from_dict,
    result_to_dict,
)
from repro.sim.energy import LLCEnergy
from repro.sim.llc import LLCCounts
from repro.sim.parallel import SweepCell
from repro.sim.results import SimResult
from repro.sim.timing import CoreBreakdown, SystemTiming

FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)
COUNT = st.integers(min_value=0, max_value=10**12)


@st.composite
def sim_results(draw, workload="leela"):
    runtime = draw(FINITE)
    return SimResult(
        workload=workload,
        llc_name=draw(st.sampled_from(["SRAM", "Jan_S", "Kim_S"])),
        configuration="fixed-capacity",
        runtime_s=runtime,
        energy=LLCEnergy(*(draw(FINITE) for _ in range(4))),
        counts=LLCCounts(
            capacity_bytes=draw(COUNT),
            associativity=16,
            read_lookups=draw(COUNT),
            read_hits=draw(COUNT),
            read_misses=draw(COUNT),
            write_accesses=draw(COUNT),
            write_hits=draw(COUNT),
            write_misses=draw(COUNT),
            dirty_evictions=draw(COUNT),
            per_core_read_hits=draw(st.lists(COUNT, min_size=2, max_size=2)),
            per_core_read_misses=draw(st.lists(COUNT, min_size=2, max_size=2)),
            per_core_mlp=draw(st.lists(FINITE, min_size=2, max_size=2)),
        ),
        timing=SystemTiming(
            runtime_s=runtime,
            core_breakdowns=[
                CoreBreakdown(*(draw(FINITE) for _ in range(4)))
                for _ in range(2)
            ],
            dram_latency_s=draw(FINITE),
            dram_utilization=draw(FINITE),
            llc_busy_s=draw(FINITE),
            bound=draw(st.sampled_from(["core", "dram", "llc"])),
        ),
        total_instructions=draw(COUNT),
    )


def _cell(seed):
    return SweepCell(
        workload="leela",
        configuration="fixed-capacity",
        model_names=("SRAM",),
        seed=seed,
        n_accesses=6000,
    )


@given(result=sim_results())
@settings(max_examples=60, deadline=None)
def test_result_serialization_is_exact(result):
    """Journal restore must equal recomputation for *any* finite
    result: floats round-trip bit-exactly through JSON text."""
    via_json = json.loads(json.dumps(result_to_dict(result)))
    assert result_from_dict(via_json) == result


@given(
    results=st.lists(sim_results(), min_size=1, max_size=4),
    offset_fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_crash_at_any_byte_offset_recovers_a_clean_prefix(
    results, offset_fraction
):
    """Truncate the journal at an arbitrary byte: exactly the records
    whose lines survive whole are recovered; recovery + recomputation
    of the rest reproduces the full run."""
    full = {
        cell_digest(_cell(seed)): {"SRAM": result}
        for seed, result in enumerate(results)
    }
    with tempfile.TemporaryDirectory() as tmp:
        journal = CheckpointJournal(tmp)
        for seed, result in enumerate(results):
            journal.record(_cell(seed), {"SRAM": result})
        journal.close()

        path = Path(tmp) / CHECKPOINT_NAME
        blob = path.read_bytes()
        offset = int(len(blob) * offset_fraction)
        path.write_bytes(blob[:offset])

        # A record survives iff its full content (the trailing newline
        # is dispensable) fits inside the truncated prefix.
        surviving = 0
        position = 0
        for line in blob.split(b"\n")[:-1]:
            if position + len(line) <= offset:
                surviving += 1
            position += len(line) + 1
        expected = dict(list(full.items())[:surviving])

        loaded = CheckpointJournal(tmp).load()
        assert loaded == expected  # the whole-line prefix, nothing else

        # "Resume": recompute whatever the crash lost.
        merged = dict(loaded)
        for key, value in full.items():
            if key not in merged:
                merged[key] = value
        assert merged == full


@given(
    corruption=st.binary(min_size=1, max_size=30),
    position_fraction=st.floats(min_value=0.0, max_value=1.0),
    results=st.lists(sim_results(), min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_overwrites_never_yield_wrong_results(
    corruption, position_fraction, results
):
    """Splatter arbitrary bytes anywhere in the journal: every record
    that still loads must be one that was actually written."""
    full = {
        cell_digest(_cell(seed)): {"SRAM": result}
        for seed, result in enumerate(results)
    }
    with tempfile.TemporaryDirectory() as tmp:
        journal = CheckpointJournal(tmp)
        for seed, result in enumerate(results):
            journal.record(_cell(seed), {"SRAM": result})
        journal.close()

        path = Path(tmp) / CHECKPOINT_NAME
        blob = bytearray(path.read_bytes())
        position = int((len(blob) - 1) * position_fraction)
        blob[position : position + len(corruption)] = corruption
        path.write_bytes(bytes(blob))

        loaded = CheckpointJournal(tmp).load()
        for key, value in loaded.items():
            assert key in full
            assert value == full[key]


OPS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11), st.booleans()),
    min_size=1,
    max_size=40,
)


@given(ops=OPS, cap_kb=st.integers(min_value=1, max_value=32))
@settings(max_examples=40, deadline=None)
def test_eviction_never_evicts_live_entries(ops, cap_kb):
    """Whatever the op sequence and however undersized the cap, an
    entry this instance wrote or hit is never its own victim."""
    from repro.sim.replay_cache import ReplayCache

    with tempfile.TemporaryDirectory() as tmp:
        # Pre-existing entries from "another run": fair eviction game.
        other = ReplayCache(root=tmp, enabled=True, max_bytes=None)
        for index in range(6):
            other.put(f"foreign-{index}", "y" * 2048)

        cache = ReplayCache(root=tmp, enabled=True, max_bytes=cap_kb * 1024)
        touched = set()
        for key_index, is_put in ops:
            key = f"mine-{key_index}"
            if is_put:
                cache.put(key, key * 256)
                touched.add(key)
            else:
                if cache.get(key) is not None:
                    touched.add(key)
        survivors = {p.stem for p in Path(tmp).glob("*.pkl")}
        assert touched <= survivors
