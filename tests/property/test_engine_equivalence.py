"""Property tests: every accelerated engine is bit-identical to the
reference.

The fast engine (:mod:`repro.sim.engine`) re-implements the private
hierarchy and LLC replay as flat loops, and the vector engine replays
the whole LLC trace as numpy array rounds; the correctness contract of
both is *exact* event-count equality with the dict-of-caches reference
path on every stream.  These tests drive all engines over randomized
traces — single- and multi-threaded (exercising the directory's
invalidate / downgrade / sharing-writeback paths), with and without the
next-line prefetcher, and through memmap-backed spilled traces —
against deliberately tiny cache geometries so evictions and coherence
conflicts are frequent.
"""

import dataclasses

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import units
from repro.sim.config import ArchitectureConfig, CacheLevelConfig, gainestown
from repro.sim.hierarchy import LLCStream, filter_private
from repro.sim.llc import simulate_llc
from repro.trace.access import BLOCK_BITS
from repro.trace.stream import Trace


def _tiny_arch(n_cores=1, prefetch=False) -> ArchitectureConfig:
    """A deliberately cramped hierarchy: 2-way 256 B L1, 2-way 512 B L2.

    With addresses drawn from a few dozen blocks this evicts and
    invalidates constantly, covering the paths a realistic geometry
    would leave cold at hypothesis-sized trace lengths.
    """
    return dataclasses.replace(
        gainestown(n_cores=n_cores),
        l1d=CacheLevelConfig(256, 2),
        l2=CacheLevelConfig(512, 2),
        l2_next_line_prefetch=prefetch,
    )


def _trace(accesses, n_threads) -> Trace:
    n = len(accesses)
    return Trace(
        addresses=np.array(
            [(a << BLOCK_BITS) | (a % 7) for a, _, _, _ in accesses],
            dtype=np.uint64,
        ),
        writes=np.array([w for _, w, _, _ in accesses], dtype=bool),
        thread_ids=np.array(
            [t % n_threads for _, _, t, _ in accesses], dtype=np.uint16
        ),
        gaps=np.array([g for _, _, _, g in accesses], dtype=np.uint32),
        name="equiv",
    )


ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=47),   # block
        st.booleans(),                            # write
        st.integers(min_value=0, max_value=7),    # thread
        st.integers(min_value=0, max_value=20),   # gap
    ),
    min_size=1,
    max_size=300,
)


def assert_private_equal(fast, ref):
    np.testing.assert_array_equal(fast.stream.blocks, ref.stream.blocks)
    np.testing.assert_array_equal(fast.stream.writes, ref.stream.writes)
    np.testing.assert_array_equal(fast.stream.cores, ref.stream.cores)
    np.testing.assert_array_equal(
        fast.stream.instr_positions, ref.stream.instr_positions
    )
    assert fast.per_core == ref.per_core
    assert fast.directory == ref.directory
    assert fast.n_threads == ref.n_threads


@given(accesses=ACCESSES)
@settings(max_examples=60, deadline=None)
def test_private_filter_single_thread_equivalence(accesses):
    trace = _trace(accesses, n_threads=1)
    arch = _tiny_arch(n_cores=1)
    assert_private_equal(
        filter_private(trace, arch, engine="fast"),
        filter_private(trace, arch, engine="reference"),
    )


@given(accesses=ACCESSES, n_threads=st.integers(min_value=2, max_value=5))
@settings(max_examples=60, deadline=None)
def test_private_filter_coherence_equivalence(accesses, n_threads):
    """Multi-threaded traces: directory fills, invalidations, downgrades
    and coherence writebacks must match event for event."""
    trace = _trace(accesses, n_threads=n_threads)
    arch = _tiny_arch(n_cores=4)
    fast = filter_private(trace, arch, engine="fast")
    ref = filter_private(trace, arch, engine="reference")
    assert_private_equal(fast, ref)


@given(accesses=ACCESSES, n_threads=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_private_filter_prefetch_equivalence(accesses, n_threads):
    """The L2 next-line prefetcher adds fill/eviction traffic on a
    second code path; it must match too."""
    trace = _trace(accesses, n_threads=n_threads)
    arch = _tiny_arch(n_cores=2, prefetch=True)
    assert_private_equal(
        filter_private(trace, arch, engine="fast"),
        filter_private(trace, arch, engine="reference"),
    )


@given(
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=511),
            st.booleans(),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=400,
    ),
    capacity_blocks=st.sampled_from((16, 64, 256)),
)
@settings(max_examples=60, deadline=None)
def test_llc_replay_equivalence(accesses, capacity_blocks):
    stream = LLCStream(
        blocks=np.array([a for a, _, _ in accesses], dtype=np.uint64),
        writes=np.array([w for _, w, _ in accesses], dtype=bool),
        cores=np.array([c for _, _, c in accesses], dtype=np.uint16),
        instr_positions=np.cumsum(
            np.ones(len(accesses), dtype=np.uint64)
        ),
    )
    kwargs = dict(
        capacity_bytes=capacity_blocks * 64,
        associativity=min(16, capacity_blocks),
        block_bytes=64,
        n_cores=4,
    )
    fast = simulate_llc(stream, engine="fast", **kwargs)
    vector = simulate_llc(stream, engine="vector", **kwargs)
    ref = simulate_llc(stream, engine="reference", **kwargs)
    assert fast == ref
    assert vector == ref


@given(
    accesses=ACCESSES,
    n_threads=st.integers(min_value=1, max_value=4),
    prefetch=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_full_path_three_way_equivalence(accesses, n_threads, prefetch):
    """Whole pipeline under each engine: the private filter (coherence
    invalidates, prefetch fills) feeds the LLC replay, and all three
    engines must agree on the final counts."""
    trace = _trace(accesses, n_threads=n_threads)
    arch = _tiny_arch(n_cores=2, prefetch=prefetch)
    kwargs = dict(
        capacity_bytes=16 * 64, associativity=4, block_bytes=64, n_cores=2
    )
    results = {}
    for engine in ("reference", "fast", "vector"):
        private = filter_private(trace, arch, engine=engine)
        results[engine] = simulate_llc(private.stream, engine=engine, **kwargs)
    assert results["fast"] == results["reference"]
    assert results["vector"] == results["reference"]


@given(accesses=ACCESSES, n_threads=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_memmap_trace_equivalence(accesses, n_threads):
    """A spilled, memmap-backed trace must replay exactly like its
    in-memory original under every engine."""
    import tempfile

    trace = _trace(accesses, n_threads=n_threads)
    arch = _tiny_arch(n_cores=2)
    kwargs = dict(
        capacity_bytes=16 * 64, associativity=4, block_bytes=64, n_cores=2
    )
    baseline = filter_private(trace, arch, engine="reference")
    ref_counts = simulate_llc(baseline.stream, engine="reference", **kwargs)
    with tempfile.TemporaryDirectory(prefix="repro-equiv-") as spill_dir:
        mapped = trace.spill(spill_dir).load()
        for engine in ("fast", "vector"):
            private = filter_private(mapped, arch, engine=engine)
            assert_private_equal(private, baseline)
            assert simulate_llc(private.stream, engine=engine, **kwargs) == ref_counts


def test_unknown_engine_rejected():
    import pytest

    from repro.errors import ConfigurationError
    from repro.sim.engine import resolve_engine

    with pytest.raises(ConfigurationError):
        resolve_engine("warp")


def test_engine_env_var_controls_default(monkeypatch):
    from repro.sim.engine import ENGINE_ENV, resolve_engine

    monkeypatch.setenv(ENGINE_ENV, "reference")
    assert resolve_engine() == "reference"
    assert resolve_engine("fast") == "fast"
    monkeypatch.setenv(ENGINE_ENV, "vector")
    assert resolve_engine() == "vector"
    monkeypatch.delenv(ENGINE_ENV)
    assert resolve_engine() == "fast"
