"""Property-based tests for traces and synthetic composition."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.trace.stream import Trace, interleave_threads
from repro.trace.synth import (
    StreamComponent,
    compose_trace,
    pointer_chase_sampler,
    zipf_weights,
)


@given(
    n=st.integers(min_value=1, max_value=2000),
    skew=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_zipf_weights_valid_distribution(n, skew):
    weights = zipf_weights(n, skew)
    assert len(weights) == n
    assert abs(weights.sum() - 1.0) < 1e-9
    assert (weights >= 0).all()
    # Weights are non-increasing in rank.
    assert (np.diff(weights) <= 1e-12).all()


@given(
    n_accesses=st.integers(min_value=1, max_value=2000),
    n_threads=st.integers(min_value=1, max_value=8),
    mean_gap=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    write_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_compose_trace_invariants(n_accesses, n_threads, mean_gap, write_fraction, seed):
    rng = np.random.default_rng(seed)
    components = [
        StreamComponent(
            pointer_chase_sampler(0x1000, 1 << 16),
            weight=1.0,
            write_fraction=write_fraction,
        )
    ]
    trace = compose_trace(
        rng, components, n_accesses, mean_gap, n_threads=n_threads
    )
    assert len(trace) == n_accesses
    assert trace.n_reads + trace.n_writes == n_accesses
    assert trace.n_instructions >= n_accesses
    assert trace.n_threads <= n_threads
    # Thread ids in range.
    assert int(trace.thread_ids.max(initial=0)) < n_threads


@given(
    lengths=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_interleave_preserves_multiset(lengths, seed):
    rng = np.random.default_rng(seed)
    traces = []
    for t, length in enumerate(lengths):
        addresses = rng.integers(0, 1 << 20, size=length).astype(np.uint64)
        traces.append(
            Trace(
                addresses=addresses,
                writes=np.zeros(length, dtype=bool),
                thread_ids=np.zeros(length, dtype=np.uint16),
                gaps=np.zeros(length, dtype=np.uint32),
            )
        )
    merged = interleave_threads(traces)
    assert len(merged) == sum(lengths)
    expected = sorted(int(a) for t in traces for a in t.addresses)
    assert sorted(int(a) for a in merged.addresses) == expected


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=30), min_size=2, max_size=4)
)
@settings(max_examples=40, deadline=None)
def test_interleave_preserves_per_thread_order(lengths):
    traces = []
    for t, length in enumerate(lengths):
        addresses = np.arange(length, dtype=np.uint64) + np.uint64(t << 32)
        traces.append(
            Trace(
                addresses=addresses,
                writes=np.zeros(length, dtype=bool),
                thread_ids=np.zeros(length, dtype=np.uint16),
                gaps=np.zeros(length, dtype=np.uint32),
            )
        )
    merged = interleave_threads(traces)
    for t in range(len(lengths)):
        sub = merged.thread(t).addresses
        assert list(sub) == sorted(sub)
