"""Property-based tests for the set-associative cache."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim.cache import SetAssocCache

ACCESS = st.tuples(st.integers(min_value=0, max_value=255), st.booleans())


@given(accesses=st.lists(ACCESS, max_size=300))
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(accesses):
    cache = SetAssocCache(capacity_bytes=1024, block_bytes=64, associativity=4)
    for block, is_write in accesses:
        cache.access(block, is_write)
    assert cache.occupancy() <= 16  # 1024 / 64


@given(accesses=st.lists(ACCESS, max_size=300))
@settings(max_examples=60, deadline=None)
def test_stats_partition_accesses(accesses):
    cache = SetAssocCache(capacity_bytes=2048, block_bytes=64, associativity=2)
    for block, is_write in accesses:
        cache.access(block, is_write)
    assert cache.stats.hits + cache.stats.misses == len(accesses)


@given(accesses=st.lists(ACCESS, max_size=300))
@settings(max_examples=60, deadline=None)
def test_immediate_reaccess_always_hits(accesses):
    cache = SetAssocCache(capacity_bytes=1024, block_bytes=64, associativity=4)
    for block, is_write in accesses:
        cache.access(block, is_write)
        assert cache.access(block, False).hit


@given(accesses=st.lists(ACCESS, max_size=400))
@settings(max_examples=60, deadline=None)
def test_writebacks_bounded_by_writes(accesses):
    """A dirty eviction requires a prior write: writebacks <= writes."""
    cache = SetAssocCache(capacity_bytes=512, block_bytes=64, associativity=2)
    n_writes = 0
    for block, is_write in accesses:
        n_writes += bool(is_write)
        cache.access(block, is_write)
    assert cache.stats.writebacks <= n_writes


@given(
    accesses=st.lists(ACCESS, min_size=1, max_size=200),
    capacity_blocks=st.sampled_from([4, 8, 16, 32]),
)
@settings(max_examples=60, deadline=None)
def test_larger_cache_never_more_misses(accesses, capacity_blocks):
    """LRU is a stack algorithm: misses are monotone in capacity when
    associativity grows with it (fully-associative inclusion)."""
    small = SetAssocCache(capacity_blocks * 64, 64, capacity_blocks)
    large = SetAssocCache(capacity_blocks * 2 * 64, 64, capacity_blocks * 2)
    for block, is_write in accesses:
        small.access(block, is_write)
        large.access(block, is_write)
    assert large.stats.misses <= small.stats.misses


@given(accesses=st.lists(ACCESS, max_size=300))
@settings(max_examples=40, deadline=None)
def test_invalidate_then_access_misses(accesses):
    cache = SetAssocCache(1024, 64, 4)
    for block, is_write in accesses:
        cache.access(block, is_write)
    for block, _ in accesses[-5:]:
        cache.invalidate(block)
        assert not cache.contains(block)
