"""Property-based tests for the input-validation firewall.

The adversarial contract under test:

- both trace formats round-trip arbitrary in-range traces exactly,
  including huge addresses and unicode names;
- arbitrary text never escapes :func:`parse_text` as anything but a
  :class:`~repro.errors.TraceError` (or a parsed trace);
- an npz truncated at *any* byte offset fails as a structured
  :class:`TraceError`, never a raw zipfile/numpy exception;
- the output guards reject NaN/Inf injected into any guarded field of
  a real simulation result.
"""

import dataclasses
import io
import tempfile
from functools import lru_cache
from pathlib import Path

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import PlausibilityError, ReproError, TraceError
from repro.trace.io import (
    MAX_ADDRESS,
    MAX_GAP,
    MAX_THREAD_ID,
    dump_text,
    load_npz,
    parse_text,
    save_npz,
)
from repro.trace.stream import Trace

ROW = st.tuples(
    st.integers(min_value=0, max_value=MAX_ADDRESS),
    st.booleans(),
    st.integers(min_value=0, max_value=MAX_THREAD_ID),
    st.integers(min_value=0, max_value=MAX_GAP),
)

NAMES = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"), blacklist_characters="\\/"
    ),
    max_size=20,
)


def _trace_from_rows(rows, name):
    addresses, writes, threads, gaps = (
        zip(*rows) if rows else ((), (), (), ())
    )
    return Trace(
        addresses=np.array(addresses, dtype=np.uint64),
        writes=np.array(writes, dtype=bool),
        thread_ids=np.array(threads, dtype=np.uint16),
        gaps=np.array(gaps, dtype=np.uint32),
        name=name,
    )


def _assert_traces_equal(left, right):
    assert np.array_equal(left.addresses, right.addresses)
    assert np.array_equal(left.writes, right.writes)
    assert np.array_equal(left.thread_ids, right.thread_ids)
    assert np.array_equal(left.gaps, right.gaps)


@given(rows=st.lists(ROW, max_size=50), name=NAMES)
@settings(max_examples=50, deadline=None)
def test_text_round_trip(rows, name):
    trace = _trace_from_rows(rows, name)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.txt"
        dump_text(trace, path)
        loaded = parse_text(path, name=name)
    _assert_traces_equal(trace, loaded)
    assert loaded.name == name


@given(rows=st.lists(ROW, max_size=50), name=NAMES)
@settings(max_examples=50, deadline=None)
def test_npz_round_trip(rows, name):
    trace = _trace_from_rows(rows, name)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
    _assert_traces_equal(trace, loaded)
    assert loaded.name == name


@given(text=st.text(max_size=300))
@settings(max_examples=100, deadline=None)
def test_arbitrary_text_never_escapes_the_firewall(text):
    """parse_text either parses or raises TraceError — no bare
    ValueError/OverflowError from the int conversions, no numpy cast
    surprises (a StringIO source sidesteps path interpretation)."""
    try:
        trace = parse_text(io.StringIO(text), name="fuzz")
    except TraceError:
        return
    # Whatever parsed must satisfy the column invariants.
    assert trace.addresses.dtype == np.uint64
    if len(trace):
        assert int(trace.thread_ids.max()) <= MAX_THREAD_ID
        assert int(trace.gaps.max()) <= MAX_GAP


@given(text=st.text(max_size=300))
@settings(max_examples=50, deadline=None)
def test_lenient_mode_never_raises_on_text(text):
    trace = parse_text(io.StringIO(text), name="fuzz", policy="lenient")
    assert trace.addresses.dtype == np.uint64


@lru_cache(maxsize=1)
def _npz_bytes():
    rng = np.random.default_rng(7)
    trace = Trace(
        addresses=rng.integers(0, 2**40, 200, dtype=np.uint64),
        writes=rng.random(200) < 0.3,
        thread_ids=rng.integers(0, 4, 200, dtype=np.uint16),
        gaps=rng.integers(0, 50, 200, dtype=np.uint32),
        name="golden",
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.npz"
        save_npz(trace, path)
        return path.read_bytes()


@given(fraction=st.floats(min_value=0.0, max_value=0.999))
@settings(max_examples=60, deadline=None)
def test_truncated_npz_is_structured_error(fraction):
    whole = _npz_bytes()
    clipped = whole[: int(len(whole) * fraction)]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "clipped.npz"
        path.write_bytes(clipped)
        with pytest.raises(TraceError):
            load_npz(path)


@given(
    corrupt_at=st.integers(min_value=0, max_value=199),
    flip=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=30, deadline=None)
def test_bitflipped_npz_never_escapes_unstructured(corrupt_at, flip):
    """A corrupted archive either still loads as a valid trace or fails
    as a ReproError — nothing else."""
    whole = bytearray(_npz_bytes())
    whole[corrupt_at % len(whole)] ^= flip
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flipped.npz"
        path.write_bytes(bytes(whole))
        try:
            trace = load_npz(path)
        except ReproError:
            return
        assert len(trace) == 200


# -- output-guard properties -------------------------------------------------

@lru_cache(maxsize=1)
def _real_result():
    from repro.nvsim.published import published_model
    from repro.sim.system import SimulationSession
    from repro.workloads.generators import generate_trace

    trace = generate_trace("leela", n_accesses=8000)
    return SimulationSession(trace).run(published_model("Xue_S"))


BAD_FLOATS = st.sampled_from(
    [float("nan"), float("inf"), float("-inf"), -1.0]
)

ENERGY_FIELDS = (
    "hit_energy_j", "miss_energy_j", "write_energy_j", "leakage_energy_j"
)


@given(bad=BAD_FLOATS)
@settings(max_examples=20, deadline=None)
def test_guard_rejects_injected_bad_runtime(bad):
    from repro.validate.guard import guard_result

    broken = dataclasses.replace(_real_result(), runtime_s=bad)
    with pytest.raises(PlausibilityError) as excinfo:
        guard_result(broken, policy="strict")
    assert excinfo.value.field == "runtime_s"


@given(field=st.sampled_from(ENERGY_FIELDS), bad=BAD_FLOATS)
@settings(max_examples=40, deadline=None)
def test_guard_rejects_injected_bad_energy(field, bad):
    from repro.validate.guard import guard_result

    result = _real_result()
    broken = dataclasses.replace(
        result, energy=dataclasses.replace(result.energy, **{field: bad})
    )
    with pytest.raises(PlausibilityError) as excinfo:
        guard_result(broken, policy="strict")
    assert excinfo.value.field == f"energy.{field}"


MODEL_FLOAT_FIELDS = (
    "tag_latency_s", "read_latency_s", "set_latency_s", "reset_latency_s",
    "hit_energy_j", "miss_energy_j", "write_energy_j", "leakage_w",
    "area_mm2",
)


@given(
    field=st.sampled_from(MODEL_FLOAT_FIELDS),
    bad=st.sampled_from([float("nan"), float("inf")]),
)
@settings(max_examples=40, deadline=None)
def test_guard_rejects_injected_bad_model_field(field, bad):
    from repro.nvsim.published import published_model
    from repro.validate.guard import guard_model

    broken = dataclasses.replace(published_model("Xue_S"), **{field: bad})
    with pytest.raises(PlausibilityError) as excinfo:
        guard_model(broken, policy="strict")
    assert excinfo.value.field == field
