"""Property-based tests for the correlation utilities."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import assume, given, settings
from hypothesis.extra.numpy import arrays

from repro.correlate.linear import pearson

SAMPLES = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=40),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@given(x=SAMPLES)
@settings(max_examples=80, deadline=None)
def test_self_correlation_is_one_or_zero(x):
    r = pearson(x, x)
    if np.ptp(x) == 0:
        assert r == 0.0  # constant: degenerate by definition
    else:
        assert r == 1.0 or abs(r - 1.0) < 1e-9


@given(x=SAMPLES, a=st.floats(min_value=0.01, max_value=100), b=st.floats(-100, 100))
@settings(max_examples=80, deadline=None)
def test_affine_invariance(x, a, b):
    assume(np.ptp(x) > 1e-6)
    assert pearson(x, a * x + b) > 0.999


@given(x=SAMPLES, a=st.floats(min_value=0.01, max_value=100))
@settings(max_examples=80, deadline=None)
def test_negation_flips_sign(x, a):
    assume(np.ptp(x) > 1e-6)
    assert pearson(x, -a * x) < -0.999


@given(x=SAMPLES)
@settings(max_examples=80, deadline=None)
def test_bounded(x):
    rng = np.random.default_rng(int(abs(x[0])) % (2**31))
    y = rng.normal(size=len(x))
    r = pearson(x, y)
    assert -1.0 <= r <= 1.0
