"""Summary rendering + the observability CLI surface, end to end."""

import json

import pytest

from repro.obs.manifest import MANIFEST_NAME, METRICS_NAME, build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_summary
from repro.sim.replay_cache import CACHE_DIR_ENV, reset_default_cache


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the replay cache at a private directory for CLI runs."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
    reset_default_cache()
    yield cache_dir
    monkeypatch.delenv(CACHE_DIR_ENV)
    reset_default_cache()


class TestRenderSummary:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter_add("replay_cache.hits", 3)
        registry.counter_add("replay_cache.misses", 1)
        registry.counter_add("sim.engine.fast.llc_replays", 4)
        registry.counter_add("sim.llc.read_lookups", 1000)
        registry.counter_add("sim.llc.read_hits", 250)
        registry.timer_record("parallel.worker.1234.cell", 0.05)
        registry.gauge_set("nvsim.fixed_area.capacity_mb.Kang", 8.0)
        with registry.span("experiment.table5"):
            pass
        return registry.snapshot()

    def test_headline_rates(self):
        text = render_summary(self._snapshot())
        assert "replay-cache hit rate: 75.0% (3 hits / 1 misses)" in text
        assert "llc replays served by accelerated engines: 100.0%" in text
        assert "4 fast" in text
        assert "aggregate LLC demand hit rate: 25.0%" in text

    def test_sections_present(self):
        text = render_summary(self._snapshot())
        assert "per-worker cell timings:" in text
        assert "1234" in text
        assert "experiment.table5" in text
        assert "nvsim.fixed_area.capacity_mb.Kang" in text

    def test_manifest_header(self):
        manifest = build_manifest({"scale": 0.5, "jobs": 2})
        text = render_summary(self._snapshot(), manifest)
        assert "config digest: " + manifest["config_digest"] in text
        assert "scale=0.5" in text

    def test_empty_snapshot_renders(self):
        assert "no metrics recorded" in render_summary(
            MetricsRegistry().snapshot()
        )


class TestExperimentsCliMetrics:
    """``repro-experiments --metrics`` writes run files; ``metrics-summary``
    renders them — the acceptance path of the obs subsystem."""

    def _run(self, tmp_path, extra=()):
        from repro.experiments import runner

        report = tmp_path / "results" / "report.md"
        report.parent.mkdir()
        argv = [
            "--scale", "0.05", "--only", "table5",
            "--write", str(report), "--metrics", *extra,
        ]
        assert runner.main(argv) == 0
        return report.parent

    def test_metrics_run_writes_manifest_beside_report(
        self, tmp_path, isolated_cache, capsys
    ):
        out_dir = self._run(tmp_path)
        assert (out_dir / MANIFEST_NAME).is_file()
        assert (out_dir / METRICS_NAME).is_file()
        manifest = json.loads((out_dir / MANIFEST_NAME).read_text())
        assert manifest["settings"]["only"] == "table5"
        assert manifest["settings"]["scale"] == 0.05
        snapshot = json.loads((out_dir / METRICS_NAME).read_text())
        assert snapshot["counters"]["sim.private.accesses"] > 0
        assert snapshot["counters"]["sim.llc.accesses"] > 0
        assert any(s["name"] == "experiment.table5" for s in snapshot["spans"])
        stdout = capsys.readouterr().out
        assert "run manifest written to" in stdout

    def test_metrics_summary_renders_saved_run(
        self, tmp_path, isolated_cache, capsys
    ):
        from repro.experiments import runner

        out_dir = self._run(tmp_path)
        capsys.readouterr()  # drop the run's own output
        assert runner.main(["metrics-summary", str(out_dir)]) == 0
        text = capsys.readouterr().out
        assert "replay-cache hit rate:" in text
        assert "experiment.table5" in text
        assert "config digest:" in text

    def test_trace_file_streams_spans(self, tmp_path, isolated_cache, capsys):
        trace_path = tmp_path / "spans.jsonl"
        self._run(tmp_path, extra=["--trace-file", str(trace_path)])
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert any(r["name"] == "experiment.table5" for r in records)
        assert all({"name", "path", "elapsed_s", "pid"} <= set(r) for r in records)

    def test_metrics_summary_missing_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.experiments import runner

        assert runner.main(["metrics-summary", str(tmp_path / "nowhere")]) == 1
        err = capsys.readouterr().err
        assert "error[" in err
        assert "Traceback" not in err

    def test_metrics_off_leaves_no_run_files(self, tmp_path, isolated_cache, capsys):
        from repro.experiments import runner

        report = tmp_path / "report.md"
        assert runner.main(
            ["--scale", "0.05", "--only", "table2", "--write", str(report)]
        ) == 0
        assert report.is_file()
        assert not (tmp_path / MANIFEST_NAME).exists()
        assert not (tmp_path / METRICS_NAME).exists()


class TestTaskCliMetrics:
    def test_repro_cli_metrics_prints_summary_to_stderr(self, capsys):
        from repro import cli

        assert cli.main(
            ["--metrics", "simulate", "--workload", "leela", "--accesses", "6000"]
        ) == 0
        captured = capsys.readouterr()
        assert "speedup" in captured.out
        assert "counters:" in captured.err
        assert "sim.llc.accesses" in captured.err

    def test_repro_cli_without_metrics_is_silent_on_stderr(self, capsys):
        from repro import cli

        assert cli.main(["workloads"]) == 0
        assert capsys.readouterr().err == ""
