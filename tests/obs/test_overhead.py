"""Disabled-mode overhead guard.

The promise the instrumentation makes (module docstring of
:mod:`repro.obs.metrics`) is that with no registry installed, every
hook is a single global load — so the telemetry a replay triggers must
cost well under 2% of that replay.  This suite pins the promise with a
direct measurement: the per-call cost of the disabled helpers, scaled
by a generous over-estimate of calls-per-replay, against the measured
wall time of a real private-filter replay.
"""

import time

from repro.obs import metrics
from repro.sim.config import gainestown
from repro.sim.hierarchy import filter_private

#: Calls-per-replay upper bound.  A private replay actually makes ~12
#: instrumentation calls (one span + a dozen counters at the batch
#: boundary); 100 leaves an order of magnitude of slack.
CALLS_PER_REPLAY = 100

#: Loop length for timing the no-op helpers.
N_CALLS = 2_000


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_hooks_cost_under_two_percent_of_a_replay(leela_trace):
    # filter_private replays directly (the disk cache wraps it one layer
    # up, in SimulationSession), so this times real simulation work.
    assert not metrics.enabled()

    arch = gainestown()
    filter_private(leela_trace, arch)  # warm imports/JIT-free caches
    replay_s = _best_of(3, lambda: filter_private(leela_trace, arch))

    def noop_storm():
        add = metrics.counter_add
        gauge = metrics.gauge_set
        timer = metrics.timer_record
        span = metrics.span
        for _ in range(N_CALLS):
            add("x")
            gauge("x", 1.0)
            timer("x", 0.1)
            with span("x"):
                pass

    storm_s = _best_of(5, noop_storm)
    per_call_s = storm_s / (N_CALLS * 4)
    overhead_per_replay_s = per_call_s * CALLS_PER_REPLAY

    assert overhead_per_replay_s < 0.02 * replay_s, (
        f"disabled instrumentation costs {overhead_per_replay_s * 1e6:.1f}us "
        f"per replay ({CALLS_PER_REPLAY} calls at {per_call_s * 1e9:.0f}ns) "
        f"vs replay time {replay_s * 1e3:.1f}ms"
    )


def test_disabled_span_allocates_nothing():
    """The disabled span path must hand back the shared singleton."""
    first = metrics.span("a")
    second = metrics.span("b")
    assert first is second is metrics._NULL_SPAN
