"""Tests for the metrics registry (:mod:`repro.obs.metrics`)."""

import json
import pickle

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, scoped_registry
from repro.sim.parallel import SweepCell, run_cells


def _cell(**overrides):
    base = dict(
        workload="leela",
        configuration="fixed-capacity",
        model_names=("SRAM", "Jan_S"),
        seed=7,
        n_accesses=6000,
        n_threads=None,
        arch=None,
    )
    base.update(overrides)
    return SweepCell(**base)


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.counter_add("events")
        registry.counter_add("events", 4)
        assert registry.counters["events"] == 5

    def test_gauges_take_latest_value(self):
        registry = MetricsRegistry()
        registry.gauge_set("capacity_mb", 2.0)
        registry.gauge_set("capacity_mb", 8.0)
        assert registry.gauges["capacity_mb"] == 8.0

    def test_timer_statistics(self):
        registry = MetricsRegistry()
        for elapsed in (0.010, 0.030, 0.020):
            registry.timer_record("cell", elapsed)
        stats = registry.timers["cell"]
        assert stats.count == 3
        assert stats.min_s == 0.010
        assert stats.max_s == 0.030
        assert abs(stats.mean_s - 0.020) < 1e-12

    def test_timer_buckets_are_log2_ms(self):
        registry = MetricsRegistry()
        registry.timer_record("t", 0.0005)  # 0.5 ms -> bucket 0
        registry.timer_record("t", 0.003)   # 3 ms   -> bucket 2
        assert registry.timers["t"].buckets == {0: 1, 2: 1}

    def test_snapshot_is_json_and_pickle_ready(self):
        registry = MetricsRegistry()
        registry.counter_add("a")
        registry.gauge_set("g", 1.5)
        registry.timer_record("t", 0.01)
        with registry.span("s"):
            pass
        snap = registry.snapshot()
        assert snap["schema"] == metrics.SNAPSHOT_SCHEMA
        assert json.loads(json.dumps(snap)) == snap
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestSpans:
    def test_nesting_records_paths(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        paths = [record["path"] for record in registry.spans]
        assert paths == ["outer/inner", "outer"]  # completion order
        assert [r["name"] for r in registry.spans] == ["inner", "outer"]

    def test_sibling_after_nested_is_top_level(self):
        registry = MetricsRegistry()
        with registry.span("a"):
            with registry.span("b"):
                pass
        with registry.span("c"):
            pass
        assert registry.spans[-1]["path"] == "c"

    def test_spans_feed_timers_under_plain_name(self):
        registry = MetricsRegistry()
        with registry.span("stage"):
            with registry.span("stage"):
                pass
        assert registry.timers["stage"].count == 2

    def test_max_spans_cap_counts_drops(self):
        registry = MetricsRegistry(max_spans=2)
        for _ in range(5):
            with registry.span("s"):
                pass
        assert len(registry.spans) == 2
        assert registry.counters["obs.spans_dropped"] == 3
        assert registry.timers["s"].count == 5  # timers keep aggregating

    def test_trace_file_gets_one_json_line_per_span(self, tmp_path):
        trace_path = tmp_path / "spans.jsonl"
        registry = MetricsRegistry(trace_path=str(trace_path))
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        registry.close()
        records = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert [r["path"] for r in records] == ["outer/inner", "outer"]
        assert all(r["pid"] == registry.pid for r in records)


class TestModuleHelpers:
    def test_disabled_helpers_are_silent_no_ops(self):
        assert not metrics.enabled()
        metrics.counter_add("x")
        metrics.gauge_set("x", 1.0)
        metrics.timer_record("x", 0.1)
        with metrics.span("x"):
            pass
        metrics.merge_snapshot({"counters": {"x": 1}})
        assert metrics.get_registry() is None

    def test_disabled_span_is_a_shared_singleton(self):
        assert metrics.span("a") is metrics.span("b")

    def test_enable_routes_helpers_to_registry(self):
        registry = metrics.enable()
        metrics.counter_add("hit", 2)
        with metrics.span("stage"):
            pass
        assert registry.counters["hit"] == 2
        assert registry.timers["stage"].count == 1
        metrics.disable()
        assert not metrics.enabled()

    def test_scoped_registry_restores_previous(self):
        outer = metrics.enable()
        with scoped_registry() as inner:
            metrics.counter_add("seen")
            assert metrics.get_registry() is inner
        assert metrics.get_registry() is outer
        assert "seen" in inner.counters
        assert "seen" not in outer.counters

    def test_env_switch_values(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv(metrics.METRICS_ENV, value)
            assert metrics.metrics_env_enabled() is expected
        monkeypatch.delenv(metrics.METRICS_ENV)
        assert metrics.metrics_env_enabled() is False


class TestMergeSnapshot:
    def test_merge_semantics(self):
        worker = MetricsRegistry()
        worker.counter_add("cells", 3)
        worker.gauge_set("last", 2.0)
        worker.timer_record("cell", 0.040)
        with worker.span("cell_span"):
            pass

        parent = MetricsRegistry()
        parent.counter_add("cells", 1)
        parent.gauge_set("last", 1.0)
        parent.timer_record("cell", 0.010)

        # Simulate the pool boundary: the snapshot crosses as a pickle.
        parent.merge_snapshot(pickle.loads(pickle.dumps(worker.snapshot())))

        assert parent.counters["cells"] == 4          # counters add
        assert parent.gauges["last"] == 2.0           # last write wins
        stats = parent.timers["cell"]
        assert stats.count == 2
        assert stats.min_s == 0.010
        assert stats.max_s == 0.040
        assert any(r["name"] == "cell_span" for r in parent.spans)

    def test_merge_respects_span_cap(self):
        worker = MetricsRegistry()
        for _ in range(5):
            with worker.span("s"):
                pass
        parent = MetricsRegistry(max_spans=2)
        parent.merge_snapshot(worker.snapshot())
        assert len(parent.spans) == 2
        assert parent.counters["obs.spans_dropped"] == 3


class TestProcessBoundary:
    def test_run_cells_merges_worker_metrics(self):
        """The full pool path: workers collect, parent ends up with the
        aggregate — the contract ``--jobs N --metrics`` relies on."""
        cells = [_cell(seed=1), _cell(seed=2), _cell(seed=3)]
        registry = metrics.enable()
        try:
            results = run_cells(cells, jobs=2)
        finally:
            metrics.disable()

        assert len(results) == 3
        assert registry.counters["parallel.cells"] == 3
        worker_timers = {
            name: stats
            for name, stats in registry.timers.items()
            if name.startswith("parallel.worker.")
        }
        assert worker_timers, "per-worker cell timers must cross the pool"
        assert sum(s.count for s in worker_timers.values()) == 3
        # Replay spans recorded inside workers must land in the parent.
        assert any(r["name"] == "sim.llc_replay" for r in registry.spans)

    def test_parallel_results_identical_with_metrics_on(self):
        cells = [_cell(seed=5)]
        plain = run_cells(cells, jobs=1)
        metrics.enable()
        try:
            observed = run_cells(cells, jobs=2)
        finally:
            metrics.disable()
        assert plain[0]["Jan_S"].counts == observed[0]["Jan_S"].counts
        assert plain[0]["Jan_S"].runtime_s == observed[0]["Jan_S"].runtime_s
