"""Fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def clean_metrics_state(monkeypatch):
    """Every obs test starts with no registry installed and no ambient
    observability environment (a developer's REPRO_METRICS must not
    leak into CLI-default assertions)."""
    monkeypatch.delenv(obs_metrics.METRICS_ENV, raising=False)
    monkeypatch.delenv(obs_metrics.TRACE_FILE_ENV, raising=False)
    obs_metrics.disable()
    yield
    obs_metrics.disable()
