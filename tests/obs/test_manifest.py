"""Tests for run manifests (:mod:`repro.obs.manifest`)."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    METRICS_NAME,
    REQUIRED_MANIFEST_KEYS,
    build_manifest,
    config_digest,
    load_manifest,
    load_metrics,
    load_run,
    stage_timings,
    validate_manifest,
    write_run_files,
)
from repro.obs.metrics import MetricsRegistry


def _settings():
    return {"scale": 0.5, "seed": 1, "engine": "fast", "jobs": 2}


class TestConfigDigest:
    def test_key_order_invariant(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_non_json_values_stringified(self):
        from pathlib import Path

        assert config_digest({"p": Path("/tmp/x")}) == config_digest({"p": "/tmp/x"})


class TestStageTimings:
    def test_aggregates_top_level_spans_by_name(self):
        registry = MetricsRegistry()
        with registry.span("replay"):
            with registry.span("nested"):
                pass
        with registry.span("replay"):
            pass
        stages = stage_timings(registry.snapshot())
        assert [s["name"] for s in stages] == ["replay"]  # nested excluded
        (replay,) = stages
        assert replay["count"] == 2
        assert replay["total_s"] >= replay["max_s"] > 0.0


class TestManifestShape:
    def test_build_carries_required_keys(self):
        manifest = build_manifest(_settings())
        for key in REQUIRED_MANIFEST_KEYS:
            assert key in manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["config_digest"] == config_digest(_settings())

    def test_validate_rejects_missing_keys(self):
        manifest = build_manifest(_settings())
        del manifest["config_digest"]
        with pytest.raises(ReproError, match="missing keys: config_digest"):
            validate_manifest(manifest)

    def test_validate_rejects_unknown_schema(self):
        manifest = build_manifest(_settings())
        manifest["schema"] = 999
        with pytest.raises(ReproError, match="schema 999"):
            validate_manifest(manifest)

    def test_validate_rejects_non_object(self):
        with pytest.raises(ReproError):
            validate_manifest(["not", "a", "manifest"])


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter_add("replay_cache.hits", 7)
        with registry.span("experiment.table5"):
            pass
        out = tmp_path / "results"
        manifest_path, metrics_path = write_run_files(out, _settings(), registry)

        assert manifest_path == out / MANIFEST_NAME
        assert metrics_path == out / METRICS_NAME
        manifest = load_manifest(out)
        assert manifest["settings"]["scale"] == 0.5
        assert [s["name"] for s in manifest["stages"]] == ["experiment.table5"]
        metrics = load_metrics(out)
        assert metrics["counters"]["replay_cache.hits"] == 7

    def test_load_run_accepts_dir_or_metrics_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter_add("c", 1)
        write_run_files(tmp_path, _settings(), registry)
        by_dir = load_run(tmp_path)
        by_file = load_run(tmp_path / METRICS_NAME)
        assert by_dir[0] == by_file[0]
        assert by_dir[1] is not None and by_dir[1] == by_file[1]

    def test_load_run_survives_missing_manifest(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter_add("c", 1)
        write_run_files(tmp_path, _settings(), registry)
        (tmp_path / MANIFEST_NAME).unlink()
        metrics, manifest = load_run(tmp_path)
        assert metrics["counters"]["c"] == 1
        assert manifest is None

    def test_load_errors_are_repro_errors(self, tmp_path):
        with pytest.raises(ReproError, match="no metrics file"):
            load_metrics(tmp_path)
        with pytest.raises(ReproError, match="no manifest"):
            load_manifest(tmp_path)
        (tmp_path / METRICS_NAME).write_text("{not json")
        with pytest.raises(ReproError, match="unreadable"):
            load_metrics(tmp_path)
        (tmp_path / METRICS_NAME).write_text(json.dumps({"no": "counters"}))
        with pytest.raises(ReproError, match="not a metrics snapshot"):
            load_metrics(tmp_path)
