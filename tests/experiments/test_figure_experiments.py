"""Tests for the Figure 1/2/4 and core-sweep experiment drivers.

These are the headline reproduction checks: who wins, by what regime,
and where the correlations land — the "shape" DESIGN.md commits to.
"""

import pytest

from repro.experiments import coresweep, figure1, figure2, figure4
from repro.workloads.registry import ai_benchmarks

SUBSET = ("bzip2", "cg", "gobmk", "deepsjeng", "leela", "exchange2")


@pytest.fixture(scope="module")
def fig1(full_context):
    return figure1.run(full_context, workloads=SUBSET)


@pytest.fixture(scope="module")
def fig2(full_context):
    return figure2.run(full_context, workloads=SUBSET)


class TestFigure1FixedCapacity:
    def test_all_models_present(self, fig1):
        assert set(fig1.results) == set(figure1.MODEL_ORDER)

    def test_speedup_near_unity(self, fig1):
        # Paper: fixed-capacity speedups within roughly -4%..+4%.
        for llc, per_workload in fig1.results.items():
            for workload, norm in per_workload.items():
                assert 0.9 < norm.speedup < 1.06, (llc, workload, norm.speedup)

    def test_nvm_energy_order_of_magnitude_savings(self, fig1):
        # Paper: STTRAM/RRAM LLC energy up to ~10x below SRAM.
        for llc in ("Jan_S", "Xue_S", "Chung_S", "Umeki_S", "Hayakawa_R", "Zhang_R"):
            for workload, norm in fig1.results[llc].items():
                assert norm.energy_ratio < 0.5, (llc, workload)

    def test_kang_oh_worst_on_ai(self, fig1):
        # Paper: Kang_P and Oh_P exhibit worst-case energy, several x
        # SRAM, on the write-heavy AI workloads.
        for workload in ("deepsjeng",):
            kang = fig1.results["Kang_P"][workload].energy_ratio
            oh = fig1.results["Oh_P"][workload].energy_ratio
            assert kang > 1.5
            assert oh > 1.0
            assert kang == max(
                fig1.results[llc][workload].energy_ratio
                for llc in figure1.MODEL_ORDER
            )

    def test_ed2p_tracks_energy_for_near_unity_speedup(self, fig1):
        for llc in figure1.MODEL_ORDER:
            for workload, norm in fig1.results[llc].items():
                assert norm.ed2p_ratio == pytest.approx(
                    norm.energy_ratio / norm.speedup**2, rel=1e-6
                )

    def test_geometric_mean_summary(self, fig1):
        geomean = fig1.geometric_mean("Jan_S", "energy_ratio", list(SUBSET))
        assert 0.0 < geomean < 0.3


class TestFigure2FixedArea:
    def test_configuration_label(self, fig2):
        assert fig2.configuration == "fixed-area"
        for per_workload in fig2.results.values():
            for norm in per_workload.values():
                assert norm.configuration == "fixed-area"

    def test_capacity_buys_speedup_on_starved_workloads(self, fig2):
        # Paper: dense NVMs win >10% on capacity-starved workloads.
        for llc in ("Xue_S", "Hayakawa_R", "Close_P"):
            assert fig2.results[llc]["bzip2"].speedup > 1.1, llc
            assert fig2.results[llc]["deepsjeng"].speedup > 1.1, llc

    def test_jan_small_capacity_never_wins_big(self, fig2):
        # Jan_S drops to 1 MB in fixed-area: it cannot gain capacity
        # speedups, matching the paper's >10% losses for Jan_S.
        for workload, norm in fig2.results["Jan_S"].items():
            assert norm.speedup < 1.02, (workload, norm.speedup)

    def test_fixed_area_beats_fixed_capacity_for_dense_nvm(self, fig1, fig2):
        # The capacity effect: Xue_S (8 MB) speeds up on bzip2 relative
        # to its own fixed-capacity run.
        assert (
            fig2.results["Xue_S"]["bzip2"].speedup
            > fig1.results["Xue_S"]["bzip2"].speedup
        )

    def test_zhang_slow_reads_hurt_hit_heavy_workloads(self, fig2):
        # Zhang_R reads at 9.5 ns in fixed-area: workloads that hit a
        # lot (leela/exchange2 pools) lose performance (paper's gobmk
        # -40% analogue).
        assert fig2.results["Zhang_R"]["exchange2"].speedup < 1.0


class TestFigure4Correlations:
    @pytest.fixture(scope="class")
    def result(self, full_context):
        return figure4.run(full_context)

    def test_six_ai_panels(self, result):
        assert len(result.ai_reports) == 6
        configs = {(r.llc_name, r.configuration) for r in result.ai_reports}
        assert len(configs) == 6

    def test_ai_energy_tracks_write_behaviour(self, result):
        # The paper's headline: for AI, energy ~99% correlated with
        # write entropy and write footprints.
        for configuration in ("fixed-capacity", "fixed-area"):
            report = result.report("Jan_S", configuration)
            assert abs(report.correlation("write_local_entropy", "energy")) > 0.9
            assert abs(report.correlation("write_global_entropy", "energy")) > 0.9
            assert abs(report.correlation("footprint90_writes", "energy")) > 0.9

    def test_ai_totals_negligible_for_energy(self, result):
        # ... while total reads/writes decorrelate.
        for configuration in ("fixed-capacity", "fixed-area"):
            report = result.report("Jan_S", configuration)
            write_strength = abs(report.correlation("write_local_entropy", "energy"))
            for totals in ("total_reads", "total_writes"):
                assert abs(report.correlation(totals, "energy")) < 0.75
                assert abs(report.correlation(totals, "energy")) < write_strength

    def test_ai_speedup_prefers_write_features_over_totals(self, result):
        report = result.report("Jan_S", "fixed-capacity")
        assert abs(report.correlation("unique_writes", "speedup")) > abs(
            report.correlation("total_reads", "speedup")
        )

    def test_workload_scope(self, result):
        for report in result.ai_reports:
            assert set(report.workloads) == set(ai_benchmarks())
        for report in result.general_reports:
            assert len(report.workloads) == 16

    def test_general_scope_totals_dominate_execution_time(self, result):
        # Paper Section VI: for the general-purpose system, execution
        # time is most highly correlated with total reads and writes.
        from repro.correlate.framework import dominant_feature_group

        for report in result.general_reports:
            assert report.response_names == ("energy", "execution_time")
            assert (
                dominant_feature_group(report, "execution_time") == "totals"
            ), (report.llc_name, report.configuration)

    def test_general_scope_totals_strong_for_energy(self, result):
        # Energy in the general scope correlates strongly with totals
        # (the paper's "read and write footprint is indeed appropriate").
        for report in result.general_reports:
            assert abs(report.correlation("total_reads", "energy")) > 0.5 or \
                abs(report.correlation("total_writes", "energy")) > 0.5


class TestCoreSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return coresweep.run(
            workloads=("mg",), cores=(1, 4, 8), scale=0.6,
            llcs=("Jan_S", "Xue_S", "Hayakawa_R", "SRAM"),
        )

    def test_baseline_present(self, result):
        assert "mg" in result.baselines
        assert result.baselines["mg"].n_cores == 1

    def test_multicore_faster_than_single(self, result):
        # 4 cores with 4x the work of 1 core should still beat it
        # per-unit-work; at equal work they must be faster outright.
        assert result.speedup("mg", 4, "SRAM") > 1.5

    def test_capacity_strain_at_8_cores(self, result):
        # Paper Section V-C: at high core counts the dense NVMs beat the
        # 2 MB SRAM; Jan_S (1 MB) falls behind the dense Hayakawa_R.
        assert (
            result.speedup("mg", 8, "Hayakawa_R")
            > result.speedup("mg", 8, "Jan_S")
        )

    def test_energy_ratio_accessible(self, result):
        ratio = result.energy_ratio("mg", 4, "Jan_S")
        assert 0 < ratio < 1.0

    def test_render(self, result):
        text = coresweep.render(result)
        assert "speedup vs 1-core SRAM" in text
