"""Tests for the sensitivity (robustness) study."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import sensitivity


@pytest.fixture(scope="module")
def result():
    # Reduced scale: the invariants are scale-robust by design (the
    # full-scale run is the bench).
    return sensitivity.run(scale=0.3)


class TestSensitivity:
    def test_default_point_first(self, result):
        assert result.checks[0].label == "default"
        assert result.checks[0].all_hold

    def test_sweep_covers_all_axes(self, result):
        labels = {c.label for c in result.checks}
        assert "base_cpi=0.4" in labels
        assert "llc_hit_exposure=0.8" in labels
        assert "max_mlp=3" in labels
        assert "seed=7" in labels
        # 1 default + 2 off-default per model axis (3 axes) + 2 seeds.
        assert len(result.checks) == 9

    def test_conclusions_robust(self, result):
        # The headline check: every invariant holds at every point.
        assert result.robust, sensitivity.render(result)
        assert result.holding_fraction == 1.0

    def test_render(self, result):
        text = sensitivity.render(result)
        assert "Fig4 contrast" in text
        assert "hold" in text

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            sensitivity.run(scale=0.0)

    def test_runner_registered(self):
        from repro.experiments import runner

        assert "sensitivity" in runner.EXPERIMENTS
