"""Render smoke tests: every experiment's text output is well-formed.

These run at a tiny scale — the numbers are not asserted (the
full-scale shape tests do that), only that each renderer produces the
advertised sections for downstream report assembly.
"""

import pytest

from repro.experiments import (
    coresweep,
    figure1,
    figure2,
    figure4,
    lifetime,
    table5,
    table6,
    techniques_study,
)
from repro.experiments.common import ExperimentContext

WORKLOADS = ("tonto", "leela", "exchange2", "deepsjeng", "cg")


@pytest.fixture(scope="module")
def tiny_context():
    return ExperimentContext(scale=0.05)


class TestRenders:
    def test_figure1_render(self, tiny_context):
        data = figure1.run(tiny_context, workloads=WORKLOADS)
        text = figure1.render(data)
        assert "Figure 1a (single-threaded) — normalized speedup" in text
        assert "Figure 1b (multi-threaded) — normalized ED^2P" in text
        assert "Zhang_R" in text

    def test_figure2_render(self, tiny_context):
        data = figure2.run(tiny_context, workloads=WORKLOADS)
        text = figure2.render(data)
        assert "Figure 2a" in text and "Figure 2b" in text

    def test_figure4_render(self, tiny_context):
        result = figure4.run(tiny_context)
        text = figure4.render(result)
        assert text.count("AI scope") == 6
        assert "Dominant feature families" in text

    def test_table5_render(self, tiny_context):
        text = table5.render(table5.run(tiny_context))
        assert "paper mpki" in text and "bzip2" in text

    def test_table6_render(self, tiny_context):
        text = table6.render(table6.run(tiny_context))
        assert "rank agreement" in text

    def test_coresweep_render(self):
        result = coresweep.run(
            workloads=("cg",), cores=(1, 2), scale=0.05,
            llcs=("Jan_S", "SRAM"),
        )
        text = coresweep.render(result)
        assert "speedup vs 1-core SRAM" in text
        assert "2 cores" in text

    def test_lifetime_render(self, tiny_context):
        study = lifetime.run(tiny_context, workloads=("tonto", "leela"))
        text = lifetime.render(study)
        assert "log10(lifetime)" in text

    def test_techniques_render(self, tiny_context):
        study = techniques_study.run(
            tiny_context, llcs=("Kang_P",), workloads=("tonto",)
        )
        text = techniques_study.render(study)
        assert "write cut" in text
