"""Tests for the Section VII lifetime-study experiment."""

import pytest

from repro.experiments import lifetime
from repro.experiments.common import ExperimentContext

WORKLOADS = ("gobmk", "ft", "leela", "tonto", "mg")


@pytest.fixture(scope="module")
def study():
    context = ExperimentContext(scale=0.3)
    return lifetime.run(context, workloads=WORKLOADS)


class TestLifetimeStudy:
    def test_all_cells_and_workloads(self, study):
        assert set(study.llc_names) == set(lifetime.DEFAULT_LLCS)
        assert set(study.workloads) == set(WORKLOADS)

    def test_rram_outlives_pcram_everywhere(self, study):
        for workload in WORKLOADS:
            assert study.lifetime_years("Zhang_R", workload) > 50 * study.lifetime_years(
                "Kang_P", workload
            )

    def test_pcram_llc_lifetime_impractical(self, study):
        # The well-known conclusion: raw PCRAM cannot survive LLC write
        # rates — lifetimes land at hours, not years.
        for workload in WORKLOADS:
            assert study.lifetime_years("Kang_P", workload) < 0.01

    def test_write_intensity_shortens_life(self, study):
        # ft writes ~half its accesses; tonto is pool-bound: ft's LLC
        # write rate is far higher, so its lifetime is shorter.
        assert study.lifetime_years("Kang_P", "ft") < study.lifetime_years(
            "Kang_P", "tonto"
        )

    def test_correlations_are_negative_for_footprints(self, study):
        # More unique write traffic -> more array writes -> shorter life.
        correlations = study.correlations("Kang_P")
        assert correlations["unique_writes"] < 0

    def test_render(self, study):
        text = lifetime.render(study)
        assert "lifetime" in text.lower()
        assert "Kang_P" in text
