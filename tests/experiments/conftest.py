"""Fixtures for experiment-level tests.

A single full-scale context is shared across the experiment tests; full
traces are needed because the fixed-area capacity effects only appear
once the sweep components complete their passes (see DESIGN.md).  Only
a representative subset of workloads is exercised to keep runtime sane.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext

#: Representative workloads: capacity-sensitive s.t., read-dominated
#: m.t., a PRISM-excluded one, and the three AI benchmarks.
SUBSET = ("bzip2", "cg", "gobmk", "deepsjeng", "leela", "exchange2")


@pytest.fixture(scope="session")
def full_context():
    """Full-scale experiment context shared by all experiment tests."""
    return ExperimentContext(scale=1.0)
