"""Tests for the FigureData container API."""

import pytest

from repro.experiments import figure1
from repro.experiments.common import ExperimentContext

WORKLOADS = ("tonto", "leela")


@pytest.fixture(scope="module")
def data():
    context = ExperimentContext(scale=0.05)
    return figure1.run(context, workloads=WORKLOADS)


class TestFigureData:
    def test_panel_shape(self, data):
        panel = data.panel(WORKLOADS, "speedup")
        assert set(panel) == set(figure1.MODEL_ORDER)
        for series in panel.values():
            assert len(series) == len(WORKLOADS)

    def test_panel_matches_metric(self, data):
        panel = data.panel(WORKLOADS, "energy_ratio")
        assert panel["Jan_S"][0] == data.metric("Jan_S", "tonto", "energy_ratio")

    def test_geometric_mean_between_extremes(self, data):
        values = [
            data.metric("Jan_S", w, "energy_ratio") for w in WORKLOADS
        ]
        geomean = data.geometric_mean("Jan_S", "energy_ratio", WORKLOADS)
        assert min(values) <= geomean <= max(values)

    def test_sram_not_a_series(self, data):
        assert "SRAM" not in data.results

    def test_configuration(self, data):
        assert data.configuration == "fixed-capacity"
