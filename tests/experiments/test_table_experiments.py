"""Tests for the Table II/III/V/VI experiment drivers."""

import pytest

from repro.experiments import table2, table3, table5, table6
from repro.experiments.table6 import extreme_workloads, rank_correlation


class TestTable2:
    def test_all_cells_specifiable(self):
        result = table2.run()
        assert result.all_specifiable

    def test_render_contains_marks(self):
        text = table2.render(table2.run())
        assert "†" in text
        assert "*" in text
        assert "Kang_P" in text

    def test_heuristics_used_somewhere(self):
        result = table2.run()
        derived_total = sum(len(v.derived) for v in result.validations.values())
        assert derived_total >= 10  # Table II has many starred entries


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run()

    def test_both_configurations_published(self, result):
        assert len(result.published["fixed-capacity"]) == 11
        assert len(result.published["fixed-area"]) == 11

    def test_comparison_for_every_cell(self, result):
        names = {c.name for c in result.comparisons}
        assert len(names) == 11
        assert len(result.comparisons) == 22  # two configurations

    def test_generated_within_regime(self, result):
        # Circuit-model fidelity: every fixed-capacity latency/energy
        # within 5x of Table III (the simplified-model bar; most are
        # within 2x — see the rendered ratio table).
        for comparison in result.comparisons:
            if comparison.configuration != "fixed-capacity":
                continue
            for attribute in (
                "read_latency_s",
                "write_latency_s",
                "hit_energy_j",
                "write_energy_j",
            ):
                ratio = comparison.ratio(attribute)
                assert 1 / 5 < ratio < 5, (comparison.name, attribute, ratio)

    def test_render_both_configs(self, result):
        text = table3.render(result, "fixed-area")
        assert "fixed-area" in text
        assert "Zhang_R" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self, full_context):
        return table5.run(full_context)

    def test_all_twenty_measured(self, result):
        assert len(result.rows) == 20

    def test_stress_criterion(self, result):
        # The paper's selection bar (mpki > 5), with the documented
        # exchange2 exemption.
        assert result.stress_criterion_met

    def test_extremes_match_paper(self, result):
        measured = {r.workload: r.measured_mpki for r in result.rows}
        top2 = sorted(measured, key=measured.get, reverse=True)[:2]
        assert set(top2) == {"deepsjeng", "bzip2"}

    def test_magnitudes_within_2x(self, result):
        for row in result.rows:
            if row.workload == "exchange2":
                continue
            assert 0.4 < row.ratio < 2.1, (row.workload, row.ratio)

    def test_render(self, result):
        text = table5.render(result)
        assert "measured mpki" in text


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self, full_context):
        return table6.run(full_context)

    def test_sixteen_workloads(self, result):
        assert len(result.features) == 16
        assert "gamess" not in result.features

    def test_reads_and_writes_split(self, result):
        for features in result.features.values():
            assert features.total_reads > 0
            assert features.total_writes > 0

    def test_totals_extreme_is_exchange2(self, result):
        assert (
            extreme_workloads(result)["total_reads"]
            == ("exchange2", "exchange2")
        )

    def test_footprint_extreme_is_gems(self, result):
        measured_max, paper_max = extreme_workloads(result)["footprint90_writes"]
        assert paper_max == "GemsFDTD"
        assert measured_max == "GemsFDTD"

    def test_rank_agreement_on_structure_columns(self, result):
        # Scaled traces preserve orderings loosely: require positive
        # rank correlation on the columns the analysis relies on.
        for feature in (
            "write_global_entropy",
            "unique_writes",
            "footprint90_writes",
            "total_reads",
        ):
            assert rank_correlation(result, feature) > 0.3, feature

    def test_render(self, result):
        text = table6.render(result)
        assert "H_rg" in text
        assert "spearman" in text.lower()
