"""Tests for the run-everything CLI."""

import io

import pytest

from repro.experiments import runner


class TestRunAll:
    def test_single_experiment(self):
        stream = io.StringIO()
        runner.run_all(scale=0.05, only="table2", stream=stream)
        output = stream.getvalue()
        assert "Table II" in output
        assert "Kang_P" in output

    def test_report_written(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "report.md"
        runner.run_all(
            scale=0.05, only="table3", stream=stream, write_path=str(path)
        )
        report = path.read_text()
        assert report.startswith("# NVM-LLC reproduction")
        assert "Table III" in report
        assert str(path) in stream.getvalue()

    def test_experiment_names_registered(self):
        assert set(runner.EXPERIMENTS) == {
            "table2",
            "table3",
            "table5",
            "table6",
            "figure1",
            "figure2",
            "figure4",
            "coresweep",
            "lifetime",
            "techniques",
            "sensitivity",
        }


class TestMain:
    def test_cli_only_flag(self, capfd):
        # capfd (not capsys): run_all's default stream binds sys.stdout
        # at import time, so capture must happen at the fd level.
        assert runner.main(["--scale", "0.05", "--only", "table2"]) == 0
        assert "Table II" in capfd.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            runner.main(["--only", "table9"])
