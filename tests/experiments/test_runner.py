"""Tests for the run-everything CLI."""

import io

import pytest

from repro.experiments import runner


class TestRunAll:
    def test_single_experiment(self):
        stream = io.StringIO()
        runner.run_all(scale=0.05, only="table2", stream=stream)
        output = stream.getvalue()
        assert "Table II" in output
        assert "Kang_P" in output

    def test_report_written(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "report.md"
        runner.run_all(
            scale=0.05, only="table3", stream=stream, write_path=str(path)
        )
        report = path.read_text()
        assert report.startswith("# NVM-LLC reproduction")
        assert "Table III" in report
        assert str(path) in stream.getvalue()

    def test_experiment_names_registered(self):
        assert set(runner.EXPERIMENTS) == {
            "table2",
            "table3",
            "table5",
            "table6",
            "figure1",
            "figure2",
            "figure4",
            "coresweep",
            "lifetime",
            "techniques",
            "compression",
            "sensitivity",
        }


class TestMain:
    def test_cli_only_flag(self, capfd):
        # capfd (not capsys): run_all's default stream binds sys.stdout
        # at import time, so capture must happen at the fd level.
        assert runner.main(["--scale", "0.05", "--only", "table2"]) == 0
        assert "Table II" in capfd.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            runner.main(["--only", "table9"])


class TestEngineFlag:
    def test_engine_flag_exported_for_workers(self, capfd, monkeypatch, tmp_path):
        """--engine must land in the environment (workers inherit it)
        and be recorded in the report provenance."""
        import os

        from repro.sim.engine import ENGINE_ENV

        monkeypatch.delenv(ENGINE_ENV, raising=False)
        path = tmp_path / "report.md"
        assert (
            runner.main(
                [
                    "--scale", "0.05", "--only", "table2",
                    "--engine", "vector", "--write", str(path),
                ]
            )
            == 0
        )
        assert os.environ[ENGINE_ENV] == "vector"
        capfd.readouterr()
        assert "engine: vector" in path.read_text()

    def test_engine_results_match_default(self, monkeypatch):
        """Same numbers whichever engine the run picks."""
        import io

        from repro.sim.engine import ENGINE_ENV

        monkeypatch.delenv(ENGINE_ENV, raising=False)
        default, vector = io.StringIO(), io.StringIO()
        runner.run_all(scale=0.05, only="table2", stream=default)
        runner.run_all(scale=0.05, only="table2", stream=vector, engine="vector")
        monkeypatch.delenv(ENGINE_ENV, raising=False)

        def table(text):
            return [l for l in text.splitlines() if "engine:" not in l]

        assert table(vector.getvalue()) == table(default.getvalue())

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            runner.main(["--only", "table2", "--engine", "turbo"])
