"""Tests for the techniques-study experiment driver."""

import pytest

from repro.experiments import techniques_study
from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="module")
def study():
    context = ExperimentContext(scale=0.3)
    return techniques_study.run(
        context, llcs=("Kang_P",), workloads=("gobmk", "ft")
    )


class TestTechniquesStudy:
    def test_full_grid(self, study):
        # 2 workloads x 1 llc x 3 techniques.
        assert len(study.evaluations) == 6
        assert len(study.hybrids) == 2

    def test_lookup(self, study):
        evaluation = study.evaluation("gobmk", "Kang_P", "write-bypass")
        assert evaluation.workload == "gobmk"
        with pytest.raises(KeyError):
            study.evaluation("gobmk", "Kang_P", "teleportation")

    def test_ewt_energy_cut_everywhere(self, study):
        for workload in ("gobmk", "ft"):
            e = study.evaluation(workload, "Kang_P", "early-write-termination")
            assert e.energy_reduction > 0.5
            assert e.write_reduction == pytest.approx(0.0, abs=1e-9)

    def test_bypass_trades_dram_for_nvm_writes(self, study):
        e = study.evaluation("gobmk", "Kang_P", "write-bypass")
        assert e.treated.bypassed_writes > 0
        assert e.extra_dram_writes > 0

    def test_render(self, study):
        text = techniques_study.render(study)
        assert "early-write-termination" in text
        assert "Hybrid SRAM/NVM" in text
        assert "migrations" in text
