"""Tests for the experiment-layer infrastructure."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext, TableWriter


class TestExperimentContext:
    def test_trace_cached(self):
        context = ExperimentContext(scale=0.05)
        a = context.trace("leela")
        assert context.trace("leela") is a

    def test_scale_shortens(self):
        short = ExperimentContext(scale=0.05).trace("leela")
        full = ExperimentContext(scale=1.0).trace("leela")
        assert len(short) < len(full)

    def test_scale_floor(self):
        # Even tiny scales keep enough accesses to simulate.
        trace = ExperimentContext(scale=0.001).trace("leela")
        assert len(trace) >= 5000

    def test_invalid_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentContext(scale=0.0)
        with pytest.raises(ExperimentError):
            ExperimentContext(scale=1.5)

    def test_session_cached(self):
        context = ExperimentContext(scale=0.05)
        assert context.session("leela") is context.session("leela")

    def test_parallel_sweep_spills_traces_once(self):
        """The parallel path spills each distinct trace to disk once
        (cells sharing a workload share the files) and the spilled run
        matches the serial, in-process one."""
        from repro.obs.metrics import scoped_registry
        from repro.sim.parallel import SweepCell

        def cells():
            return [
                SweepCell(
                    workload="leela",
                    configuration="fixed-capacity",
                    model_names=models,
                    seed=7,
                    n_accesses=6000,
                    n_threads=None,
                    arch=None,
                )
                for models in (("SRAM",), ("Jan_S",))
            ]

        serial = ExperimentContext(scale=0.05).run_cells(cells())
        with scoped_registry() as registry:
            parallel = ExperimentContext(scale=0.05, jobs=2).run_cells(cells())
        assert registry.counters.get("experiments.traces_spilled") == 1
        for s, p in zip(serial, parallel):
            assert set(s) == set(p)
            for name in s:
                assert s[name].counts == p[name].counts
                assert s[name].runtime_s == p[name].runtime_s

    def test_normalized_sweep_structure(self):
        context = ExperimentContext(scale=0.05)
        results = context.normalized_sweep(
            ["leela"], "fixed-capacity", llc_names=["Xue_S", "SRAM"]
        )
        assert set(results) == {"Xue_S", "SRAM"}
        assert results["SRAM"]["leela"].speedup == pytest.approx(1.0)


class TestTableWriter:
    def test_render_markdown(self):
        table = TableWriter(headers=["a", "b"])
        table.add("x", 1.23456)
        text = table.render()
        assert "| a" in text
        assert "1.235" in text  # 3-decimal float formatting

    def test_row_width_checked(self):
        table = TableWriter(headers=["a", "b"])
        with pytest.raises(ExperimentError):
            table.add("only-one")

    def test_empty_table_renders_headers(self):
        table = TableWriter(headers=["one", "two"])
        assert "one" in table.render()
