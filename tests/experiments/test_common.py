"""Tests for the experiment-layer infrastructure."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext, TableWriter


class TestExperimentContext:
    def test_trace_cached(self):
        context = ExperimentContext(scale=0.05)
        a = context.trace("leela")
        assert context.trace("leela") is a

    def test_scale_shortens(self):
        short = ExperimentContext(scale=0.05).trace("leela")
        full = ExperimentContext(scale=1.0).trace("leela")
        assert len(short) < len(full)

    def test_scale_floor(self):
        # Even tiny scales keep enough accesses to simulate.
        trace = ExperimentContext(scale=0.001).trace("leela")
        assert len(trace) >= 5000

    def test_invalid_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentContext(scale=0.0)
        with pytest.raises(ExperimentError):
            ExperimentContext(scale=1.5)

    def test_session_cached(self):
        context = ExperimentContext(scale=0.05)
        assert context.session("leela") is context.session("leela")

    def test_normalized_sweep_structure(self):
        context = ExperimentContext(scale=0.05)
        results = context.normalized_sweep(
            ["leela"], "fixed-capacity", llc_names=["Xue_S", "SRAM"]
        )
        assert set(results) == {"Xue_S", "SRAM"}
        assert results["SRAM"]["leela"].speedup == pytest.approx(1.0)


class TestTableWriter:
    def test_render_markdown(self):
        table = TableWriter(headers=["a", "b"])
        table.add("x", 1.23456)
        text = table.render()
        assert "| a" in text
        assert "1.235" in text  # 3-decimal float formatting

    def test_row_width_checked(self):
        table = TableWriter(headers=["a", "b"])
        with pytest.raises(ExperimentError):
            table.add("only-one")

    def test_empty_table_renders_headers(self):
        table = TableWriter(headers=["one", "two"])
        assert "one" in table.render()
