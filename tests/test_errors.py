"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = (
    errors.CellParameterError,
    errors.HeuristicError,
    errors.ModelGenerationError,
    errors.TraceError,
    errors.WorkloadError,
    errors.SimulationError,
    errors.ConfigurationError,
    errors.CorrelationError,
    errors.ExperimentError,
    errors.CheckpointError,
    errors.PlausibilityError,
    errors.PartialResultError,
    errors.ServeError,
    errors.QueueFullError,
    errors.LoadGenError,
)

#: The released code of every error class.  Codes are public interface
#: (scripts grep for ``error[<code>]``); changing one is a breaking
#: change, so this mapping is pinned verbatim.
EXPECTED_CODES = {
    errors.ReproError: "REPRO",
    errors.CellParameterError: "CELL",
    errors.HeuristicError: "HEURISTIC",
    errors.ModelGenerationError: "MODEL",
    errors.TraceError: "TRACE",
    errors.WorkloadError: "WORKLOAD",
    errors.SimulationError: "SIM",
    errors.ConfigurationError: "CONFIG",
    errors.CorrelationError: "CORRELATE",
    errors.ExperimentError: "EXPERIMENT",
    errors.CheckpointError: "CHECKPOINT",
    errors.PlausibilityError: "PLAUSIBILITY",
    errors.PartialResultError: "PARTIAL",
    errors.ServeError: "SERVE",
    errors.QueueFullError: "BUSY",
    errors.LoadGenError: "LOADGEN",
}


def test_all_derive_from_repro_error():
    for error_type in ALL_ERRORS:
        assert issubclass(error_type, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_single_catch_covers_library_failures():
    """A caller's `except ReproError` must cover every failure path."""
    from repro.cells.library import cell_by_name
    from repro.nvsim.published import published_model
    from repro.workloads.profiles import profile

    for call in (
        lambda: cell_by_name("nope"),
        lambda: published_model("nope"),
        lambda: profile("nope"),
    ):
        with pytest.raises(errors.ReproError):
            call()


def test_errors_carry_messages():
    with pytest.raises(errors.ReproError) as excinfo:
        from repro.cells.library import cell_by_name

        cell_by_name("doesnotexist")
    assert "doesnotexist" in str(excinfo.value)


class TestStructuredErrorContract:
    def test_codes_are_pinned(self):
        for error_type, code in EXPECTED_CODES.items():
            assert error_type.code == code

    def test_codes_are_unique(self):
        codes = [t.code for t in EXPECTED_CODES]
        assert len(set(codes)) == len(codes)

    def test_every_class_has_an_exit_code(self):
        for error_type in EXPECTED_CODES:
            assert isinstance(error_type.exit_code, int)
            assert error_type.exit_code >= 1

    def test_exit_code_table(self):
        assert errors.ReproError.exit_code == 1
        assert errors.PartialResultError.exit_code == 3
        assert errors.TraceError.exit_code == 4
        assert errors.PlausibilityError.exit_code == 4
        assert errors.ServeError.exit_code == 5
        assert errors.QueueFullError.exit_code == 5
        assert errors.LoadGenError.exit_code == 2

    def test_serve_errors_carry_http_context(self):
        assert errors.ServeError("x").http_status == 400
        assert errors.ServeError("x", http_status=404).http_status == 404
        busy = errors.QueueFullError("full", retry_after_s=2.5)
        assert busy.http_status == 429
        assert busy.retry_after_s == 2.5

    def test_render_error_format(self):
        rendered = errors.render_error(errors.TraceError("bad line"))
        assert rendered == "error[TRACE]: bad line"

    def test_trace_error_carries_context(self):
        error = errors.TraceError("x", lineno=7, field="gap", value="zz")
        assert (error.lineno, error.field, error.value) == (7, "gap", "zz")

    def test_plausibility_error_carries_context(self):
        error = errors.PlausibilityError(
            "x", subject="cell", field="pulse", value=1.0,
            bound="range", provenance="heuristic 2",
        )
        assert error.subject == "cell"
        assert error.provenance == "heuristic 2"
