"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = (
    errors.CellParameterError,
    errors.HeuristicError,
    errors.ModelGenerationError,
    errors.TraceError,
    errors.WorkloadError,
    errors.SimulationError,
    errors.ConfigurationError,
    errors.CorrelationError,
    errors.ExperimentError,
)


def test_all_derive_from_repro_error():
    for error_type in ALL_ERRORS:
        assert issubclass(error_type, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_single_catch_covers_library_failures():
    """A caller's `except ReproError` must cover every failure path."""
    from repro.cells.library import cell_by_name
    from repro.nvsim.published import published_model
    from repro.workloads.profiles import profile

    for call in (
        lambda: cell_by_name("nope"),
        lambda: published_model("nope"),
        lambda: profile("nope"),
    ):
        with pytest.raises(errors.ReproError):
            call()


def test_errors_carry_messages():
    with pytest.raises(errors.ReproError) as excinfo:
        from repro.cells.library import cell_by_name

        cell_by_name("doesnotexist")
    assert "doesnotexist" in str(excinfo.value)
