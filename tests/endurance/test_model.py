"""Tests for endurance specifications."""

import pytest

from repro.cells.base import CellClass
from repro.endurance.model import ENDURANCE, EnduranceSpec, endurance_of
from repro.errors import ConfigurationError


class TestEnduranceTable:
    def test_all_classes_covered(self):
        for cell_class in CellClass:
            assert cell_class in ENDURANCE

    def test_paper_orderings(self):
        # Table I: PCRAM 10^7-10^8 << RRAM 10^10 << STTRAM; SRAM unlimited.
        pcram = endurance_of(CellClass.PCRAM)
        rram = endurance_of(CellClass.RRAM)
        sttram = endurance_of(CellClass.STTRAM)
        assert pcram.write_limit < rram.write_limit < sttram.write_limit
        assert 1e7 <= pcram.write_limit <= 1e8
        assert rram.write_limit == pytest.approx(1e10)
        assert not endurance_of(CellClass.SRAM).is_limited


class TestFirstFailureBudget:
    def test_unlimited_is_none(self):
        assert endurance_of(CellClass.SRAM).first_failure_budget(10**9) is None

    def test_budget_below_median(self):
        spec = EnduranceSpec(write_limit=1e8, variability=0.3)
        budget = spec.first_failure_budget(10**8)
        assert budget < 1e8
        assert budget > 1e7  # not absurdly pessimistic

    def test_more_cells_fail_earlier(self):
        spec = EnduranceSpec(write_limit=1e8, variability=0.3)
        assert spec.first_failure_budget(10**9) < spec.first_failure_budget(10**4)

    def test_zero_variability_exact(self):
        spec = EnduranceSpec(write_limit=1e8, variability=0.0)
        assert spec.first_failure_budget(10**9) == pytest.approx(1e8)

    def test_single_cell_is_limit(self):
        spec = EnduranceSpec(write_limit=1e8, variability=0.5)
        assert spec.first_failure_budget(1) == pytest.approx(1e8)


class TestValidation:
    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            EnduranceSpec(write_limit=0.0)

    def test_rejects_negative_variability(self):
        with pytest.raises(ConfigurationError):
            EnduranceSpec(write_limit=1e8, variability=-0.1)
