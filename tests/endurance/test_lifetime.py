"""Tests for lifetime estimation."""

import numpy as np
import pytest

from repro.cells.base import CellClass
from repro.endurance.lifetime import estimate_lifetime
from repro.endurance.model import SECONDS_PER_YEAR, EnduranceSpec
from repro.endurance.wear import WearSummary
from repro.errors import SimulationError


def _wear(total=1000, hottest=50, n_sets=128, assoc=16):
    set_writes = np.full(n_sets, total // n_sets, dtype=np.int64)
    return WearSummary(
        n_sets=n_sets,
        associativity=assoc,
        total_writes=total,
        set_writes=set_writes,
        hottest_line_writes=hottest,
    )


class TestEstimateLifetime:
    def test_unlimited_class_returns_none(self):
        estimate = estimate_lifetime("SRAM", CellClass.SRAM, _wear(), 1e-3)
        assert estimate.unleveled_years is None
        assert estimate.leveled_years is None
        assert estimate.leveling_gain is None

    def test_leveling_never_hurts(self):
        estimate = estimate_lifetime("Kang_P", CellClass.PCRAM, _wear(), 1e-3)
        assert estimate.leveled_years >= estimate.unleveled_years

    def test_hot_line_shortens_life(self):
        mild = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, _wear(hottest=10), 1e-3
        )
        hot = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, _wear(hottest=500), 1e-3
        )
        assert hot.unleveled_years < mild.unleveled_years
        # Leveled lifetime ignores the hot line (same totals).
        assert hot.leveled_years == pytest.approx(mild.leveled_years)

    def test_rram_outlives_pcram(self):
        wear = _wear()
        pcram = estimate_lifetime("Kang_P", CellClass.PCRAM, wear, 1e-3)
        rram = estimate_lifetime("Zhang_R", CellClass.RRAM, wear, 1e-3)
        # Table I: ~10^10 vs ~10^7-10^8 -> orders of magnitude.
        assert rram.unleveled_years / pcram.unleveled_years > 50

    def test_lifetime_scales_inverse_with_rate(self):
        # Same wear in half the time = double rate = half the life.
        slow = estimate_lifetime("Kang_P", CellClass.PCRAM, _wear(), 2e-3)
        fast = estimate_lifetime("Kang_P", CellClass.PCRAM, _wear(), 1e-3)
        assert slow.unleveled_years == pytest.approx(2 * fast.unleveled_years)

    def test_custom_spec_override(self):
        tough = EnduranceSpec(write_limit=1e12, variability=0.0)
        default = estimate_lifetime("Kang_P", CellClass.PCRAM, _wear(), 1e-3)
        overridden = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, _wear(), 1e-3, spec=tough
        )
        assert overridden.unleveled_years > default.unleveled_years

    def test_zero_window_rejected(self):
        with pytest.raises(SimulationError):
            estimate_lifetime("Kang_P", CellClass.PCRAM, _wear(), 0.0)

    def test_idle_cache_lives_forever(self):
        idle = _wear(total=0, hottest=0)
        estimate = estimate_lifetime("Kang_P", CellClass.PCRAM, idle, 1e-3)
        assert estimate.unleveled_years == float("inf") / SECONDS_PER_YEAR
