"""Tests for wear tracking."""

import numpy as np
import pytest

from repro import units
from repro.endurance.wear import replay_with_wear
from repro.sim.hierarchy import LLCStream


def _stream(blocks, writes):
    n = len(blocks)
    return LLCStream(
        blocks=np.array(blocks, dtype=np.uint64),
        writes=np.array(writes, dtype=bool),
        cores=np.zeros(n, dtype=np.uint16),
        instr_positions=np.arange(n, dtype=np.uint64),
    )


class TestReplayWithWear:
    def test_writes_and_fills_both_wear(self):
        # One demand read (fill) + one writeback: both program cells.
        stream = _stream([1, 2], [False, True])
        wear = replay_with_wear(stream, 64 * units.KB)
        assert wear.total_writes == 2

    def test_read_hits_do_not_wear(self):
        stream = _stream([1, 1, 1, 1], [False, False, False, False])
        wear = replay_with_wear(stream, 64 * units.KB)
        assert wear.total_writes == 1  # only the compulsory fill

    def test_set_attribution(self):
        wear = replay_with_wear(
            _stream([0, 0, 0], [True, True, True]), 64 * units.KB,
            associativity=4,
        )
        assert wear.set_writes[0] == 3
        assert wear.set_writes[1:].sum() == 0
        assert wear.hottest_line_writes == 3

    def test_imbalance_metrics(self):
        # All writes into one set of many: maximal imbalance.
        wear = replay_with_wear(
            _stream([0] * 10, [True] * 10), 64 * units.KB, associativity=4
        )
        assert wear.imbalance == pytest.approx(wear.n_sets)
        assert wear.coefficient_of_variation > 1.0

    def test_uniform_writes_low_imbalance(self):
        n_sets = (64 * units.KB) // (64 * 4)
        blocks = list(range(n_sets)) * 3
        wear = replay_with_wear(
            _stream(blocks, [True] * len(blocks)), 64 * units.KB,
            associativity=4,
        )
        assert wear.imbalance == pytest.approx(1.0)
        assert wear.coefficient_of_variation == pytest.approx(0.0)

    def test_total_writes_conserved(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 4096, size=2000)
        writes = rng.random(2000) < 0.4
        wear = replay_with_wear(_stream(blocks, writes), 128 * units.KB)
        assert wear.set_writes.sum() == wear.total_writes
        assert wear.hottest_line_writes <= wear.max_set_writes
