"""Endurance-model edge cases the compression work leans on.

Zero-write windows must forecast infinite (not NaN) lifetimes, a
single hot line must show the full unleveled/leveled gap, and set
rotation must spread wear without changing the byte accounting of
compressed lines (sizes are keyed to the *true* block address, not the
rotated placement).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cells.base import CellClass
from repro.endurance.lifetime import estimate_lifetime
from repro.endurance.wear import WearSummary
from repro.errors import SimulationError
from repro.sim.hierarchy import LLCStream
from repro.techniques.base import Technique
from repro.techniques.compression import CompressedLLC
from repro.techniques.replay import replay_with_technique

CAPACITY = 4 * 4 * 64  # 4 sets x 4 ways
ASSOC = 4


def _stream(pairs) -> LLCStream:
    n = len(pairs)
    return LLCStream(
        blocks=np.array([p[0] for p in pairs], dtype=np.int64),
        writes=np.array([p[1] for p in pairs], dtype=bool),
        cores=np.zeros(n, dtype=np.int64),
        instr_positions=np.arange(n, dtype=np.int64),
    )


def _replay(pairs, technique):
    return replay_with_technique(
        _stream(pairs), technique, CAPACITY, ASSOC, 64, n_cores=1
    )


class TestZeroWriteWindow:
    def test_empty_stream_forecasts_infinite_lifetime(self):
        outcome = _replay([], Technique())
        assert outcome.wear.total_writes == 0
        assert outcome.write_bytes == 0
        assert outcome.write_bytes_fraction == 1.0  # neutral, not 0/0
        estimate = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, outcome.wear, window_s=1e-3
        )
        assert estimate.unleveled_years == math.inf
        assert estimate.leveled_years == math.inf

    def test_zero_wear_summary_is_infinite_for_limited_cells(self):
        wear = WearSummary(
            n_sets=4,
            associativity=ASSOC,
            total_writes=0,
            set_writes=np.zeros(4, dtype=np.int64),
            hottest_line_writes=0,
        )
        estimate = estimate_lifetime("Zhang_R", CellClass.RRAM, wear, 1.0)
        assert estimate.unleveled_years == math.inf
        assert estimate.total_write_rate == 0.0

    def test_compressed_replay_of_empty_stream_is_consistent(self):
        outcome = _replay([], CompressedLLC.uniform(16))
        assert outcome.compressed_writes == 0
        assert outcome.uncompressed_writes == 0
        assert outcome.effective_capacity_bytes == 0.0


class TestSingleHotLine:
    def test_wear_concentrates_on_one_frame(self):
        pairs = [(7, True)] * 500
        outcome = _replay(pairs, Technique())
        assert outcome.wear.hottest_line_writes == outcome.wear.total_writes
        hot_set = 7 % outcome.wear.n_sets
        assert outcome.wear.set_writes[hot_set] == outcome.wear.total_writes
        assert (np.delete(outcome.wear.set_writes, hot_set) == 0).all()

    def test_leveling_gain_is_the_frame_count(self):
        """hottest == total means ideal leveling buys exactly n_frames."""
        pairs = [(7, True)] * 500
        outcome = _replay(pairs, Technique())
        estimate = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, outcome.wear, window_s=1e-3
        )
        n_frames = outcome.wear.n_sets * outcome.wear.associativity
        assert estimate.leveling_gain == pytest.approx(n_frames)


class TestLevelingTimesCompression:
    def test_rotation_spreads_compressed_wear_across_sets(self):
        pairs = [(7, True)] * 512
        still = _replay(pairs, CompressedLLC.uniform(16))
        rotated = _replay(
            pairs, CompressedLLC.uniform(16, leveling_period=64)
        )
        assert still.wear.max_set_writes == still.wear.total_writes
        assert rotated.wear.max_set_writes < rotated.wear.total_writes
        # Rotation touched every set of this 4-set cache.
        assert (rotated.wear.set_writes > 0).all()

    def test_rotation_does_not_change_byte_accounting(self):
        """Line sizes are a property of the true block address, so the
        rotated placement programs exactly the same bytes.  (Write-only
        stream: every write programs the array wherever it lands, so
        the event count itself is placement-independent.)"""
        pairs = [(b % 32, True) for b in range(600)]
        still = _replay(pairs, CompressedLLC.for_workload("gobmk"))
        rotated = _replay(
            pairs, CompressedLLC.for_workload("gobmk", leveling_period=50)
        )
        assert rotated.write_bytes == still.write_bytes
        assert rotated.compressed_writes == still.compressed_writes
        assert rotated.wear.total_writes == still.wear.total_writes

    def test_fraction_and_frames_compose_in_the_forecast(self):
        pairs = [(b % 16, True) for b in range(400)]
        outcome = _replay(pairs, CompressedLLC.uniform(16))
        full = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, outcome.wear, 1e-3,
            n_frames=outcome.n_frames,
        )
        scaled = estimate_lifetime(
            "Kang_P", CellClass.PCRAM, outcome.wear, 1e-3,
            n_frames=outcome.n_frames,
            cell_write_fraction=outcome.write_bytes_fraction,
        )
        # Quarter-size lines -> 4x the unleveled forecast, exactly.
        assert outcome.write_bytes_fraction == pytest.approx(0.25)
        assert scaled.unleveled_years == pytest.approx(
            4 * full.unleveled_years
        )


class TestForecastValidation:
    def test_rejects_nonpositive_window(self):
        wear = WearSummary(4, ASSOC, 0, np.zeros(4, dtype=np.int64), 0)
        with pytest.raises(SimulationError):
            estimate_lifetime("Kang_P", CellClass.PCRAM, wear, 0.0)

    def test_rejects_out_of_range_fraction(self):
        wear = WearSummary(4, ASSOC, 1, np.ones(4, dtype=np.int64), 1)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(SimulationError):
                estimate_lifetime(
                    "Kang_P", CellClass.PCRAM, wear, 1.0,
                    cell_write_fraction=bad,
                )

    def test_rejects_nonpositive_frame_count(self):
        wear = WearSummary(4, ASSOC, 1, np.ones(4, dtype=np.int64), 1)
        with pytest.raises(SimulationError):
            estimate_lifetime(
                "Kang_P", CellClass.PCRAM, wear, 1.0, n_frames=0
            )
