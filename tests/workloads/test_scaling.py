"""Tests for the trace-scaling stability analysis."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.scaling import (
    EXTENSIVE_FEATURES,
    INTENSIVE_FEATURES,
    ScalingReport,
    scaling_report,
)


@pytest.fixture(scope="module")
def tonto_report():
    return scaling_report("tonto", scales=(0.25, 0.5, 1.0))


class TestScalingReport:
    def test_scales_sorted(self, tonto_report):
        assert tonto_report.scales == (0.25, 0.5, 1.0)
        assert len(tonto_report.features) == 3

    def test_entropies_scale_invariant(self, tonto_report):
        # DESIGN.md's claim, quantified: entropies drift < 15% from the
        # full-scale value even at quarter length.
        for feature in INTENSIVE_FEATURES:
            assert tonto_report.intensive_drift(feature) < 0.15, feature

    def test_totals_scale_linearly(self, tonto_report):
        for feature in EXTENSIVE_FEATURES:
            assert tonto_report.extensive_linearity(feature) < 0.1, feature

    def test_stable_flag(self, tonto_report):
        assert tonto_report.stable()

    def test_multiple_benchmarks_stable(self):
        # The claim must hold beyond one benchmark; leela's hot-pool
        # skew is the stress case for entropy stability.
        for name in ("leela", "ep"):
            report = scaling_report(name, scales=(0.5, 1.0))
            assert report.stable(intensive_tolerance=0.2), name

    def test_unknown_feature_rejected(self, tonto_report):
        with pytest.raises(WorkloadError):
            tonto_report.values("hotness")

    def test_bad_scales_rejected(self):
        with pytest.raises(WorkloadError):
            scaling_report("tonto", scales=(0.0, 1.0))
        with pytest.raises(WorkloadError):
            scaling_report("tonto", scales=())
