"""Tests for the workload registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.registry import (
    SUITES,
    all_benchmarks,
    ai_benchmarks,
    benchmarks_in_suite,
    characterized_benchmarks,
    multi_threaded,
    profiles_by_suite,
    single_threaded,
    suite_of,
)


def test_all_benchmarks_count_and_order():
    names = all_benchmarks()
    assert len(names) == 20
    assert names[0] == "bzip2"  # Table V order starts with cpu2006
    assert names[-1] == "exchange2"


def test_suite_partition():
    total = sum(len(benchmarks_in_suite(s)) for s in SUITES)
    assert total == 20


def test_unknown_suite_raises():
    with pytest.raises(WorkloadError):
        benchmarks_in_suite("SPECjbb")


def test_threading_partition():
    st, mt = single_threaded(), multi_threaded()
    assert not set(st) & set(mt)
    assert len(st) + len(mt) == 20
    assert "vips" in mt
    assert "x264" in st


def test_ai_benchmarks():
    assert ai_benchmarks() == ["deepsjeng", "leela", "exchange2"]


def test_characterized_excludes_prism_incompatible():
    characterized = characterized_benchmarks()
    assert len(characterized) == 16
    assert "gamess" not in characterized
    assert "GemsFDTD" in characterized


def test_suite_of():
    assert suite_of("cg") == "NPB3.3.1"
    with pytest.raises(WorkloadError):
        suite_of("quake")


def test_profiles_by_suite_grouping():
    grouped = profiles_by_suite()
    assert set(grouped) == set(SUITES)
    assert len(grouped["cpu2017"]) == 3
