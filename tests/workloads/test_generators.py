"""Tests for the benchmark trace generators."""

import numpy as np
import pytest

from repro.workloads.generators import DEFAULT_SEED, generate_from_profile, generate_trace
from repro.workloads.profiles import PROFILES, profile
from repro.workloads.registry import all_benchmarks


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("leela", n_accesses=5000)
        b = generate_trace("leela", n_accesses=5000)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.writes, b.writes)
        assert np.array_equal(a.gaps, b.gaps)

    def test_different_seed_differs(self):
        a = generate_trace("leela", seed=1, n_accesses=5000)
        b = generate_trace("leela", seed=2, n_accesses=5000)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_benchmarks_differ_under_same_seed(self):
        a = generate_trace("leela", n_accesses=5000)
        b = generate_trace("tonto", n_accesses=5000)
        assert not np.array_equal(a.addresses, b.addresses)


class TestShape:
    def test_every_benchmark_generates(self):
        for name in all_benchmarks():
            trace = generate_trace(name, n_accesses=3000)
            assert len(trace) == 3000
            assert trace.name == name

    def test_thread_count_matches_profile(self):
        assert generate_trace("cg", n_accesses=2000).n_threads == 4
        assert generate_trace("bzip2", n_accesses=2000).n_threads == 1

    def test_thread_override(self):
        trace = generate_from_profile(
            profile("cg"), n_accesses=4000, n_threads=8
        )
        assert trace.n_threads == 8

    def test_length_override_vs_profile_default(self):
        full = generate_trace("tonto")
        assert len(full) == PROFILES["tonto"].n_accesses

    def test_write_fraction_tracks_components(self):
        trace = generate_trace("cg", n_accesses=20_000)
        # cg is the most read-dominated workload (paper wf ~0.05).
        assert trace.n_writes / len(trace) < 0.15
        trace = generate_trace("ft", n_accesses=20_000)
        # ft is nearly half writes (paper wf ~0.49).
        assert 0.35 < trace.n_writes / len(trace) < 0.6

    def test_gaps_track_mean_gap(self):
        trace = generate_trace("exchange2", n_accesses=20_000)
        assert trace.gaps.mean() == pytest.approx(
            PROFILES["exchange2"].mean_gap, rel=0.1
        )
