"""Tests for benchmark profiles (Tables V & VI as data)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    AI_BENCHMARKS,
    PRISM_EXCLUDED,
    PROFILES,
    ComponentSpec,
    profile,
)


class TestTableVStructure:
    def test_twenty_benchmarks(self):
        assert len(PROFILES) == 20

    def test_suite_counts_match_paper(self):
        # 7 cpu2006, 2 PARSEC3.0, 8 NPB, 3 cpu2017 (Section IV).
        suites = {}
        for bench in PROFILES.values():
            suites[bench.suite] = suites.get(bench.suite, 0) + 1
        assert suites == {
            "cpu2006": 7,
            "PARSEC3.0": 2,
            "NPB3.3.1": 8,
            "cpu2017": 3,
        }

    def test_threading_matches_table5(self):
        # m.t.: vips + all NPB; everything else single-threaded.
        for bench in PROFILES.values():
            expected = bench.suite == "NPB3.3.1" or bench.name == "vips"
            assert bench.multithreaded == expected, bench.name
            assert bench.n_threads == (4 if expected else 1)

    def test_ai_subset(self):
        assert set(AI_BENCHMARKS) == {"deepsjeng", "leela", "exchange2"}
        for name in AI_BENCHMARKS:
            assert PROFILES[name].is_ai
            assert PROFILES[name].suite == "cpu2017"

    def test_paper_mpki_positive(self):
        for bench in PROFILES.values():
            assert bench.paper_mpki > 5, bench.name  # the paper's bar

    def test_highest_paper_mpki_is_deepsjeng(self):
        top = max(PROFILES.values(), key=lambda b: b.paper_mpki)
        assert top.name == "deepsjeng"


class TestTableVIStructure:
    def test_sixteen_characterized(self):
        characterized = [b for b in PROFILES.values() if b.prism_compatible]
        assert len(characterized) == 16

    def test_exclusions_match_paper(self):
        assert set(PRISM_EXCLUDED) == {"gamess", "gobmk", "milc", "perlbench"}
        for name in PRISM_EXCLUDED:
            assert not PROFILES[name].prism_compatible

    def test_gems_footprint_extreme(self):
        # GemsFDTD's 90% footprints are two orders above the others.
        gems = PROFILES["GemsFDTD"].paper_features
        for bench in PROFILES.values():
            if bench.name == "GemsFDTD" or not bench.prism_compatible:
                continue
            assert gems.ft90_w_e3 > 10 * bench.paper_features.ft90_w_e3

    def test_exchange2_totals_extreme(self):
        exchange2 = PROFILES["exchange2"].paper_features
        for bench in PROFILES.values():
            if bench.name == "exchange2" or not bench.prism_compatible:
                continue
            assert exchange2.r_total_e9 > bench.paper_features.r_total_e9

    def test_write_fraction_derived(self):
        features = PROFILES["ft"].paper_features
        # ft: 0.28 reads vs 0.27 writes -> nearly half writes.
        assert features.write_fraction == pytest.approx(0.49, abs=0.02)


class TestComponentSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            ComponentSpec("walk", 1024, weight=1.0, write_fraction=0.0)

    def test_rejects_empty_region(self):
        with pytest.raises(WorkloadError):
            ComponentSpec("pool", 0, weight=1.0, write_fraction=0.0)

    def test_profile_lookup(self):
        assert profile("leela").name == "leela"
        with pytest.raises(WorkloadError):
            profile("doom")
