"""Tests for the markdown report builder."""

import pytest

from repro.errors import ExperimentError
from repro.report.builder import ReportBuilder


class TestReportBuilder:
    def test_header_carries_provenance(self):
        builder = ReportBuilder(title="Run", scale=0.5, seed=42)
        text = builder.render()
        assert "# Run" in text
        assert "trace scale: 0.5" in text
        assert "seed: 42" in text
        assert "library version:" in text

    def test_sections_in_order(self):
        builder = ReportBuilder(title="Run")
        builder.add_section("First", "body-1")
        builder.add_section("Second", "body-2", elapsed_s=1.5)
        text = builder.render()
        assert text.index("## First") < text.index("## Second")
        assert "body-1" in text
        assert "1.5s" in text
        assert builder.n_sections == 2

    def test_notes(self):
        builder = ReportBuilder(title="Run")
        builder.add_note("*deviations apply*")
        assert "*deviations apply*" in builder.render()

    def test_empty_heading_rejected(self):
        builder = ReportBuilder(title="Run")
        with pytest.raises(ExperimentError):
            builder.add_section("", "body")

    def test_write(self, tmp_path):
        builder = ReportBuilder(title="Run")
        builder.add_section("Only", "body")
        path = builder.write(tmp_path / "report.md")
        assert path.read_text().startswith("# Run")

    def test_write_accepts_string_path(self, tmp_path):
        builder = ReportBuilder(title="Run")
        out = builder.write(str(tmp_path / "report.md"))
        assert out.is_file()

    def test_extra_provenance_bullets(self):
        builder = ReportBuilder(
            title="Run", provenance=["engine: vectorized", "jobs: 4"]
        )
        text = builder.render()
        assert "- engine: vectorized" in text
        assert "- jobs: 4" in text

    def test_section_without_elapsed_has_no_suffix(self):
        builder = ReportBuilder(title="Run")
        builder.add_section("Plain", "body")
        assert "generated in" not in builder.render()

    def test_section_body_fenced(self):
        builder = ReportBuilder(title="Run")
        builder.add_section("S", "| a | b |")
        text = builder.render()
        assert "```\n| a | b |\n```" in text

    def test_empty_report_renders_header_only(self):
        text = ReportBuilder(title="Empty").render()
        assert text.startswith("# Empty")
        assert "##" not in text
        assert ReportBuilder(title="Empty").n_sections == 0
