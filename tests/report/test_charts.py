"""Tests for the text-mode chart renderers."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.report.charts import _shade, bar_chart, correlation_heatmap, sparkline


class TestShade:
    def test_degenerate_range_uses_weakest_glyph(self):
        assert _shade(5.0, 1.0, 1.0) == " "
        assert _shade(5.0, 2.0, 1.0) == " "

    def test_extremes_clamped(self):
        assert _shade(-10.0, 0.0, 1.0) == " "
        assert _shade(10.0, 0.0, 1.0) == "█"

    def test_monotone_in_value(self):
        ramp = " ░▒▓█"
        shades = [_shade(v / 10, 0.0, 1.0) for v in range(11)]
        indices = [ramp.index(s) for s in shades]
        assert indices == sorted(indices)


class TestBarChart:
    def test_labels_and_values_present(self):
        chart = bar_chart({"Jan_S": 0.03, "Kang_P": 4.1}, reference=1.0)
        assert "Jan_S" in chart and "Kang_P" in chart
        assert "0.03" in chart and "4.1" in chart
        assert "reference = 1" in chart

    def test_longer_bar_for_larger_value(self):
        chart = bar_chart({"small": 1.0, "large": 10.0}, reference=None)
        lines = chart.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_log_scale_compresses(self):
        chart = bar_chart(
            {"a": 0.01, "b": 0.1, "c": 1.0}, reference=None, log_scale=True
        )
        lines = chart.splitlines()
        bars = [line.count("█") for line in lines]
        # Log scale: equal ratios give equal increments.
        assert bars[1] - bars[0] == pytest.approx(bars[2] - bars[1], abs=2)

    def test_title_rendered(self):
        chart = bar_chart({"x": 1.0}, title="Energy vs SRAM")
        assert chart.splitlines()[0] == "Energy vs SRAM"

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({})

    def test_narrow_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({"x": 1.0}, width=3)

    def test_no_reference_no_marker_row(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, reference=None)
        assert "reference" not in chart
        assert "^" not in chart

    def test_reference_marker_drawn_through_short_bars(self):
        # a bar well below the reference must show the | marker
        chart = bar_chart({"low": 0.1, "high": 2.0}, reference=1.0)
        low_line = next(l for l in chart.splitlines() if l.startswith(" low"))
        assert "|" in low_line

    def test_equal_values_still_render(self):
        # span collapses to zero; the or-1.0 fallback must kick in
        chart = bar_chart({"a": 3.0, "b": 3.0}, reference=None)
        assert chart.count("█") >= 2

    def test_log_scale_clamps_nonpositive_values(self):
        chart = bar_chart({"zero": 0.0, "one": 1.0},
                          reference=None, log_scale=True)
        assert "zero" in chart  # no math domain error


class TestCorrelationHeatmap:
    def test_values_and_signs(self):
        matrix = np.array([[0.99, -0.2], [-0.85, 0.1]])
        heat = correlation_heatmap(
            matrix, ["H_wg", "r_total"], ["energy", "speedup"]
        )
        assert "+0.99" in heat
        assert "-0.85" in heat
        assert "H_wg" in heat and "speedup" in heat

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            correlation_heatmap(np.zeros((2, 2)), ["a"], ["x", "y"])

    def test_stronger_cells_darker(self):
        heat = correlation_heatmap(
            np.array([[0.05], [0.95]]), ["weak", "strong"], ["r"]
        )
        weak_line, strong_line = heat.splitlines()[1:]
        assert "█" in strong_line or "▓" in strong_line
        assert "█" not in weak_line

    def test_title_line(self):
        heat = correlation_heatmap(
            np.zeros((1, 1)), ["f"], ["r"], title="Figure 4a"
        )
        assert heat.splitlines()[0] == "Figure 4a"

    def test_long_column_labels_widen_columns(self):
        heat = correlation_heatmap(
            np.zeros((1, 2)), ["f"], ["short", "a-very-long-response-name"]
        )
        header = heat.splitlines()[0]
        assert "a-very-long-response-name" in header

    def test_negative_zero_shown_as_positive(self):
        heat = correlation_heatmap(np.array([[0.0]]), ["f"], ["r"])
        assert "+0.00" in heat


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "".join(sorted(line))

    def test_flat_series(self):
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([])

    def test_single_value(self):
        assert len(sparkline([7.0])) == 1

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"
