"""Smoke tests: the example scripts run and print their headline lines.

Only the cheaper examples run here (the full set is exercised manually /
in CI nightly); each is executed in-process with a patched argv.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv=()):
    old_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "Xue_S vs SRAM" in out
    assert "speedup" in out


def test_design_space_exploration(capsys):
    _run("design_space_exploration.py")
    out = capsys.readouterr().out
    assert "Hypo28_S" in out
    assert "fixed-area capacity" in out


def test_workload_characterization_quick(capsys):
    _run("workload_characterization.py", argv=["--quick"])
    out = capsys.readouterr().out
    assert "featkernel" in out
    assert "H_rg" in out
