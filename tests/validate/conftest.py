"""Fixtures for the validation-firewall tests.

Every test in this package runs with a clean policy slate: no
process-local override, no ``REPRO_VALIDATE`` in the environment, and
the once-per-process lenient warning re-armed.
"""

import pytest

from repro.validate.guard import reset_lenient_warning
from repro.validate.policy import POLICY_ENV, set_policy


@pytest.fixture(autouse=True)
def clean_policy(monkeypatch):
    monkeypatch.delenv(POLICY_ENV, raising=False)
    set_policy(None)
    reset_lenient_warning()
    yield
    # Clear the env again before resetting: a test may have left garbage
    # in REPRO_VALIDATE (monkeypatch restores it after this finalizer),
    # and set_policy(None) re-reads the environment.
    monkeypatch.delenv(POLICY_ENV, raising=False)
    set_policy(None)
    reset_lenient_warning()
