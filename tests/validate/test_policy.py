"""Tests for the validation policy knob (strict | lenient | off)."""

import pytest

from repro.errors import ConfigurationError
from repro.validate.policy import (
    POLICY_ENV,
    Policy,
    current_policy,
    policy_from_env,
    resolve_policy,
    set_policy,
)


class TestEnvironment:
    def test_default_is_strict(self):
        assert policy_from_env() is Policy.STRICT
        assert current_policy() is Policy.STRICT

    def test_env_selects_policy(self, monkeypatch):
        for raw, want in (
            ("strict", Policy.STRICT),
            ("lenient", Policy.LENIENT),
            ("off", Policy.OFF),
            ("  LENIENT \n", Policy.LENIENT),  # trimmed, case-insensitive
        ):
            monkeypatch.setenv(POLICY_ENV, raw)
            assert current_policy() is want

    def test_blank_env_means_default(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "   ")
        assert current_policy() is Policy.STRICT

    def test_garbage_env_is_structured_error(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "paranoid")
        with pytest.raises(ConfigurationError, match="REPRO_VALIDATE"):
            current_policy()

    def test_env_read_at_call_time(self, monkeypatch):
        assert current_policy() is Policy.STRICT
        monkeypatch.setenv(POLICY_ENV, "off")
        assert current_policy() is Policy.OFF


class TestOverride:
    def test_set_policy_beats_env(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "off")
        assert set_policy("lenient") is Policy.LENIENT
        assert current_policy() is Policy.LENIENT

    def test_set_policy_none_removes_override(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "lenient")
        set_policy("off")
        set_policy(None)
        assert current_policy() is Policy.LENIENT


class TestResolve:
    def test_none_means_current(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "lenient")
        assert resolve_policy(None) is Policy.LENIENT

    def test_policy_instance_passes_through(self):
        assert resolve_policy(Policy.OFF) is Policy.OFF

    def test_string_parses(self):
        assert resolve_policy("Strict") is Policy.STRICT

    def test_bad_string_is_structured_error(self):
        with pytest.raises(ConfigurationError):
            resolve_policy("yes")


def test_active_flag():
    assert Policy.STRICT.active
    assert Policy.LENIENT.active
    assert not Policy.OFF.active
