"""Tests for the model/counts/result output guards."""

import dataclasses
import math

import pytest

from repro.errors import PlausibilityError
from repro.nvsim.published import published_models
from repro.sim.llc import LLCCounts
from repro.validate import guard
from repro.validate.guard import (
    check_sweep_models,
    guard_counts,
    guard_model,
    guard_result,
    guard_value,
)


def _counts(**overrides):
    """A self-consistent LLCCounts a real replay could have produced."""
    base = dict(
        capacity_bytes=2 * 1024 * 1024,
        associativity=16,
        read_lookups=100,
        read_hits=60,
        read_misses=40,
        write_accesses=30,
        write_hits=20,
        write_misses=10,
        dirty_evictions=5,
    )
    base.update(overrides)
    return LLCCounts(**base)


class TestGuardValue:
    def test_in_range_returns_value(self):
        assert guard_value("s", "f", 1.5, lo=0.0, hi=2.0) == 1.5

    def test_nan_rejected(self):
        with pytest.raises(PlausibilityError) as excinfo:
            guard_value("subject", "field", float("nan"))
        assert excinfo.value.field == "field"
        assert "finite" in excinfo.value.bound

    def test_out_of_range_names_field_and_bound(self):
        with pytest.raises(PlausibilityError) as excinfo:
            guard_value("cell X", "pulse", 5.0, lo=0.0, hi=1.0,
                        provenance="heuristic 2")
        error = excinfo.value
        assert error.field == "pulse"
        assert error.value == 5.0
        assert "[0, 1]" in error.bound
        assert "heuristic 2" in str(error)

    def test_off_skips_everything(self):
        assert math.isnan(guard_value("s", "f", float("nan"), policy="off"))


class TestGuardModel:
    def test_all_published_models_pass(self):
        for configuration in ("fixed-capacity", "fixed-area"):
            for model in published_models(configuration):
                assert guard_model(model) is model

    def test_nan_latency_rejected(self, xue_model):
        broken = dataclasses.replace(xue_model, read_latency_s=float("nan"))
        with pytest.raises(PlausibilityError) as excinfo:
            guard_model(broken)
        assert excinfo.value.field == "read_latency_s"
        assert "Xue_S" in str(excinfo.value)

    def test_unit_mistake_rejected(self, xue_model):
        # A latency of 2.878 (seconds — ns stored as s) must trip the bound.
        broken = dataclasses.replace(xue_model, set_latency_s=2.878)
        with pytest.raises(PlausibilityError):
            guard_model(broken)

    def test_absurd_capacity_rejected(self, xue_model):
        broken = dataclasses.replace(xue_model, capacity_bytes=1 << 50)
        with pytest.raises(PlausibilityError) as excinfo:
            guard_model(broken)
        assert excinfo.value.field == "capacity_bytes"

    def test_error_carries_provenance(self, xue_model):
        broken = dataclasses.replace(xue_model, leakage_w=float("inf"))
        with pytest.raises(PlausibilityError) as excinfo:
            guard_model(broken)
        assert "published-table3" in excinfo.value.provenance

    def test_off_passes_broken_model(self, xue_model):
        broken = dataclasses.replace(xue_model, read_latency_s=float("nan"))
        assert guard_model(broken, policy="off") is broken


class TestGuardCounts:
    def test_consistent_counts_pass(self):
        counts = _counts()
        assert guard_counts(counts) is counts

    def test_read_split_must_sum(self):
        with pytest.raises(PlausibilityError, match="exact-sum"):
            guard_counts(_counts(read_hits=61))

    def test_write_split_must_sum(self):
        with pytest.raises(PlausibilityError, match="exact-sum"):
            guard_counts(_counts(write_hits=25))

    def test_dirty_evictions_bounded_by_fills(self):
        with pytest.raises(PlausibilityError, match="at-most-fills"):
            guard_counts(_counts(dirty_evictions=51))

    def test_negative_counter_rejected(self):
        with pytest.raises(PlausibilityError):
            guard_counts(_counts(read_hits=-1, read_misses=101))


class TestGuardResult:
    def test_real_result_passes(self, leela_session, xue_model):
        result = leela_session.run(xue_model)
        assert guard_result(result) is result

    def test_nan_runtime_rejected(self, leela_session, xue_model):
        result = leela_session.run(xue_model)
        broken = dataclasses.replace(result, runtime_s=float("nan"))
        with pytest.raises(PlausibilityError) as excinfo:
            guard_result(broken)
        assert excinfo.value.field == "runtime_s"
        assert "leela" in str(excinfo.value)

    def test_negative_energy_rejected(self, leela_session, xue_model):
        result = leela_session.run(xue_model)
        broken = dataclasses.replace(
            result,
            energy=dataclasses.replace(result.energy, leakage_energy_j=-1.0),
        )
        with pytest.raises(PlausibilityError) as excinfo:
            guard_result(broken)
        assert excinfo.value.field == "energy.leakage_energy_j"

    def test_off_passes_broken_result(self, leela_session, xue_model):
        result = leela_session.run(xue_model)
        broken = dataclasses.replace(result, runtime_s=float("inf"))
        assert guard_result(broken, policy="off") is broken


class TestLenient:
    def test_warns_once_and_continues(self, capsys):
        counts = _counts(read_hits=61)
        assert guard_counts(counts, policy="lenient") is counts
        assert guard_counts(counts, policy="lenient") is counts
        err = capsys.readouterr().err
        assert err.count("warning:") == 1
        assert "lenient" in err

    def test_violations_counted_in_metrics(self):
        from repro import obs

        registry = obs.enable()
        try:
            guard_counts(_counts(read_hits=61), policy="lenient")
        finally:
            obs.disable()
        assert registry.counters.get("validate.guard.violations", 0) >= 1


class TestSweepInvariants:
    def test_fixed_capacity_requires_equal_capacity(self, xue_model):
        other = dataclasses.replace(xue_model, capacity_bytes=4 * 1024 * 1024)
        with pytest.raises(PlausibilityError, match="equal-capacity"):
            check_sweep_models([xue_model, other], "fixed-capacity")

    def test_published_sweeps_pass(self):
        from repro.nvsim.config import FIXED_AREA_BUDGET_MM2
        from repro.nvsim.sweep import CAPACITY_LADDER

        for configuration in ("fixed-capacity", "fixed-area"):
            check_sweep_models(
                published_models(configuration), configuration,
                area_budget_mm2=FIXED_AREA_BUDGET_MM2,
                min_capacity_bytes=CAPACITY_LADDER[0],
            )

    def test_fixed_area_budget_enforced(self, xue_model):
        bloated = dataclasses.replace(
            xue_model, area_mm2=20.0, capacity_bytes=8 * 1024 * 1024
        )
        with pytest.raises(PlausibilityError, match="area budget"):
            check_sweep_models(
                [bloated], "fixed-area",
                area_budget_mm2=6.548,
                min_capacity_bytes=1024 * 1024,
            )

    def test_min_capacity_exemption(self, xue_model):
        # The paper's Jan_S case: 1 MB (the smallest ladder step) is kept
        # even though its area overshoots the budget.
        jan_like = dataclasses.replace(
            xue_model, area_mm2=9.171, capacity_bytes=1024 * 1024
        )
        check_sweep_models(
            [jan_like], "fixed-area",
            area_budget_mm2=6.548,
            min_capacity_bytes=1024 * 1024,
        )

    def test_empty_sweep_is_fine(self):
        check_sweep_models([], "fixed-capacity")


def test_bounds_are_generous_over_table3():
    """Every guard ceiling sits well above the published extremes, so
    the guard can only trip on unit-scale mistakes."""
    models = published_models("fixed-capacity") + published_models("fixed-area")
    worst_latency = max(
        max(m.tag_latency_s, m.read_latency_s, m.set_latency_s, m.reset_latency_s)
        for m in models
    )
    worst_energy = max(
        max(m.hit_energy_j, m.miss_energy_j, m.write_energy_j) for m in models
    )
    assert guard.MAX_LATENCY_S > 100 * worst_latency
    # Kang_P's published write energy (375 nJ) is the extreme; an order
    # of magnitude of headroom still catches nJ-stored-as-J mistakes.
    assert guard.MAX_ENERGY_J > 10 * worst_energy
    assert guard.MAX_LEAKAGE_W > 10 * max(m.leakage_w for m in models)
