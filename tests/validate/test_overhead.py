"""Strict-mode overhead guard.

The firewall's acceptance bar: strict validation adds at most 2% to a
reference sweep.  The guards run a handful of float comparisons per
*replay* — work that costs milliseconds — so rather than timing a full
noisy sweep end to end, this pins the ratio directly: the measured
per-call cost of every guard the hot path invokes, scaled by a generous
calls-per-replay estimate, against the measured wall time of a real
replay (the same technique ``tests/obs/test_overhead.py`` uses for the
instrumentation hooks).
"""

import time

from repro.sim.config import gainestown
from repro.sim.hierarchy import filter_private
from repro.sim.system import replay_llc
from repro.validate.guard import guard_counts, guard_model, guard_result

#: Guard invocations per simulated cell, over-estimated.  A cell
#: actually guards one model, one counts object and one result (~3
#: calls); 10 leaves a factor-of-three of slack.
CALLS_PER_REPLAY = 10

#: Loop length for timing the guards.
N_CALLS = 500


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_strict_guards_cost_under_two_percent_of_a_replay(
    leela_trace, leela_session, xue_model
):
    arch = gainestown()
    private = filter_private(leela_trace, arch)
    # One simulated cell's heavy stages: the private-level filter plus
    # one LLC replay — the work each trio of guard calls rides on.
    replay_s = _best_of(
        3, lambda: (filter_private(leela_trace, arch),
                    replay_llc(private, xue_model, arch)),
    )

    result = leela_session.run(xue_model)
    counts = result.counts

    def guard_storm():
        for _ in range(N_CALLS):
            guard_model(xue_model, policy="strict")
            guard_counts(counts, policy="strict")
            guard_result(result, policy="strict")

    storm_s = _best_of(5, guard_storm)
    per_call_s = storm_s / (N_CALLS * 3)
    overhead_per_replay_s = per_call_s * CALLS_PER_REPLAY

    assert overhead_per_replay_s < 0.02 * replay_s, (
        f"strict guards cost {overhead_per_replay_s * 1e6:.1f}us per replay "
        f"({CALLS_PER_REPLAY} calls at {per_call_s * 1e9:.0f}ns) vs replay "
        f"time {replay_s * 1e3:.1f}ms"
    )


def test_off_mode_is_byte_identical(leela_session, xue_model, sram_model):
    """REPRO_VALIDATE=off must not change a passing run's numbers —
    guards reject, they never repair."""
    from repro.validate.policy import set_policy

    strict = leela_session.run(xue_model)
    baseline = leela_session.run(sram_model)
    set_policy("off")
    try:
        off = leela_session.run(xue_model)
        off_baseline = leela_session.run(sram_model)
    finally:
        set_policy(None)
    assert off == strict
    assert off_baseline == baseline
