"""Tests for the ``repro-cli doctor`` self-check."""

import io

from repro.validate import doctor
from repro.validate.doctor import (
    EXIT_CELLS,
    EXIT_ENVIRONMENT,
    EXIT_MODELS,
    EXIT_SWEEP,
    run_doctor,
)


def test_exit_codes_are_distinct_and_documented():
    codes = (EXIT_ENVIRONMENT, EXIT_CELLS, EXIT_MODELS, EXIT_SWEEP)
    assert codes == (10, 11, 12, 13)
    assert len(set(codes)) == 4


def test_clean_checkout_is_healthy():
    stream = io.StringIO()
    assert run_doctor(stream) == 0
    out = stream.getvalue()
    assert "doctor: healthy" in out
    assert "FAIL" not in out
    # One line per check plus the verdict.
    assert len(out.strip().splitlines()) == len(doctor.CHECKS) + 1


def test_first_failing_class_sets_exit_code(monkeypatch):
    def boom():
        raise RuntimeError("injected failure")

    def fine():
        return "ok"

    monkeypatch.setattr(doctor, "CHECKS", [
        (EXIT_ENVIRONMENT, "env ok", fine),
        (EXIT_CELLS, "cells bad", boom),
        (EXIT_SWEEP, "sweep bad", boom),
    ])
    stream = io.StringIO()
    assert run_doctor(stream) == EXIT_CELLS
    out = stream.getvalue()
    assert "FAIL [RuntimeError] injected failure" in out
    assert "doctor: exit 11" in out
    # Failures render structured, never as tracebacks.
    assert "Traceback" not in out


def test_later_checks_still_run_after_failure(monkeypatch):
    ran = []

    def boom():
        ran.append("boom")
        raise ValueError("nope")

    def fine():
        ran.append("fine")
        return "ok"

    monkeypatch.setattr(doctor, "CHECKS", [
        (EXIT_MODELS, "a", boom),
        (EXIT_SWEEP, "b", fine),
    ])
    assert run_doctor(io.StringIO()) == EXIT_MODELS
    assert ran == ["boom", "fine"]


def test_cli_doctor_subcommand(capsys):
    from repro.cli import main

    assert main(["doctor"]) == 0
    assert "doctor: healthy" in capsys.readouterr().out


def test_golden_sweep_below_cache_threshold():
    """The golden sweep must never touch the on-disk replay cache, so
    doctor results are independent of cache state."""
    from repro.sim.replay_cache import DEFAULT_MIN_ACCESSES

    assert doctor.GOLDEN_ACCESSES < DEFAULT_MIN_ACCESSES
