"""Tests for did-you-mean suggestions and config-mapping schema checks."""

import pytest

from repro.errors import CellParameterError, ConfigurationError, WorkloadError
from repro.validate.schema import (
    architecture_from_mapping,
    did_you_mean,
    unknown_key_message,
    validate_keys,
)


class TestDidYouMean:
    def test_close_match_found(self):
        assert did_you_mean("leela", ["leela", "lu", "mg"]) == "leela"
        assert did_you_mean("lela", ["leela", "lu", "mg"]) == "leela"

    def test_no_match_is_none(self):
        assert did_you_mean("zzzzzz", ["leela", "lu", "mg"]) is None

    def test_message_includes_suggestion_and_known(self):
        message = unknown_key_message("benchmark", "lela", ["leela", "lu"])
        assert "did you mean 'leela'?" in message
        assert "known: leela, lu" in message

    def test_message_without_suggestion(self):
        message = unknown_key_message("benchmark", "qqq", ["leela", "lu"])
        assert "did you mean" not in message
        assert "unknown benchmark 'qqq'" in message


class TestLookupBoundaries:
    """The library's name lookups all suggest the fix for a typo."""

    def test_cell_lookup_suggests(self):
        from repro.cells.library import cell_by_name

        with pytest.raises(CellParameterError, match="did you mean 'Kang_P'"):
            cell_by_name("Kang_X")

    def test_workload_lookup_suggests(self):
        from repro.workloads.profiles import profile

        with pytest.raises(WorkloadError, match="did you mean 'leela'"):
            profile("lela")

    def test_model_lookup_suggests(self):
        from repro.errors import ModelGenerationError
        from repro.nvsim.published import published_model

        with pytest.raises(ModelGenerationError, match="did you mean 'Xue_S'"):
            published_model("Xue")


class TestValidateKeys:
    def test_allowed_keys_pass(self):
        validate_keys(["a", "b"], ["a", "b", "c"])

    def test_unknown_key_rejected_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean 'n_cores'"):
            validate_keys(["n_coers"], ["n_cores", "clock_hz"], kind="field")


class TestArchitectureFromMapping:
    def test_valid_overrides(self):
        arch = architecture_from_mapping({"n_cores": 8, "llc_associativity": 8})
        assert arch.n_cores == 8
        assert arch.llc_associativity == 8

    def test_empty_mapping_is_default(self):
        from repro.sim.config import gainestown

        assert architecture_from_mapping({}) == gainestown()

    def test_typo_suggests_field(self):
        with pytest.raises(ConfigurationError, match="did you mean 'n_cores'"):
            architecture_from_mapping({"n_coers": 8})

    def test_nested_level_dict(self):
        arch = architecture_from_mapping(
            {"l2": {"capacity_bytes": 512 * 1024, "associativity": 8}}
        )
        assert arch.l2.capacity_bytes == 512 * 1024

    def test_nested_typo_suggests(self):
        with pytest.raises(
            ConfigurationError, match="did you mean 'capacity_bytes'"
        ):
            architecture_from_mapping({"l2": {"capacity_byte": 512 * 1024}})
