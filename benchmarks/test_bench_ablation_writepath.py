"""Ablation bench: LLC writes on vs off the critical path.

The paper (Section V-A-7) notes its simulator hides LLC write latency;
this ablation exposes it via ``llc_write_backpressure=1.0`` and measures
how much of the fixed-capacity speedup story survives.
"""

import dataclasses

from conftest import run_once

from repro import nvsim, sim, workloads


def _run(backpressure: float):
    trace = workloads.generate_trace("deepsjeng", n_accesses=60_000)
    arch = dataclasses.replace(
        sim.gainestown(), llc_write_backpressure=backpressure
    )
    session = sim.SimulationSession(trace, arch=arch)
    baseline = session.run(nvsim.sram_baseline())
    out = {}
    for name in ("Kang_P", "Xue_S", "Zhang_R"):
        out[name] = sim.normalize(
            session.run(nvsim.published_model(name)), baseline
        )
    return out


def test_bench_writes_off_critical_path(benchmark):
    results = run_once(benchmark, _run, 0.0)
    # Paper assumption: even 300 ns writes barely dent runtime.
    assert results["Zhang_R"].speedup > 0.95


def test_bench_writes_on_critical_path(benchmark):
    results = run_once(benchmark, _run, 1.0)
    # Exposed write latency throttles the slow-write technologies, the
    # "could more significantly impact system execution time" caveat.
    assert results["Zhang_R"].speedup < 0.8
    assert results["Xue_S"].speedup > results["Zhang_R"].speedup
