"""Benchmark: the techniques study (extension)."""

from conftest import run_once

from repro.experiments import techniques_study
from repro.experiments.common import ExperimentContext


def test_bench_techniques(benchmark):
    context = ExperimentContext(scale=0.4)
    study = run_once(
        benchmark, techniques_study.run, context, ("Kang_P",), ("gobmk", "ft")
    )
    ewt = study.evaluation("gobmk", "Kang_P", "early-write-termination")
    assert ewt.energy_reduction > 0.5
    bypass = study.evaluation("gobmk", "Kang_P", "write-bypass")
    assert bypass.treated.bypassed_writes > 0
    # Hybrid diverts a meaningful share of writes on every workload.
    for hybrid in study.hybrids:
        assert hybrid.nvm_write_reduction > 0.02
