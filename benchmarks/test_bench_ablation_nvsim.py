"""Ablation bench: analytical circuit models vs published Table III.

Re-runs a fixed-capacity sweep with LLC models *generated* by the
simplified NVSim-equivalent instead of the published values, checking
that the headline conclusions (who wins on energy, near-unity speedups)
are robust to the model source.
"""

from conftest import run_once

from repro import nvsim, sim, workloads
from repro.cells import JAN, KANG, SRAM, XUE
from repro.nvsim import CacheDesign, generate_llc_model

DESIGN = CacheDesign(capacity_bytes=2 * 1024 * 1024)


def _run(source: str):
    trace = workloads.generate_trace("bzip2", n_accesses=80_000)
    session = sim.SimulationSession(trace)
    if source == "published":
        models = {
            name: nvsim.published_model(name)
            for name in ("Kang_P", "Jan_S", "Xue_S")
        }
        baseline_model = nvsim.sram_baseline()
    else:
        models = {
            cell.display_name: generate_llc_model(cell, DESIGN)
            for cell in (KANG, JAN, XUE)
        }
        baseline_model = generate_llc_model(SRAM, DESIGN)
    baseline = session.run(baseline_model)
    return {
        name: sim.normalize(session.run(model), baseline)
        for name, model in models.items()
    }


def test_bench_published_models(benchmark):
    results = run_once(benchmark, _run, "published")
    assert results["Jan_S"].energy_ratio < 0.3
    assert results["Kang_P"].energy_ratio > results["Xue_S"].energy_ratio


def test_bench_generated_models(benchmark):
    # The conclusions must survive swapping in the analytical models.
    results = run_once(benchmark, _run, "generated")
    assert results["Jan_S"].energy_ratio < 0.3
    assert results["Kang_P"].energy_ratio > results["Xue_S"].energy_ratio
    assert 0.9 < results["Xue_S"].speedup < 1.1
