"""Benchmark: SLC-vs-MLC derivation sweep over the SLC library cells."""

from repro.cells.base import CellClass
from repro.cells.library import NVM_CELLS
from repro.nvsim.mlc import compare_slc_mlc


def test_bench_mlc_sweep(benchmark):
    slc_cells = [c for c in NVM_CELLS if c.bits_per_cell == 1]

    def run():
        return {c.display_name: compare_slc_mlc(c) for c in slc_cells}

    comparisons = benchmark(run)
    assert len(comparisons) == 8
    for name, comparison in comparisons.items():
        # MLC buys fixed-area capacity and costs read latency, always.
        assert comparison.capacity_gain >= 1.0, name
        assert comparison.read_latency_penalty > 1.0, name
