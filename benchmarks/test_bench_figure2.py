"""Benchmark: regenerate Figure 2 (fixed-area speedup/energy/ED^2P)."""

from conftest import BENCH_WORKLOADS, run_once

from repro.experiments import figure2


def test_bench_figure2(benchmark, bench_context):
    data = run_once(benchmark, figure2.run, bench_context, BENCH_WORKLOADS)
    assert data.configuration == "fixed-area"
    # Capacity buys the dense NVMs speedup on the capacity-starved
    # workloads (paper: >10% winners on bzip2/gobmk-class workloads).
    assert data.metric("Xue_S", "bzip2", "speedup") > 1.05
    assert data.metric("Hayakawa_R", "deepsjeng", "speedup") > 1.05
    # Jan_S at 1 MB cannot win capacity speedups.
    for workload in BENCH_WORKLOADS:
        assert data.metric("Jan_S", workload, "speedup") < 1.03
