"""Benchmark: regenerate the Section V-C core-sweep study (reduced grid)."""

from conftest import run_once

from repro.experiments import coresweep


def test_bench_coresweep(benchmark):
    result = run_once(
        benchmark,
        coresweep.run,
        ("mg", "cg"),
        (1, 4, 8),
        ("Jan_S", "Xue_S", "Hayakawa_R", "SRAM"),
        0.5,
    )
    assert "mg" in result.baselines
    # Capacity strain: at 8 cores the dense NVM beats the 1 MB Jan_S.
    assert result.speedup("mg", 8, "Hayakawa_R") > result.speedup("mg", 8, "Jan_S")
    # Weak scaling: 4 cores do 4x the work of the 1-core baseline in
    # less than 4x... i.e. per-unit-work speedup exceeds 1.
    assert result.speedup("mg", 4, "SRAM") > 1.0
