"""Benchmark: regenerate Figure 4 (feature correlation heatmaps)."""

from conftest import run_once

from repro.experiments import figure4


def test_bench_figure4(benchmark, bench_context):
    result = run_once(benchmark, figure4.run, bench_context)
    assert len(result.ai_reports) == 6
    # Paper's AI-scope pattern: write-behaviour features dominate energy,
    # totals decorrelate.
    report = result.report("Jan_S", "fixed-capacity")
    write_strength = abs(report.correlation("write_local_entropy", "energy"))
    assert write_strength > 0.9
    assert abs(report.correlation("total_reads", "energy")) < write_strength
