"""Ablation bench: LLC replacement policy sensitivity.

Checks that the headline NVM conclusions do not hinge on LRU: the energy
winners are unchanged under random and SRRIP replacement, while the
thrash-prone workload's miss rate shifts the way the policies predict.
"""

import dataclasses

from conftest import run_once

from repro import nvsim, sim, workloads


def _run(policy: str):
    # Full-length trace: the sweep component needs >1 pass before
    # replacement policy can matter on the thrash pattern.
    trace = workloads.generate_trace("bzip2")
    arch = dataclasses.replace(sim.gainestown(), llc_replacement=policy)
    session = sim.SimulationSession(trace, arch=arch)
    baseline = session.run(nvsim.sram_baseline())
    jan = sim.normalize(session.run(nvsim.published_model("Jan_S")), baseline)
    kang = sim.normalize(session.run(nvsim.published_model("Kang_P")), baseline)
    return baseline.mpki, jan, kang


def test_bench_replacement_lru(benchmark):
    mpki, jan, kang = run_once(benchmark, _run, "lru")
    assert jan.energy_ratio < 0.3
    assert kang.energy_ratio > jan.energy_ratio


def test_bench_replacement_random(benchmark):
    lru_mpki, _, _ = _run("lru")
    mpki, jan, kang = run_once(benchmark, _run, "random")
    # Random replacement beats LRU on the cyclic-sweep workload.
    assert mpki < lru_mpki
    assert jan.energy_ratio < 0.3
    assert kang.energy_ratio > jan.energy_ratio


def test_bench_replacement_srrip(benchmark):
    mpki, jan, kang = run_once(benchmark, _run, "srrip")
    assert jan.energy_ratio < 0.3
    assert kang.energy_ratio > jan.energy_ratio
