"""Microbenchmarks for the performance-critical library components."""

import numpy as np

from repro import units
from repro.prism.entropy import global_entropy, local_entropy
from repro.prism.profile import extract_features
from repro.sim.cache import SetAssocCache
from repro.sim.config import gainestown
from repro.sim.hierarchy import filter_private
from repro.sim.llc import simulate_llc
from repro.sim.system import replay_llc
from repro.nvsim.published import sram_baseline
from repro.workloads.generators import generate_trace


def test_bench_trace_generation(benchmark):
    trace = benchmark(generate_trace, "leela", 20190901, 50_000)
    assert len(trace) == 50_000


def test_bench_cache_access_loop(benchmark):
    rng = np.random.default_rng(9)
    blocks = rng.integers(0, 1 << 16, size=20_000)
    writes = rng.random(20_000) < 0.3

    def run():
        cache = SetAssocCache(2 * units.MB, 64, 16)
        for block, is_write in zip(blocks, writes):
            cache.access(int(block), bool(is_write))
        return cache.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_bench_private_filter(benchmark):
    trace = generate_trace("leela", n_accesses=30_000)
    arch = gainestown()
    result = benchmark.pedantic(
        filter_private, args=(trace, arch), rounds=1, iterations=1
    )
    assert result.total_accesses == 30_000


def test_bench_private_filter_reference(benchmark):
    """The dict-of-caches reference engine on the same workload, for a
    side-by-side with ``test_bench_private_filter`` (the fast engine)."""
    trace = generate_trace("leela", n_accesses=30_000)
    arch = gainestown()
    result = benchmark.pedantic(
        filter_private,
        args=(trace, arch),
        kwargs={"engine": "reference"},
        rounds=1,
        iterations=1,
    )
    assert result.total_accesses == 30_000


def test_bench_private_filter_multithreaded(benchmark):
    """Coherence-heavy path: the multi-threaded NPB trace exercises the
    directory, the most expensive part of private filtering."""
    trace = generate_trace("cg", n_accesses=30_000)
    arch = gainestown()
    result = benchmark.pedantic(
        filter_private, args=(trace, arch), rounds=1, iterations=1
    )
    assert result.total_accesses == 30_000


def test_bench_llc_replay(benchmark):
    trace = generate_trace("bzip2", n_accesses=40_000)
    arch = gainestown()
    private = filter_private(trace, arch)
    counts = benchmark.pedantic(
        replay_llc,
        args=(private, sram_baseline(), arch),
        rounds=1,
        iterations=1,
    )
    assert counts.read_lookups > 0


def test_bench_llc_replay_reference(benchmark):
    """Reference-engine LLC replay, side-by-side with
    ``test_bench_llc_replay`` (the fast engine)."""
    trace = generate_trace("bzip2", n_accesses=40_000)
    arch = gainestown()
    private = filter_private(trace, arch)
    counts = benchmark.pedantic(
        simulate_llc,
        args=(private.stream,),
        kwargs={
            "capacity_bytes": sram_baseline().capacity_bytes,
            "associativity": arch.llc_associativity,
            "block_bytes": arch.llc_block_bytes,
            "n_cores": arch.n_cores,
            "mlp_window": arch.mlp_window_instructions,
            "mlp_ceiling": arch.max_mlp,
            "engine": "reference",
        },
        rounds=1,
        iterations=1,
    )
    assert counts.read_lookups > 0


def test_bench_llc_replay_vector(benchmark):
    """Vector-engine LLC replay, side-by-side with
    ``test_bench_llc_replay`` (fast) and the reference variant."""
    trace = generate_trace("bzip2", n_accesses=40_000)
    arch = gainestown()
    private = filter_private(trace, arch)
    counts = benchmark.pedantic(
        simulate_llc,
        args=(private.stream,),
        kwargs={
            "capacity_bytes": sram_baseline().capacity_bytes,
            "associativity": arch.llc_associativity,
            "block_bytes": arch.llc_block_bytes,
            "n_cores": arch.n_cores,
            "mlp_window": arch.mlp_window_instructions,
            "mlp_ceiling": arch.max_mlp,
            "engine": "vector",
        },
        rounds=1,
        iterations=1,
    )
    assert counts.read_lookups > 0


def test_bench_entropy_extraction(benchmark):
    rng = np.random.default_rng(10)
    addresses = rng.integers(0, 1 << 32, size=200_000).astype(np.uint64)
    value = benchmark(global_entropy, addresses)
    assert value > 0


def test_bench_feature_extraction(benchmark):
    trace = generate_trace("mg", n_accesses=60_000)
    features = benchmark(extract_features, trace)
    assert features.total_reads > 0
