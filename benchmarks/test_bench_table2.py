"""Benchmark: regenerate Table II (cell parameters + provenance)."""

from repro.experiments import table2


def test_bench_table2(benchmark):
    result = benchmark(table2.run)
    assert result.all_specifiable
    assert len(result.validations) == 10
    rendered = table2.render(result)
    assert "†" in rendered and "*" in rendered


def test_bench_table2_render(benchmark):
    result = table2.run()
    text = benchmark(table2.render, result)
    assert "Oh_P" in text and "Zhang_R" in text
