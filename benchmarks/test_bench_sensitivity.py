"""Benchmark: the robustness (sensitivity) sweep at near-full scale."""

from conftest import run_once

from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark):
    result = run_once(benchmark, sensitivity.run, 0.6)
    assert result.robust, sensitivity.render(result)
