"""Ablation bench: local-entropy skip bits M (paper uses M=10).

Profiles the AI workloads at M in {6, 10, 12} and checks the Figure 4
energy-correlation conclusion is robust to the page-size choice.
"""

from conftest import run_once

import numpy as np

from repro import nvsim, prism, sim, workloads
from repro.correlate import pearson

AI = ("deepsjeng", "leela", "exchange2")


def _run(skip_bits: int):
    energies = []
    entropies = []
    for name in AI:
        trace = workloads.generate_trace(name, n_accesses=60_000)
        session = sim.SimulationSession(trace)
        baseline = session.run(nvsim.sram_baseline())
        norm = sim.normalize(
            session.run(nvsim.published_model("Jan_S")), baseline
        )
        features = prism.extract_features(trace, skip_bits=skip_bits)
        energies.append(norm.energy_ratio)
        entropies.append(features.write_local_entropy)
    return pearson(np.array(entropies), np.array(energies))


def test_bench_entropy_m10(benchmark):
    correlation = run_once(benchmark, _run, 10)
    assert abs(correlation) > 0.8


def test_bench_entropy_m6(benchmark):
    correlation = run_once(benchmark, _run, 6)
    assert abs(correlation) > 0.6


def test_bench_entropy_m12(benchmark):
    correlation = run_once(benchmark, _run, 12)
    assert abs(correlation) > 0.6
