"""Benchmark: regenerate Figure 1 (fixed-capacity speedup/energy/ED^2P)."""

from conftest import BENCH_WORKLOADS, run_once

from repro.experiments import figure1


def test_bench_figure1(benchmark, bench_context):
    data = run_once(benchmark, figure1.run, bench_context, BENCH_WORKLOADS)
    assert set(data.results) == set(figure1.MODEL_ORDER)
    # Paper shape: near-unity speedups, order-of-magnitude STT energy wins.
    for workload in BENCH_WORKLOADS:
        assert 0.85 < data.metric("Xue_S", workload, "speedup") < 1.1
        assert data.metric("Jan_S", workload, "energy_ratio") < 0.5
    # Kang_P worst energy on the write-heavy AI workload.
    assert data.metric("Kang_P", "deepsjeng", "energy_ratio") == max(
        data.metric(llc, "deepsjeng", "energy_ratio")
        for llc in figure1.MODEL_ORDER
    )
