"""Shared fixtures for the benchmark harness.

Each ``test_bench_*.py`` regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index).  Heavy experiment runs
use ``benchmark.pedantic`` with a single round — the interesting output
is the regenerated data (asserted for shape), the timing is secondary.

``BENCH_SCALE`` shortens traces relative to the full experiment runs;
capacity-knee effects need >= ~0.6, which is what the figure benches
use via the shared context below.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext

#: Trace-length scale for benchmark runs.
BENCH_SCALE = 0.6

#: Workload subset used by the figure benches (covers s.t./m.t.,
#: capacity-sensitive and AI workloads).
BENCH_WORKLOADS = ("bzip2", "gobmk", "cg", "mg", "deepsjeng", "leela", "exchange2")


@pytest.fixture(scope="session")
def bench_context():
    """One shared experiment context for the whole benchmark session."""
    return ExperimentContext(scale=BENCH_SCALE)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
