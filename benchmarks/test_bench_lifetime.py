"""Benchmark: the Section VII lifetime study (extension)."""

from conftest import run_once

from repro.experiments import lifetime
from repro.experiments.common import ExperimentContext


def test_bench_lifetime(benchmark):
    context = ExperimentContext(scale=0.4)
    study = run_once(
        benchmark, lifetime.run, context, lifetime.DEFAULT_LLCS,
        ("gobmk", "ft", "leela", "mg"),
    )
    # RRAM outlives PCRAM by the Table I endurance ratio's order.
    for workload in study.workloads:
        assert study.lifetime_years("Zhang_R", workload) > 50 * study.lifetime_years(
            "Kang_P", workload
        )
