"""Benchmark: regenerate Table VI (workload features via PRISM)."""

from conftest import run_once

from repro.experiments import table6


def test_bench_table6(benchmark, bench_context):
    result = run_once(benchmark, table6.run, bench_context)
    assert len(result.features) == 16
    extremes = table6.extreme_workloads(result)
    assert extremes["total_reads"][0] == "exchange2"
    # GemsFDTD is the strict maximum at full scale (asserted in tests/);
    # at the bench's reduced scale its streaming footprint shrinks
    # proportionally, so deepsjeng can overtake it.
    assert extremes["footprint90_writes"][0] in ("GemsFDTD", "deepsjeng")
