"""Benchmark: regenerate Table V (workload LLC mpki on the baseline)."""

from conftest import run_once

from repro.experiments import table5


def test_bench_table5(benchmark, bench_context):
    result = run_once(benchmark, table5.run, bench_context)
    assert len(result.rows) == 20
    # The paper's selection bar (with the documented exchange2 exemption).
    assert result.stress_criterion_met
    measured = {r.workload: r.measured_mpki for r in result.rows}
    assert measured["deepsjeng"] > measured["vips"]
