"""Benchmark: regenerate Table III (LLC models, both configurations).

The circuit model runs on all eleven cells for fixed-capacity and
fixed-area; the assertions re-check the fidelity regime the tests pin.
"""

from repro.experiments import table3


def test_bench_table3(benchmark):
    result = benchmark(table3.run)
    assert len(result.comparisons) == 22
    for comparison in result.comparisons:
        if comparison.configuration != "fixed-capacity":
            continue
        assert 1 / 5 < comparison.ratio("read_latency_s") < 5


def test_bench_table3_render(benchmark):
    result = table3.run()
    text = benchmark(
        lambda: table3.render(result, "fixed-capacity")
        + table3.render(result, "fixed-area")
    )
    assert "Generated/published ratios" in text
