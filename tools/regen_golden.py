#!/usr/bin/env python
"""Regenerate the golden-result regression snapshots.

Runs every pinned experiment at the golden scale/seed and rewrites
``tests/golden/snapshots/<experiment>.json``.  Run this ONLY when a
change to the numbers is intended — review the diff it produces like
any other code change; the golden suite (``tests/golden/``) exists to
make unintended numeric drift loud.

Usage::

    PYTHONPATH=src python tools/regen_golden.py [--only table2 ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.common import ExperimentContext  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.validate.golden import save_snapshot  # noqa: E402
from repro.workloads.generators import DEFAULT_SEED  # noqa: E402

#: The pinned scale: small enough for a fast suite, large enough that
#: every experiment exercises its full code path.
GOLDEN_SCALE = 0.05

#: The pinned workload seed.
GOLDEN_SEED = DEFAULT_SEED

#: Experiments pinned by the golden suite.  ``techniques`` is excluded:
#: it is by far the slowest experiment and its numbers are already
#: covered by dedicated unit tests.
GOLDEN_EXPERIMENTS = (
    "table2",
    "table3",
    "table5",
    "table6",
    "figure1",
    "figure2",
    "figure4",
    "coresweep",
    "sensitivity",
    "lifetime",
    "compression",
)

SNAPSHOT_DIR = REPO / "tests" / "golden" / "snapshots"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="regenerate only these experiments (default: all)",
    )
    args = parser.parse_args(argv)
    names = args.only if args.only else GOLDEN_EXPERIMENTS
    unknown = sorted(set(names) - set(GOLDEN_EXPERIMENTS))
    if unknown:
        parser.error(
            f"not golden experiments: {', '.join(unknown)} "
            f"(choose from {', '.join(GOLDEN_EXPERIMENTS)})"
        )
    context = ExperimentContext(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    features = None
    for name in names:
        title, render, features = run_experiment(name, context, features)
        path = save_snapshot(
            SNAPSHOT_DIR / f"{name}.json",
            {
                "experiment": name,
                "scale": GOLDEN_SCALE,
                "seed": GOLDEN_SEED,
                "title": title,
                "render": render,
            },
        )
        lines = len(render.splitlines())
        print(f"wrote {path.relative_to(REPO)} ({lines} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
