#!/usr/bin/env python
"""Record engine benchmark snapshots as ``BENCH_<PR>.json``.

Runs the engine-sensitive microbenchmarks (the same shapes as
``benchmarks/test_bench_components.py``) under every replay engine,
asserts the engines produce bit-identical results, and writes one JSON
snapshot — wall-clock per (benchmark, engine), speedups vs the
reference engine, and a host fingerprint so numbers from different
machines are never compared naively.

Usage::

    PYTHONPATH=src python tools/bench_record.py --out BENCH_0006.json
    PYTHONPATH=src python tools/bench_record.py --reps 7 --pretty

``--serve`` switches the recorder to the serve-fleet mode behind
``BENCH_0008.json``: instead of engine microbenchmarks it drives
declarative load scenarios (:mod:`repro.loadgen`) against real
subprocess fleets at each ``--shard-counts`` point and records the
percentile/throughput/dedup report per scenario::

    PYTHONPATH=src python tools/bench_record.py --serve \
        --scenario scaling --scenario compute \
        --shard-counts 1,2,4 --out BENCH_0008.json

The snapshot is meant to be committed: one file per PR that changes
performance-relevant code, forming a tracked perf trajectory (see
ROADMAP.md).  Timings are best-of-``--reps`` to shed scheduler noise;
speedup ratios are far more stable across hosts than absolute times.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

# Keep the replay cache out of the way: benchmarks must measure the
# engines, not cache hits.
os.environ.setdefault("REPRO_REPLAY_CACHE", "0")

import numpy as np

#: Snapshot schema version.
BENCH_SCHEMA = 1

#: Engines benchmarked, reference first (the speedup denominator).
BENCH_ENGINES = ("reference", "fast", "vector")


def host_fingerprint() -> dict:
    """Enough host identity to interpret the numbers later."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _best_of(fn: Callable[[], object], reps: int) -> Tuple[float, object]:
    """Best wall-clock over ``reps`` runs, plus the (last) result."""
    best = float("inf")
    out = None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def build_benchmarks() -> List[Tuple[str, Callable[[str], object]]]:
    """The engine-sensitive benchmark closures, input built once each.

    Every closure takes the engine name and returns the replay result,
    so the harness can both time it and assert cross-engine equality.
    """
    from repro.nvsim.published import sram_baseline
    from repro.sim.config import gainestown
    from repro.sim.hierarchy import filter_private
    from repro.sim.llc import simulate_llc
    from repro.workloads.generators import generate_trace

    arch = gainestown()
    leela = generate_trace("leela", n_accesses=30_000)
    cg = generate_trace("cg", n_accesses=30_000)
    bzip2 = generate_trace("bzip2", n_accesses=40_000)
    private = filter_private(bzip2, arch)
    llc_kwargs = dict(
        associativity=arch.llc_associativity,
        block_bytes=arch.llc_block_bytes,
        n_cores=arch.n_cores,
        mlp_window=arch.mlp_window_instructions,
        mlp_ceiling=arch.max_mlp,
    )
    sram_capacity = sram_baseline().capacity_bytes

    def private_filter(engine: str):
        return filter_private(leela, arch, engine=engine)

    def private_filter_mt(engine: str):
        return filter_private(cg, arch, engine=engine)

    def llc_replay(engine: str):
        return simulate_llc(
            private.stream, sram_capacity, engine=engine, **llc_kwargs
        )

    def llc_capacity_sweep(engine: str):
        # The fixed-area experiments' shape: one stream replayed at
        # several capacities.
        return tuple(
            simulate_llc(private.stream, cap, engine=engine, **llc_kwargs)
            for cap in (256 * 1024, 512 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024)
        )

    return [
        ("private_filter", private_filter),
        ("private_filter_mt", private_filter_mt),
        ("llc_replay", llc_replay),
        ("llc_capacity_sweep", llc_capacity_sweep),
    ]


def _private_key(result) -> tuple:
    """Comparable digest of a PrivateResult (streams are numpy arrays,
    so the dataclass itself has no useful ``==``)."""
    stream = result.stream
    return (
        stream.blocks.tobytes(),
        stream.writes.tobytes(),
        stream.cores.tobytes(),
        stream.instr_positions.tobytes(),
        tuple(
            (c.instructions, c.accesses, c.l1_hits, c.l1_misses, c.l2_hits, c.l2_misses)
            for c in result.per_core
        ),
    )


def comparable(value) -> object:
    """Normalise a benchmark result for cross-engine equality checks."""
    if isinstance(value, tuple):
        return tuple(comparable(v) for v in value)
    if hasattr(value, "stream"):
        return _private_key(value)
    return value  # LLCCounts compares field-wise


def record(reps: int) -> dict:
    """Run every benchmark under every engine; return the snapshot."""
    benches = build_benchmarks()
    out: Dict[str, dict] = {}
    for name, fn in benches:
        timings: Dict[str, dict] = {}
        results: Dict[str, object] = {}
        for engine in BENCH_ENGINES:
            best, result = _best_of(lambda: fn(engine), reps)
            timings[engine] = {"best_s": round(best, 6), "reps": reps}
            results[engine] = comparable(result)
        baseline = results["reference"]
        for engine in BENCH_ENGINES[1:]:
            if results[engine] != baseline:
                raise SystemExit(
                    f"FATAL: engine {engine!r} diverged from reference "
                    f"on benchmark {name!r} — do not record this snapshot"
                )
        ref_s = timings["reference"]["best_s"]
        timings["speedup_vs_reference"] = {
            engine: round(ref_s / timings[engine]["best_s"], 2)
            for engine in BENCH_ENGINES[1:]
        }
        out[name] = timings
        print(
            f"{name}: "
            + "  ".join(
                f"{engine} {timings[engine]['best_s'] * 1e3:.1f}ms"
                for engine in BENCH_ENGINES
            ),
            file=sys.stderr,
        )
    return {
        "schema": BENCH_SCHEMA,
        "recorded_unix": int(time.time()),
        "host": host_fingerprint(),
        "engines": list(BENCH_ENGINES),
        "benchmarks": out,
    }


def record_serve(scenario_names, shard_counts, workers: int) -> dict:
    """Sweep each load scenario across real fleets; return the snapshot.

    Scenarios with ``service_time_ms > 0`` run the emulated backend
    (jobs sleep a calibrated service time with the GIL released), which
    is the only honest way to measure shard *scaling* on a small host;
    unpaced scenarios record the real-compute control.  The host
    fingerprint travels with the numbers either way.
    """
    from repro.loadgen import (
        render_fleet,
        resolve_scenario,
        summarize_fleet,
        sweep_shards,
    )

    scenarios: Dict[str, dict] = {}
    for name in scenario_names:
        scenario = resolve_scenario(name)
        print(f"scenario {scenario.name}: shard counts {shard_counts}",
              file=sys.stderr)
        runs = sweep_shards(
            scenario, shard_counts, workers=workers,
            progress=lambda message: print(f"  {message}", file=sys.stderr),
        )
        report = summarize_fleet(runs, scenario.as_dict())
        scenarios[scenario.name] = report
        print(render_fleet(report), file=sys.stderr, end="")
    return {
        "schema": BENCH_SCHEMA,
        "recorded_unix": int(time.time()),
        "host": host_fingerprint(),
        "serve": {
            "shard_counts": list(shard_counts),
            "workers_per_shard": workers,
            "scenarios": scenarios,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON snapshot here (default: stdout)",
    )
    parser.add_argument(
        "--reps", type=int, default=5,
        help="timing repetitions per (benchmark, engine); best is kept",
    )
    parser.add_argument(
        "--pretty", action="store_true", help="indent the JSON output"
    )
    parser.add_argument(
        "--dse", action="store_true",
        help="also run tools/dse_smoke.py's planner-vs-exhaustive "
        "measurement and embed its summary (savings ratio, surrogate "
        "error) in the snapshot",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="record serve-fleet load scenarios instead of engine "
        "microbenchmarks (the BENCH_0008.json mode)",
    )
    parser.add_argument(
        "--compression", action="store_true",
        help="also run tools/compression_smoke.py's compressed-LLC "
        "acceptance measurement and embed its summary (lifetime gains, "
        "byte fractions, orderings) in the snapshot "
        "(the BENCH_0010.json mode)",
    )
    parser.add_argument(
        "--scenario", action="append", metavar="NAME_OR_PATH",
        help="load scenario(s) for --serve; repeatable "
        "(default: scaling, compute)",
    )
    parser.add_argument(
        "--shard-counts", default="1,2,4", metavar="N,N,...",
        help="fleet sizes swept by --serve (default: 1,2,4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker threads per shard in --serve mode (default: 2)",
    )
    args = parser.parse_args(argv)
    if args.serve:
        try:
            shard_counts = [
                int(part) for part in args.shard_counts.split(",") if part
            ]
        except ValueError:
            raise SystemExit(
                f"--shard-counts must be comma-separated integers, "
                f"got {args.shard_counts!r}"
            )
        snapshot = record_serve(
            args.scenario or ["scaling", "compute"],
            shard_counts, args.workers,
        )
        text = json.dumps(snapshot, indent=2 if args.pretty else None,
                          sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"snapshot written to {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    snapshot = record(args.reps)
    if args.dse:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import dse_smoke

        summary = dse_smoke.measure()
        print(
            f"dse: {summary['cells']} cells, "
            f"{summary['savings_ratio']}x fewer simulations, "
            f"frontier match: {summary['frontier_matches_exhaustive']}",
            file=sys.stderr,
        )
        snapshot["dse"] = summary
    if args.compression:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import compression_smoke

        summary = compression_smoke.measure()
        print(
            f"compression: {summary['cells']} cells, "
            f"lifetime ordered: {summary['lifetime_ordered']}, "
            f"energy ordered: {summary['energy_ordered']}, "
            f"golden mismatches: {summary['golden_mismatches']}",
            file=sys.stderr,
        )
        snapshot["compression"] = summary
    text = json.dumps(snapshot, indent=2 if args.pretty else None, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"snapshot written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
