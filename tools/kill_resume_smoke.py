#!/usr/bin/env python
"""CI smoke: SIGKILL a checkpointed run mid-sweep, resume, diff.

Exercises the whole resilience stack end-to-end, from outside the
process: a paced `repro-experiments --run-dir` run is killed (whole
process group, workers included) once its journal holds a few cells,
then `--resume` finishes the job. The resumed report must match an
uninterrupted reference byte-for-byte once wall-clock timing stamps
are stripped — the output-identity invariant
``serial == parallel == resumed``.

Exit 0 on success; nonzero with a diagnostic otherwise. Usage:

    python tools/kill_resume_smoke.py [--scale 0.1] [--workdir DIR]
"""

from __future__ import annotations

import argparse
import difflib
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: Wall-clock noise: stdout "[1.2s]" stamps, report "(generated in …)".
_TIMING = re.compile(r"\[[0-9.]+s\]|_\(generated in [0-9.]+s\)_")


def _normalize(text: str) -> str:
    return _TIMING.sub("", text)


def _base_env(cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO / "src"), env.get("PYTHONPATH", "")])
    )
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_FAULT_HOOK", None)
    return env


def _cmd(args: list) -> list:
    return [sys.executable, "-m", "repro.experiments.runner", *args]


def _journal_lines(path: Path) -> int:
    try:
        return len(path.read_text().splitlines())
    except FileNotFoundError:
        return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="0.1")
    parser.add_argument("--only", default="figure1")
    parser.add_argument("--jobs", default="2")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh temp dir)")
    parser.add_argument("--min-journaled", type=int, default=3,
                        help="cells that must be journaled before the kill")
    options = parser.parse_args(argv)

    workdir = Path(options.workdir or tempfile.mkdtemp(prefix="kill-resume-"))
    workdir.mkdir(parents=True, exist_ok=True)
    env = _base_env(workdir / "replay-cache")
    base = ["--scale", options.scale, "--only", options.only,
            "--jobs", options.jobs]

    print(f"[1/3] reference run ({options.only} @ {options.scale}) ...")
    reference = subprocess.run(
        _cmd(base + ["--write", str(workdir / "ref.md")]),
        env=env, cwd=str(REPO), capture_output=True, text=True, timeout=600,
    )
    if reference.returncode != 0:
        print(reference.stdout + reference.stderr, file=sys.stderr)
        print("FAIL: reference run failed", file=sys.stderr)
        return 1

    run_dir = workdir / "run"
    journal = run_dir / "checkpoint.jsonl"
    victim_env = dict(env)
    # Pace the sweep so the kill reliably lands mid-run. The hook lives
    # in the test harness; fall back to unpaced if it isn't importable
    # (e.g. an installed package without the repo checkout).
    if (REPO / "tests" / "faults" / "hooks.py").exists():
        victim_env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO), victim_env["PYTHONPATH"]]
        )
        victim_env["REPRO_FAULT_HOOK"] = "tests.faults.hooks:sleepy"
        victim_env["REPRO_FAULT_SLEEP"] = "0.2"

    print("[2/3] victim run, SIGKILL once "
          f"{options.min_journaled} cells are journaled ...")
    victim = subprocess.Popen(
        _cmd(base + ["--run-dir", str(run_dir),
                     "--write", str(workdir / "dead.md")]),
        env=victim_env, cwd=str(REPO),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.time() + 300
    try:
        while _journal_lines(journal) < options.min_journaled:
            if victim.poll() is not None:
                print("FAIL: victim finished before it could be killed "
                      "(raise --min-journaled or lower --scale)",
                      file=sys.stderr)
                return 1
            if time.time() > deadline:
                print("FAIL: victim never journaled enough cells",
                      file=sys.stderr)
                return 1
            time.sleep(0.05)
    finally:
        try:
            os.killpg(victim.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    victim.wait(timeout=60)
    journaled = _journal_lines(journal)
    print(f"      killed with {journaled} cells journaled")

    print("[3/3] resume and diff against the reference ...")
    resumed = subprocess.run(
        _cmd(base + ["--resume", str(run_dir),
                     "--write", str(workdir / "final.md")]),
        env=env, cwd=str(REPO), capture_output=True, text=True, timeout=600,
    )
    if resumed.returncode != 0:
        print(resumed.stdout + resumed.stderr, file=sys.stderr)
        print("FAIL: resume run failed", file=sys.stderr)
        return 1
    if "resuming from" not in resumed.stdout:
        print("FAIL: resume run did not report resuming", file=sys.stderr)
        return 1
    skipped = re.search(r"checkpoint: (\d+) cells skipped", resumed.stdout)
    if not skipped or int(skipped.group(1)) < 1:
        print("FAIL: resume run skipped no journaled cells", file=sys.stderr)
        return 1

    final = _normalize((workdir / "final.md").read_text())
    ref = _normalize((workdir / "ref.md").read_text())
    if final != ref:
        sys.stderr.writelines(difflib.unified_diff(
            ref.splitlines(keepends=True), final.splitlines(keepends=True),
            fromfile="reference", tofile="resumed",
        ))
        print("FAIL: resumed report differs from the reference",
              file=sys.stderr)
        return 1

    print(f"OK: resumed output identical "
          f"(skipped {skipped.group(1)} journaled cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
