#!/usr/bin/env python
"""End-to-end smoke of the experiment service daemon (CI `serve-smoke`).

Starts a real ``repro-cli serve`` subprocess, then drives the full
client lifecycle against it:

1. health check;
2. submit a tiny golden-scale sweep (plus concurrent duplicates);
3. poll every job to completion and fetch results;
4. prove deduplication: one engine execution per distinct spec and
   byte-identical payloads for duplicate submitters;
5. compare each rendered result against the golden snapshots with the
   tolerance-aware comparator;
6. SIGTERM the daemon and assert a clean, zero-exit graceful drain.

Exits nonzero (with a message) on the first failed expectation.
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tools"))

from regen_golden import GOLDEN_SEED, SNAPSHOT_DIR  # noqa: E402

from repro.serve import ServeClient  # noqa: E402
from repro.validate.golden import compare_rendered, load_snapshot  # noqa: E402

#: Experiments the smoke drives (a representative slice of the golden set).
SMOKE_EXPERIMENTS = ("table2", "table5", "figure2")

#: Duplicate submissions per experiment (all must coalesce onto one job).
DUPLICATES = 3


def fail(message: str) -> "None":
    print(f"serve-smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    import os

    state_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "2", "--dir", state_dir,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"(http://\S+)", banner)
        if not match:
            fail(f"no URL in daemon banner {banner!r}")
        client = ServeClient(match.group(1))

        health = client.health()
        if health["status"] != "ok":
            fail(f"health status {health['status']!r}")
        print(f"daemon healthy at {client.url} (v{health['version']})")

        job_ids = {}
        for experiment in SMOKE_EXPERIMENTS:
            snapshot = load_snapshot(SNAPSHOT_DIR / f"{experiment}.json")
            ids = set()
            for _ in range(DUPLICATES):
                response = client.submit(
                    experiment, scale=snapshot["scale"], seed=GOLDEN_SEED
                )
                ids.add(response["job"]["id"])
            if len(ids) != 1:
                fail(f"{experiment}: {len(ids)} job ids for duplicates")
            job_ids[experiment] = ids.pop()
        print(f"submitted {len(job_ids)} specs x{DUPLICATES} duplicates")

        for experiment, job_id in job_ids.items():
            record = client.wait(job_id, timeout_s=300)
            if record["state"] != "done":
                fail(f"{experiment}: job {record['state']}: {record['error']}")
            if record["submissions"] != DUPLICATES:
                fail(
                    f"{experiment}: {record['submissions']} submissions "
                    f"recorded, expected {DUPLICATES}"
                )
            payloads = {client.result_bytes(job_id) for _ in range(3)}
            if len(payloads) != 1:
                fail(f"{experiment}: result payload not byte-stable")
            snapshot = load_snapshot(SNAPSHOT_DIR / f"{experiment}.json")
            mismatches = compare_rendered(
                snapshot["render"], client.result(job_id)["render"],
                label=experiment,
            )
            if mismatches:
                fail(
                    f"{experiment}: golden mismatch:\n" + "\n".join(mismatches)
                )
            print(f"{experiment}: done, deduped, matches golden")

        counters = client.metrics()["counters"]
        executed = counters.get("serve.jobs.executed")
        deduped = counters.get("serve.jobs.deduped")
        if executed != len(SMOKE_EXPERIMENTS):
            fail(f"{executed} executions for {len(SMOKE_EXPERIMENTS)} specs")
        if deduped != len(SMOKE_EXPERIMENTS) * (DUPLICATES - 1):
            fail(f"unexpected dedup count {deduped}")
        print(f"dedup proven: {executed} executions, {deduped} coalesced")

        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        if proc.returncode != 0:
            fail(f"daemon exit {proc.returncode}: {err}")
        if "drained:" not in out:
            fail(f"no drain banner in daemon output: {out!r}")
        print(f"graceful drain: {out.strip().splitlines()[-1]}")
        print("serve-smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
