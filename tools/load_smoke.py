#!/usr/bin/env python
"""CI load smoke: a 2-shard fleet must dedup, stay byte-identical, and
lose nothing across a mid-run shard drain.

Boots a real subprocess fleet (shared result store, router front end),
offers the pinned ``smoke`` scenario through the router, and asserts
the three fleet invariants the PR guarantees:

1. **dedup** — fleet-wide, one computation per distinct spec digest
   (``serve.jobs.executed + serve.jobs.store_satisfied`` equals the
   number of distinct digests offered; every duplicate coalesces);
2. **identity** — every payload is byte-identical to the in-process
   engine (:func:`repro.serve.jobs.execute_spec`) for its digest:
   sharding is placement, never results;
3. **zero accepted-job loss on drain** — after SIGTERM-bouncing shard 0
   mid-stream, every distinct spec still resolves to a byte-identical
   result (journaled jobs restore under their original ids; finished
   ones are served from the shared store without recomputation).

Writes a JSON report (uploaded as a CI artifact) and exits non-zero on
any violated invariant.

Usage::

    PYTHONPATH=src python tools/load_smoke.py --out load-smoke-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.errors import ServeError
from repro.loadgen import offer, resolve_scenario, summarize_rate
from repro.loadgen.launcher import RateRun
from repro.serve import Fleet, ServeClient
from repro.serve.jobs import JobSpec, execute_spec, normalize_spec, spec_digest


def _digest(body: dict) -> str:
    return spec_digest(normalize_spec(dict(body)))


def _distinct_specs(scenario) -> list:
    """Every spec body the scenario's mix can emit (the identity set)."""
    out = []
    for entry in scenario.mix:
        for variant in range(entry.seeds):
            out.append(entry.spec(variant, scenario.seed))
    return out


def run(scenario_name: str, shards: int, out_path: str) -> int:
    scenario = resolve_scenario(scenario_name)
    specs = _distinct_specs(scenario)
    print(
        f"load smoke: scenario {scenario.name!r}, {shards} shards, "
        f"{len(specs)} distinct specs",
        file=sys.stderr,
    )

    truth = {
        _digest(spec): execute_spec(
            JobSpec(spec["experiment"], spec["scale"], spec["seed"])
        )
        for spec in specs
    }

    checks = {}
    with tempfile.TemporaryDirectory(prefix="repro-load-smoke-") as root:
        with Fleet(shards=shards, root=root, workers=2) as fleet:
            client = ServeClient(fleet.url)

            # -- offered load through the router --------------------------
            start = time.monotonic()
            records = offer(scenario, scenario.qps[0], url=fleet.url)
            wall_s = time.monotonic() - start
            summary = summarize_rate(RateRun(scenario.qps[0], records, wall_s))
            not_done = [r for r in records if r.state != "done"]
            checks["all_requests_done"] = not not_done

            # -- invariant 1: fleet-wide dedup ----------------------------
            offered_digests = {_digest(r.body) for r in records}
            counters = client.metrics()["counters"]
            computed = counters.get("serve.jobs.executed", 0)
            from_store = counters.get("serve.jobs.store_satisfied", 0)
            checks["one_computation_per_digest"] = (
                computed + from_store == len(offered_digests)
            )
            checks["duplicates_coalesced"] = (
                counters.get("serve.jobs.deduped", 0)
                == len(records) - len(offered_digests)
            )

            # -- invariant 2: byte identity vs the engine -----------------
            mismatches = 0
            for record in records:
                if record.job_id is None:
                    continue
                payload = client.result_bytes(record.job_id)
                if payload != truth[_digest(record.body)]:
                    mismatches += 1
            checks["payloads_byte_identical"] = mismatches == 0

            # -- invariant 3: zero loss across a mid-run shard drain ------
            ids = {
                _digest(spec): client.submit(**spec)["job"]["id"]
                for spec in specs
            }
            fleet.restart_shard(0)
            lost = 0
            resubmitted = 0
            for spec in specs:
                digest = _digest(spec)
                try:
                    record = client.wait(ids[digest], timeout_s=120)
                    job_id = ids[digest]
                except ServeError as error:
                    if getattr(error, "http_status", None) != 404:
                        raise
                    # the id died with the drained process; the result
                    # must still be one store-satisfied resubmission away
                    job_id = client.submit(**spec)["job"]["id"]
                    resubmitted += 1
                    record = client.wait(job_id, timeout_s=120)
                if record["state"] != "done":
                    lost += 1
                    continue
                if client.result_bytes(job_id) != truth[digest]:
                    lost += 1
            checks["zero_loss_on_drain"] = lost == 0
            post_counters = client.metrics()["counters"]

    report = {
        "scenario": scenario.as_dict(),
        "shards": shards,
        "checks": checks,
        "rate_summary": summary,
        "fleet_counters_after_drain": {
            name: value
            for name, value in post_counters.items()
            if name.startswith(("serve.jobs.", "serve.store.",
                                "serve.router.", "serve.shard."))
        },
        "resubmitted_after_drain": resubmitted,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {out_path}", file=sys.stderr)

    failed = [name for name, ok in checks.items() if not ok]
    for name, ok in sorted(checks.items()):
        print(f"  {'PASS' if ok else 'FAIL'}  {name}", file=sys.stderr)
    if failed:
        print(f"load smoke FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("load smoke passed", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", default="smoke",
        help="bundled profile name or profile path (default: smoke)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="fleet size (default: 2)",
    )
    parser.add_argument(
        "--out", default="load-smoke-report.json", metavar="PATH",
        help="JSON report path (default: load-smoke-report.json)",
    )
    args = parser.parse_args(argv)
    return run(args.scenario, args.shards, args.out)


if __name__ == "__main__":
    sys.exit(main())
