#!/usr/bin/env python
"""CI acceptance check for the DSE planner (``docs/DSE.md``).

Builds a capacity-ladder design grid of >= 200 cells (every Table II
NVM cell at 1/2/4/8/16 MiB plus the SRAM baseline, over four
workloads), runs the planner at a small margin, runs the exhaustive
oracle over the same grid, and asserts the acceptance criteria:

- the planner's Pareto frontier is *exactly* the exhaustive sweep's
  frontier (no true-frontier cell was pruned, none was invented);
- the planner dispatched at most 10% of the grid to full simulation
  (>= 10x fewer replays than the exhaustive sweep);
- the measured surrogate error on every dispatched cell is below
  ``margin / 2`` — the safety condition that makes margin pruning
  frontier-preserving (derivation in ``docs/DSE.md``).

Usage::

    PYTHONPATH=src python tools/dse_smoke.py [--scale 0.05] [--margin 5e-4]

Exit 0 when all criteria hold; exit 1 listing each violated criterion.
``tools/bench_record.py --dse`` embeds :func:`measure`'s summary into
the committed bench trajectory (``BENCH_0007.json``).
"""

from __future__ import annotations

import argparse
import sys
import time

#: Grid axes: enough cells to make pruning meaningful, small enough for CI.
SMOKE_WORKLOADS = ("leela", "deepsjeng", "exchange2", "x264")
SMOKE_CAPACITIES_MB = (1, 2, 4, 8, 16)
SMOKE_CONFIGURATION = "ladder"

#: Acceptance thresholds (mirrored in docs/DSE.md).
MIN_CELLS = 200
MIN_SAVINGS = 10.0
DEFAULT_MARGIN = 5e-4
DEFAULT_SCALE = 0.05


def build_ladder_grid():
    """The smoke grid: every NVM cell's capacity ladder + SRAM baseline."""
    from repro import units
    from repro.analytic.planner import PlanGrid, ladder_models
    from repro.cells import NVM_CELLS
    from repro.nvsim.published import sram_baseline

    capacities = [mb * units.MB for mb in SMOKE_CAPACITIES_MB]
    models = [sram_baseline()]
    for cell in NVM_CELLS:
        models.extend(ladder_models(cell, capacities))
    return PlanGrid(
        workloads=SMOKE_WORKLOADS,
        configurations=(SMOKE_CONFIGURATION,),
        models={SMOKE_CONFIGURATION: tuple(models)},
    )


def surrogate_error(outcome) -> float:
    """Worst relative error of the surrogate over the simulated cells."""
    worst = 0.0
    for cell, sim in outcome.simulated.items():
        pred = outcome.plan.predicted[cell]
        worst = max(
            worst,
            abs(pred.speedup / sim.speedup - 1.0),
            abs(pred.energy_ratio / sim.energy_ratio - 1.0),
        )
    return worst


def measure(scale: float = DEFAULT_SCALE, margin: float = DEFAULT_MARGIN) -> dict:
    """Run planner + exhaustive oracle on the smoke grid; return a summary."""
    from repro.analytic.planner import exhaustive_frontier, plan_and_execute
    from repro.experiments.common import ExperimentContext

    grid = build_ladder_grid()
    context = ExperimentContext(scale=scale)

    start = time.perf_counter()
    outcome = plan_and_execute(grid, context, margin=margin)
    planned_s = time.perf_counter() - start

    start = time.perf_counter()
    _, oracle_frontier = exhaustive_frontier(grid, context)
    exhaustive_s = time.perf_counter() - start

    plan = outcome.plan
    return {
        "scale": scale,
        "margin": margin,
        "workloads": list(grid.workloads),
        "capacities_mb": list(SMOKE_CAPACITIES_MB),
        "cells": plan.n_cells,
        "pruned": len(plan.pruned),
        "dispatched": len(plan.dispatch),
        "savings_ratio": round(plan.savings_ratio, 2),
        "frontier_size": len(outcome.frontier),
        "frontier_matches_exhaustive": (
            set(outcome.frontier) == set(oracle_frontier)
        ),
        "surrogate_error": surrogate_error(outcome),
        "planned_s": round(planned_s, 3),
        "exhaustive_s": round(exhaustive_s, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--margin", type=float, default=DEFAULT_MARGIN)
    args = parser.parse_args(argv)

    summary = measure(scale=args.scale, margin=args.margin)
    print(
        f"grid: {summary['cells']} cells "
        f"({len(summary['workloads'])} workloads x "
        f"{len(SMOKE_CAPACITIES_MB)} capacities x NVM cells + SRAM)"
    )
    print(
        f"planner: dispatched {summary['dispatched']} "
        f"({summary['savings_ratio']}x fewer full simulations), "
        f"frontier {summary['frontier_size']} cells "
        f"[{summary['planned_s']}s vs exhaustive {summary['exhaustive_s']}s]"
    )
    print(
        f"surrogate error: {summary['surrogate_error']:.2e} "
        f"(margin/2 = {summary['margin'] / 2:.2e})"
    )

    problems = []
    if summary["cells"] < MIN_CELLS:
        problems.append(
            f"grid too small: {summary['cells']} < {MIN_CELLS} cells"
        )
    if not summary["frontier_matches_exhaustive"]:
        problems.append("planner frontier != exhaustive frontier")
    if summary["savings_ratio"] < MIN_SAVINGS:
        problems.append(
            f"savings {summary['savings_ratio']}x < {MIN_SAVINGS}x"
        )
    if summary["surrogate_error"] >= summary["margin"] / 2:
        problems.append(
            f"surrogate error {summary['surrogate_error']:.2e} >= margin/2 "
            f"— the frontier-preservation argument no longer holds"
        )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("dse smoke OK: planner frontier == exhaustive frontier "
          f"at {summary['savings_ratio']}x fewer simulations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
