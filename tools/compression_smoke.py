#!/usr/bin/env python
"""CI acceptance check for the compressed NVM LLC (``docs/COMPRESSION.md``).

Runs the compression study at the golden scale, then asserts the
acceptance criteria the compacted-way design promises:

- *lifetime ordering*: on every (workload, endurance-limited LLC) cell
  the unleveled lifetime forecast with compression is >= the forecast
  without it (fewer bytes per write can only slow wear);
- *energy ordering*: total energy with compression never exceeds the
  uncompressed bill on the same cell;
- *byte-split consistency*: every replay satisfies the
  compressed + uncompressed == total write-count invariant and keeps
  its byte fraction inside the physical ``[1/8, 1]`` band;
- *golden agreement*: the freshly rendered study matches the committed
  snapshot ``tests/golden/snapshots/compression.json`` through the
  tolerance-aware comparator (structure exact, floats 1e-6 relative).

Usage::

    PYTHONPATH=src python tools/compression_smoke.py [--scale 0.05]

Exit 0 when all criteria hold; exit 1 listing each violated criterion.
``tools/bench_record.py --compression`` embeds :func:`measure`'s
summary into the committed bench trajectory (``BENCH_0010.json``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The committed golden snapshot the smoke run must agree with.
SNAPSHOT = REPO / "tests" / "golden" / "snapshots" / "compression.json"

#: The golden scale the snapshot was pinned at.
DEFAULT_SCALE = 0.05


def measure(scale: float = DEFAULT_SCALE) -> dict:
    """Run the compression study; return a summary with criteria flags."""
    from repro.experiments import compression
    from repro.experiments.common import ExperimentContext
    from repro.validate.golden import compare_rendered, load_snapshot

    context = ExperimentContext(scale=scale)
    start = time.perf_counter()
    study = compression.run(context)
    elapsed = time.perf_counter() - start

    lifetime_ordered = all(c.lifetime_gain >= 1.0 for c in study.cells)
    energy_ordered = all(c.energy_ratio <= 1.0 for c in study.cells)
    splits_consistent = all(
        comp.compressed_writes + comp.uncompressed_writes
        == comp.wear.total_writes
        and 0.125 <= comp.write_bytes_fraction <= 1.0
        for _, comp in study.outcomes.values()
    )

    golden_mismatches = []
    if abs(scale - DEFAULT_SCALE) < 1e-12 and SNAPSHOT.exists():
        snapshot = load_snapshot(SNAPSHOT)
        golden_mismatches = compare_rendered(
            snapshot["render"], compression.render(study), label="compression"
        )

    return {
        "scale": scale,
        "workloads": list(study.workloads),
        "llcs": list(study.llc_names),
        "cells": len(study.cells),
        "lifetime_gains": {
            f"{c.workload}/{c.llc_name}": round(c.lifetime_gain, 4)
            for c in study.cells
        },
        "write_bytes_fractions": {
            workload: round(comp.write_bytes_fraction, 4)
            for workload, (_, comp) in study.outcomes.items()
        },
        "lifetime_ordered": lifetime_ordered,
        "energy_ordered": energy_ordered,
        "splits_consistent": splits_consistent,
        "golden_mismatches": len(golden_mismatches),
        "elapsed_s": round(elapsed, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv)

    summary = measure(scale=args.scale)
    for key in ("workloads", "llcs", "cells", "lifetime_gains",
                "write_bytes_fractions", "elapsed_s"):
        print(f"{key}: {summary[key]}")

    failures = []
    if not summary["lifetime_ordered"]:
        failures.append(
            "lifetime ordering violated: a compressed cell forecasts a "
            "shorter unleveled lifetime than its uncompressed baseline"
        )
    if not summary["energy_ordered"]:
        failures.append(
            "energy ordering violated: a compressed cell costs more "
            "total energy than its uncompressed baseline"
        )
    if not summary["splits_consistent"]:
        failures.append(
            "byte-split inconsistency: compressed+uncompressed != total "
            "writes, or a byte fraction left [1/8, 1]"
        )
    if summary["golden_mismatches"]:
        failures.append(
            f"golden disagreement: {summary['golden_mismatches']} "
            "mismatches vs tests/golden/snapshots/compression.json "
            "(tools/regen_golden.py --only compression if intended)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("compression smoke: all criteria hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
