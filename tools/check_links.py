#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (stdlib only).

Verifies every inline link/image in the maintained markdown set:

- relative paths must exist on disk (relative to the linking file);
- ``#anchor`` fragments — same-file or on a linked ``.md`` target —
  must match a heading slug (GitHub slugification rules);
- external schemes (``http(s)://``, ``mailto:``) are skipped: CI must
  not depend on the network.

Fenced code blocks and inline code spans are stripped first, so
``[i](j)``-looking array indexing in examples is not misread as a link.

Usage::

    python tools/check_links.py [FILE.md ...]

With no arguments, checks the default documentation set (README,
DESIGN, EXPERIMENTS, ROADMAP, docs/*.md). Exits 1 listing every broken
link, 0 when clean.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files checked when none are given: the hand-maintained docs.
DEFAULT_DOC_SET = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/COMPRESSION.md",
    "docs/CONFIGURATION.md",
    "docs/DSE.md",
    "docs/SERVING.md",
    "docs/TUTORIAL.md",
)

_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_INLINE_CODE_RE = re.compile(r"`[^`\n]*`")
# [text](target) / ![alt](target); target ends at the first unescaped ')'.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def strip_code(text: str) -> str:
    """Remove fenced blocks and inline code spans (links inside code
    are examples, not navigation)."""
    return _INLINE_CODE_RE.sub("", _FENCE_RE.sub("", text))


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for a heading text.

    Lowercase; drop everything but word characters, spaces and hyphens;
    spaces become hyphens; repeated slugs get ``-1``, ``-2``… suffixes.
    """
    # Inline code/emphasis markers render as text content on GitHub.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(md_path: Path) -> Set[str]:
    """All heading anchors a markdown file exposes."""
    text = _FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    seen: Dict[str, int] = {}
    return {github_slug(match.group(2), seen) for match in _HEADING_RE.finditer(text)}


def iter_links(md_path: Path) -> Iterable[str]:
    """Link targets in a file, code stripped."""
    text = strip_code(md_path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        yield match.group(1)


def check_file(md_path: Path) -> List[str]:
    """Broken-link messages for one markdown file."""
    problems: List[str] = []
    for target in iter_links(md_path):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{md_path}: broken path {target!r}")
                continue
        else:
            resolved = md_path
        if anchor:
            if resolved.suffix.lower() != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown targets: not checkable
            if anchor.lower() not in heading_slugs(resolved):
                problems.append(
                    f"{md_path}: broken anchor {target!r} "
                    f"(no heading slug {anchor.lower()!r} in {resolved.name})"
                )
    return problems


def main(argv: List[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO_ROOT / name for name in DEFAULT_DOC_SET]
    missing = [str(f) for f in files if not f.is_file()]
    if missing:
        print(f"error: no such file(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    problems: List[str] = []
    for md_path in files:
        problems.extend(check_file(md_path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(f.name for f in files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"links OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
