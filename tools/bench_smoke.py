#!/usr/bin/env python
"""CI gate: the three engines agree bit-for-bit and stay ordered.

Replays one small-but-not-tiny LLC smoke trace (the ``benchmarks/``
bzip2 shape) under every engine and fails if

1. any engine's :class:`~repro.sim.llc.LLCCounts` differs from the
   reference engine's — bit-identity is the contract every optimisation
   rides on; or
2. the vector engine is slower than the batched fast engine — the
   regression this guard exists to catch.  Timings are best-of-N, and
   the trace is sized well past the crossover point (vector is ~2.5x
   fast here), so a failure means a real regression, not noise.

Exit code 0 on success, 1 with a diagnostic on failure.
"""

from __future__ import annotations

import os
import sys
import time

os.environ.setdefault("REPRO_REPLAY_CACHE", "0")

#: Accesses in the smoke trace.  Must stay comfortably above the size
#: where the vector engine's fixed preprocessing cost is amortised
#: (~5k accesses); at 40k the expected margin is ~2.5x.
SMOKE_ACCESSES = 40_000

#: Timing repetitions (best is kept).
REPS = 5


def main() -> int:
    from repro.nvsim.published import sram_baseline
    from repro.sim.config import gainestown
    from repro.sim.engine import ENGINES
    from repro.sim.hierarchy import filter_private
    from repro.sim.llc import simulate_llc
    from repro.workloads.generators import generate_trace

    arch = gainestown()
    trace = generate_trace("bzip2", n_accesses=SMOKE_ACCESSES)
    private = filter_private(trace, arch)
    kwargs = dict(
        capacity_bytes=sram_baseline().capacity_bytes,
        associativity=arch.llc_associativity,
        block_bytes=arch.llc_block_bytes,
        n_cores=arch.n_cores,
        mlp_window=arch.mlp_window_instructions,
        mlp_ceiling=arch.max_mlp,
    )

    best = {}
    counts = {}
    for engine in ENGINES:
        best[engine] = float("inf")
        for _ in range(REPS):
            start = time.perf_counter()
            counts[engine] = simulate_llc(private.stream, engine=engine, **kwargs)
            best[engine] = min(best[engine], time.perf_counter() - start)

    failures = []
    for engine in ENGINES:
        if engine != "reference" and counts[engine] != counts["reference"]:
            failures.append(
                f"engine {engine!r} diverged from reference: "
                f"{counts[engine]} != {counts['reference']}"
            )
    if best["vector"] > best["fast"]:
        failures.append(
            f"vector engine slower than fast on the smoke trace: "
            f"vector {best['vector'] * 1e3:.1f}ms > fast {best['fast'] * 1e3:.1f}ms"
        )

    for engine in ENGINES:
        print(f"{engine:>9}: {best[engine] * 1e3:7.1f}ms  (best of {REPS})")
    print(
        f"speedups vs reference: fast "
        f"{best['reference'] / best['fast']:.1f}x, vector "
        f"{best['reference'] / best['vector']:.1f}x"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench smoke OK: engines bit-identical, vector fastest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
