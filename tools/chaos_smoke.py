#!/usr/bin/env python
"""CI chaos smoke: a 3-shard fleet survives a SIGKILL mid-storm.

The fleet-level robustness proof, against real daemon subprocesses:

1. **reference** — a 1-shard fleet serves every spec in the mix; its
   payloads are the reference bytes (and must equal the in-process
   engine, so "reference" is never a second source of truth).
2. **chaos** — a 3-shard fleet takes a duplicate storm with paced jobs;
   one shard is SIGKILLed mid-storm (no drain, no journal flush) and a
   replacement is grown into the live ring.  Asserts **zero
   accepted-job loss** (every accepted digest resolves, possibly via
   one backed-off resubmission), **byte identity** with the reference,
   **bounded recomputation** (every digest computed at least once and
   the total excess bounded by the killed shard's in-flight work,
   counted through the ``REPRO_CHAOS_LOG`` seam), a **structured
   degraded surface** (any failure seen by the client is a typed
   ``DEGRADED``/404, never a raw 502), and a **ring version** that
   advanced for the ejection and the replacement join.
3. **store GC pressure** — a size-capped store under eviction pressure
   never drops a pinned (in-flight) or just-read digest.

Writes a JSON report (uploaded as a CI artifact) and exits non-zero on
any violated invariant.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py --out chaos-smoke-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.errors import DegradedError, ServeError
from repro.obs import metrics as _metrics
from repro.serve import Fleet, ServeClient, submit_with_backoff
from repro.serve.chaos import CHAOS_LOG_ENV, read_log
from repro.serve.executor import JOB_HOOK_ENV
from repro.serve.jobs import JobSpec, execute_spec, normalize_spec, spec_digest
from repro.serve.store import FileResultStore
from repro.loadgen.pacing import SERVICE_MS_ENV

SPECS = [
    {"experiment": "table2", "scale": 0.02, "seed": seed}
    for seed in range(6)
]
FAN_IN = 3  # concurrent submitters per distinct spec
WORKERS = 1  # per shard; also the recomputation bound after a SIGKILL


def _digest(spec: dict) -> str:
    return spec_digest(normalize_spec(dict(spec)))


def _reference(root: str) -> tuple:
    """Phase 1: 1-shard fleet bytes per digest + engine-identity check."""
    reference = {}
    with Fleet(shards=1, root=root, workers=2) as fleet:
        client = ServeClient(fleet.url)
        for spec in SPECS:
            job_id = client.submit(**spec)["job"]["id"]
            record = client.wait(job_id, timeout_s=120)
            if record["state"] != "done":
                raise ServeError(f"reference job failed: {record}")
            reference[_digest(spec)] = client.result_bytes(job_id)
    engine_identical = all(
        reference[_digest(spec)] == execute_spec(
            JobSpec(spec["experiment"], spec["scale"], spec["seed"])
        )
        for spec in SPECS
    )
    return reference, engine_identical


class _Surface:
    """Tallies how failures surfaced to the client during recovery."""

    def __init__(self) -> None:
        self.degraded = 0
        self.not_found = 0
        self.raw_5xx = 0

    def note(self, error: ServeError) -> None:
        if isinstance(error, DegradedError):
            self.degraded += 1
        elif getattr(error, "http_status", None) == 404:
            self.not_found += 1
        elif (getattr(error, "http_status", 0) or 0) >= 500:
            self.raw_5xx += 1  # e.g. a silent 502 — the bug class


def _recover(client, spec, job_id, surface) -> bytes:
    """An accepted job's bytes, resubmitting through degraded windows."""
    try:
        record = client.wait(job_id, timeout_s=120)
        if record["state"] == "done":
            try:
                return client.result_bytes(job_id)
            except ServeError as error:
                surface.note(error)
    except ServeError as error:
        surface.note(error)
    response = submit_with_backoff(
        client, spec["experiment"], scale=spec["scale"],
        seed=spec["seed"], attempts=8,
    )
    record = client.wait(response["job"]["id"], timeout_s=120)
    if record["state"] != "done":
        raise ServeError(f"resubmission failed: {record}")
    return client.result_bytes(response["job"]["id"])


def _chaos(root: str, reference: dict, checks: dict) -> dict:
    """Phase 2: SIGKILL 1 of 3 mid-storm, grow a replacement."""
    chaos_log = str(Path(root) / "chaos.log")
    extra_env = {
        JOB_HOOK_ENV: "repro.serve.chaos:log_computation",
        CHAOS_LOG_ENV: chaos_log,
        SERVICE_MS_ENV: "200",
    }
    surface = _Surface()
    with Fleet(
        shards=3, root=str(Path(root) / "fleet"), workers=WORKERS,
        extra_env=extra_env,
        heartbeat_s=0.3, heartbeat_timeout_s=0.5, eject_after=2,
    ) as fleet:
        client = ServeClient(fleet.url)
        version0 = fleet.router.ring_version

        plan = [dict(spec) for spec in SPECS for _ in range(FAN_IN)]
        responses = [None] * len(plan)
        barrier = threading.Barrier(len(plan))

        def submit(index: int) -> None:
            barrier.wait()
            responses[index] = client.submit(**plan[index])

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(plan))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        checks["storm_fully_accepted"] = all(r is not None for r in responses)
        accepted = {
            _digest(spec): response["job"]["id"]
            for response, spec in zip(responses, plan)
            if response is not None
        }

        time.sleep(0.15)  # paced jobs are now provably in flight
        fleet.kill_shard(0, force=True)
        replacement = fleet.add_shard()
        checks["replacement_joined_ring"] = (
            replacement.url in fleet.router.ring
        )

        lost = 0
        mismatched = 0
        for spec in SPECS:
            digest = _digest(spec)
            try:
                payload = _recover(client, spec, accepted[digest], surface)
            except ServeError:
                lost += 1
                continue
            if payload != reference[digest]:
                mismatched += 1
        checks["zero_loss_after_sigkill"] = lost == 0
        checks["payloads_byte_identical"] = mismatched == 0
        checks["ring_version_advanced"] = (
            fleet.router.ring_version > version0
        )
        counters = client.metrics()["counters"]

    counts = read_log(chaos_log)
    checks["every_digest_computed"] = set(counts) == set(reference)
    excess = sum(count - 1 for count in counts.values())
    checks["recomputation_bounded"] = 0 <= excess <= WORKERS
    checks["degraded_is_structured"] = surface.raw_5xx == 0
    return {
        "computations_per_digest": counts,
        "recomputation_excess": excess,
        "failure_surface": {
            "degraded": surface.degraded,
            "not_found": surface.not_found,
            "raw_5xx": surface.raw_5xx,
        },
        "fleet_counters": {
            name: value
            for name, value in counters.items()
            if name.startswith(("serve.jobs.", "serve.store.",
                                "serve.router.", "serve.shard."))
        },
    }


def _store_gc(root: str, checks: dict) -> dict:
    """Phase 3: eviction pressure never drops pinned or live digests."""
    digests = [f"{index:032x}" for index in range(6)]
    payload = b"x" * 1000
    # Seed through a separate (unbounded) writer instance: a store
    # never evicts its own writes, so pressure has to come from
    # entries it merely found on disk — the multi-shard shape.
    writer = FileResultStore(Path(root) / "gc-store")
    for digest in digests:
        writer.put(digest, payload)
        time.sleep(0.01)  # strictly ordered mtimes for LRU
    with _metrics.scoped_registry() as registry:
        store = FileResultStore(Path(root) / "gc-store", max_bytes=3500)
        pinned = digests[0]
        store.pin(pinned)
        read = digests[1]
        store.get(read)  # marks live and re-touches
        store.put(f"{99:032x}", payload)  # push past the cap again
        snapshot = registry.snapshot()["counters"]
        checks["gc_evicted_under_pressure"] = (
            snapshot.get("serve.store.evictions", 0) >= 1
        )
        checks["gc_pinned_survives"] = store.get(pinned) == payload
        checks["gc_live_read_survives"] = store.get(read) == payload
        store.unpin(pinned)
        return {
            "evictions": snapshot.get("serve.store.evictions", 0),
            "evicted_bytes": snapshot.get("serve.store.evicted_bytes", 0),
            "occupancy": store.stats(),
        }


def run(out_path: str) -> int:
    checks: dict = {}
    print(
        f"chaos smoke: {len(SPECS)} distinct specs x {FAN_IN} fan-in, "
        f"SIGKILL 1 of 3 shards mid-storm",
        file=sys.stderr,
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as root:
        reference, engine_identical = _reference(str(Path(root) / "ref"))
        checks["reference_matches_engine"] = engine_identical
        chaos_detail = _chaos(root, reference, checks)
        gc_detail = _store_gc(root, checks)

    report = {
        "specs": SPECS,
        "fan_in": FAN_IN,
        "workers_per_shard": WORKERS,
        "checks": checks,
        "chaos": chaos_detail,
        "store_gc": gc_detail,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {out_path}", file=sys.stderr)

    failed = [name for name, ok in checks.items() if not ok]
    for name, ok in sorted(checks.items()):
        print(f"  {'PASS' if ok else 'FAIL'}  {name}", file=sys.stderr)
    if failed:
        print(f"chaos smoke FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("chaos smoke passed", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="chaos-smoke-report.json", metavar="PATH",
        help="JSON report path (default: chaos-smoke-report.json)",
    )
    args = parser.parse_args(argv)
    return run(args.out)


if __name__ == "__main__":
    sys.exit(main())
