"""The released NVM cell model library (paper Table II).

Ten NVM cells across three classes — four PCRAM (Oh, Chen, Kang, Close),
four STTRAM (Chung, Jan, Umeki, Xue), two RRAM (Hayakawa, Zhang) — plus
the 45 nm SRAM baseline cell.  Values and provenance marks transcribe
Table II: parameters the cited VLSI papers reported are ``reported``;
dagger entries were derived with heuristic 1 (electrical properties);
star entries with heuristic 2 (interpolation) or 3 (similarity).

The module-level constants are frozen dataclasses and safe to share.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cells.base import (
    CellClass,
    NVMCell,
    electrical,
    interpolated,
    reported,
    similarity,
)
from repro.errors import CellParameterError

# ---------------------------------------------------------------------------
# PCRAM
# ---------------------------------------------------------------------------

OH = NVMCell(
    name="Oh",
    citation="Oh et al., ISSCC 2005 (64 Mb PCRAM)",
    cell_class=CellClass.PCRAM,
    year=2005,
    process_nm=reported(120),
    cell_size_f2=similarity(16.6, note="from Kang (same class)"),
    cell_levels=reported(1),
    read_current_ua=similarity(40, note="typical PCRAM sense current"),
    read_energy_pj=similarity(2, note="class-typical PCRAM read energy"),
    reset_current_ua=reported(600),
    reset_pulse_ns=reported(10),
    set_current_ua=reported(200),
    set_pulse_ns=reported(180),
)

CHEN = NVMCell(
    name="Chen",
    citation="Chen et al., IEDM 2006 (phase-change bridge)",
    cell_class=CellClass.PCRAM,
    year=2006,
    process_nm=interpolated(60, note="trend of PCRAM prototypes"),
    cell_size_f2=interpolated(10, note="trend of PCRAM cell sizes"),
    cell_levels=reported(1),
    read_current_ua=similarity(40, note="from Oh"),
    read_energy_pj=similarity(2, note="class-typical PCRAM read energy"),
    reset_current_ua=reported(90),
    reset_pulse_ns=reported(60),
    set_current_ua=reported(55),
    set_pulse_ns=reported(80),
)

KANG = NVMCell(
    name="Kang",
    citation="Kang et al., ISSCC 2006 (256 Mb PRAM)",
    cell_class=CellClass.PCRAM,
    year=2006,
    process_nm=reported(100),
    cell_size_f2=reported(16.6),
    cell_levels=reported(1),
    read_current_ua=similarity(60, note="from Close"),
    read_energy_pj=similarity(2, note="class-typical PCRAM read energy"),
    reset_current_ua=reported(600),
    reset_pulse_ns=reported(50),
    # The paper's worked heuristic-3 example: Oh and Kang have identical
    # reset current (600 uA), so Kang inherits Oh's 200 uA set current.
    set_current_ua=similarity(200, note="from Oh, matched on reset current"),
    set_pulse_ns=reported(300),
)

CLOSE = NVMCell(
    name="Close",
    citation="Close et al., TCAS-I 2013 (256-Mcell, 2+ bit/cell)",
    cell_class=CellClass.PCRAM,
    year=2013,
    process_nm=reported(90),
    cell_size_f2=reported(25),
    cell_levels=reported(2),
    read_current_ua=similarity(60, note="typical PCRAM sense current"),
    read_energy_pj=similarity(2, note="class-typical PCRAM read energy"),
    reset_current_ua=reported(400),
    reset_pulse_ns=reported(20),
    set_current_ua=reported(400),
    set_pulse_ns=reported(20),
)

# ---------------------------------------------------------------------------
# STTRAM
# ---------------------------------------------------------------------------

CHUNG = NVMCell(
    name="Chung",
    citation="Chung et al., IEDM 2010 (54 nm STT-RAM)",
    cell_class=CellClass.STTRAM,
    year=2010,
    process_nm=reported(54),
    cell_size_f2=reported(14),
    cell_levels=reported(1),
    read_voltage_v=reported(0.65),
    read_power_uw=electrical(24.1, note="eq (1): I_read * V_read"),
    reset_current_ua=reported(80),
    reset_pulse_ns=reported(10),
    reset_energy_pj=electrical(0.52, note="eq (2): I * V_access * t"),
    set_current_ua=electrical(100, note="eq (2) inverted"),
    set_pulse_ns=reported(10),
    set_energy_pj=electrical(0.75, note="eq (2): I * V_access * t"),
)

JAN = NVMCell(
    name="Jan",
    citation="Jan et al., VLSI 2014 (8 Mb perpendicular STT-MRAM)",
    cell_class=CellClass.STTRAM,
    year=2014,
    process_nm=reported(90),
    cell_size_f2=reported(50),
    cell_levels=reported(1),
    read_voltage_v=reported(0.08),
    read_power_uw=similarity(30, note="class-typical sensing power"),
    reset_current_ua=reported(52),
    reset_pulse_ns=reported(4),
    reset_energy_pj=similarity(1, note="class-typical write energy"),
    set_current_ua=reported(38),
    set_pulse_ns=reported(4.5),
    set_energy_pj=similarity(1, note="class-typical write energy"),
)

UMEKI = NVMCell(
    name="Umeki",
    citation="Umeki et al., ASP-DAC 2015 (negative-resistance SA STT-MRAM)",
    cell_class=CellClass.STTRAM,
    year=2015,
    process_nm=reported(65),
    cell_size_f2=electrical(48, note="eq (3): l*w / s^2"),
    cell_levels=reported(1),
    read_voltage_v=reported(0.38),
    read_power_uw=reported(1.70),
    reset_current_ua=electrical(255, note="eq (2) inverted"),
    reset_pulse_ns=reported(10),
    reset_energy_pj=reported(1.12),
    set_current_ua=electrical(255, note="eq (2) inverted"),
    set_pulse_ns=reported(10),
    set_energy_pj=reported(1.12),
)

XUE = NVMCell(
    name="Xue",
    citation="Xue et al., ICCAD 2016 (ODESY 3T-3MTJ)",
    cell_class=CellClass.STTRAM,
    year=2016,
    process_nm=reported(45),
    cell_size_f2=reported(63),
    cell_levels=reported(2),
    read_voltage_v=reported(1.2),
    read_power_uw=reported(65),
    reset_current_ua=reported(150),
    reset_pulse_ns=reported(2),
    reset_energy_pj=reported(0.36),
    set_current_ua=reported(150),
    set_pulse_ns=reported(2),
    set_energy_pj=reported(0.36),
)

# ---------------------------------------------------------------------------
# RRAM
# ---------------------------------------------------------------------------

HAYAKAWA = NVMCell(
    name="Hayakawa",
    citation="Hayakawa et al., VLSI 2015 (TaOx ReRAM, 28 nm embedded)",
    cell_class=CellClass.RRAM,
    year=2015,
    process_nm=reported(40),
    cell_size_f2=similarity(4, note="from Zhang (same class)"),
    cell_levels=reported(1),
    read_voltage_v=similarity(0.4, note="class-typical read voltage"),
    read_power_uw=similarity(0.16, note="scaled from Zhang"),
    reset_voltage_v=similarity(2, note="class-typical reset voltage"),
    reset_pulse_ns=similarity(10, note="class-typical RRAM pulse"),
    reset_energy_pj=similarity(0.6, note="scaled from Zhang"),
    set_voltage_v=similarity(2, note="class-typical set voltage"),
    set_pulse_ns=similarity(10, note="class-typical RRAM pulse"),
    set_energy_pj=similarity(0.6, note="scaled from Zhang"),
)

ZHANG = NVMCell(
    name="Zhang",
    citation="Zhang et al., ISCA 2016 (Mellow Writes RRAM)",
    cell_class=CellClass.RRAM,
    year=2016,
    process_nm=reported(22),
    cell_size_f2=similarity(4, note="ideal crossbar 4F^2"),
    cell_levels=reported(1),
    read_voltage_v=reported(0.2),
    read_power_uw=reported(0.02),
    reset_voltage_v=reported(1),
    reset_pulse_ns=reported(150),
    reset_energy_pj=reported(0.4),
    set_voltage_v=reported(1),
    set_pulse_ns=reported(150),
    set_energy_pj=reported(0.4),
)

# ---------------------------------------------------------------------------
# SRAM baseline
# ---------------------------------------------------------------------------

SRAM = NVMCell(
    name="SRAM",
    citation="45 nm 6T SRAM baseline (paper Section IV)",
    cell_class=CellClass.SRAM,
    year=2009,
    process_nm=reported(45),
    cell_size_f2=reported(146, note="typical 6T SRAM cell"),
    cell_levels=reported(1),
    read_voltage_v=reported(1.0),
    read_power_uw=reported(10.0, note="per-bitline sensing power"),
    # SRAM writes are symmetric and fast; zero-length "pulse" models the
    # absence of a programming phase (write time is periphery-dominated).
    set_pulse_ns=reported(0.2),
    reset_pulse_ns=reported(0.2),
    # A 6T write swings the bitline pair much like a read senses it:
    # ~1 pJ/bit keeps block write energy at read-energy scale, matching
    # Table III's near-symmetric SRAM row.
    set_energy_pj=reported(1.0),
    reset_energy_pj=reported(1.0),
)

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: The ten NVM cells of Table II, in table order.
NVM_CELLS: List[NVMCell] = [
    OH,
    CHEN,
    KANG,
    CLOSE,
    CHUNG,
    JAN,
    UMEKI,
    XUE,
    HAYAKAWA,
    ZHANG,
]

#: All cells including the SRAM baseline.
ALL_CELLS: List[NVMCell] = NVM_CELLS + [SRAM]

_BY_NAME: Dict[str, NVMCell] = {c.name.lower(): c for c in ALL_CELLS}
_BY_DISPLAY: Dict[str, NVMCell] = {c.display_name.lower(): c for c in ALL_CELLS}


def cell_by_name(name: str) -> NVMCell:
    """Look up a cell by citation name (``"Kang"``) or display name
    (``"Kang_P"``), case-insensitively."""
    key = name.lower()
    cell = _BY_NAME.get(key) or _BY_DISPLAY.get(key)
    if cell is None:
        from repro.validate.schema import unknown_key_message

        candidates = sorted(
            {c.name for c in ALL_CELLS} | {c.display_name for c in ALL_CELLS}
        )
        raise CellParameterError(unknown_key_message("cell", name, candidates))
    return cell


def cells_of_class(cell_class: CellClass) -> List[NVMCell]:
    """All library cells of one technology class, in table order."""
    return [c for c in ALL_CELLS if c.cell_class is cell_class]


def table2_rows() -> List[Dict[str, Optional[str]]]:
    """Render the library as Table II rows (value plus provenance mark).

    Returns one dict per parameter row; keys are cell display names and
    the special key ``"parameter"``.  ``None`` marks a grayed-out cell.
    """
    from repro.cells.base import PARAMETER_UNITS

    rows: List[Dict[str, Optional[str]]] = []
    header: Dict[str, Optional[str]] = {"parameter": "class"}
    for cell in NVM_CELLS:
        header[cell.display_name] = cell.cell_class.value
    rows.append(header)
    for key, unit in PARAMETER_UNITS.items():
        row: Dict[str, Optional[str]] = {"parameter": f"{key} [{unit}]"}
        for cell in NVM_CELLS:
            param = cell.get(key)
            row[cell.display_name] = param.marked() if param is not None else None
        rows.append(row)
    return rows
