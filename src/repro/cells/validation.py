"""Per-class parameter validation for NVSim-style specification.

Section III of the paper lists which parameters NVSim requires per
technology class.  :func:`required_parameters` encodes that list and
:func:`validate_cell` checks a cell against it, reporting which gaps
remain and which were closed by heuristics — the machine-checkable form
of the paper's "apples-to-apples" requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cells.base import CellClass, NVMCell, Provenance
from repro.errors import CellParameterError

#: Parameters NVSim needs per class (paper Section III, prose list).
_REQUIRED: Dict[CellClass, Tuple[str, ...]] = {
    CellClass.PCRAM: (
        "process_nm",
        "cell_size_f2",
        "read_current_ua",
        "read_energy_pj",
        "reset_current_ua",
        "reset_pulse_ns",
        "set_current_ua",
        "set_pulse_ns",
    ),
    CellClass.STTRAM: (
        "process_nm",
        "cell_size_f2",
        "read_voltage_v",
        "read_power_uw",
        "reset_current_ua",
        "reset_pulse_ns",
        "reset_energy_pj",
        "set_current_ua",
        "set_pulse_ns",
        "set_energy_pj",
    ),
    CellClass.RRAM: (
        "process_nm",
        "cell_size_f2",
        "read_voltage_v",
        "read_power_uw",
        "reset_voltage_v",
        "reset_pulse_ns",
        "reset_energy_pj",
        "set_voltage_v",
        "set_pulse_ns",
        "set_energy_pj",
    ),
    CellClass.SRAM: (
        "process_nm",
        "cell_size_f2",
    ),
}


def required_parameters(cell_class: CellClass) -> Tuple[str, ...]:
    """The NVSim-required parameter names for a technology class."""
    return _REQUIRED[cell_class]


@dataclass
class ValidationReport:
    """Outcome of validating a cell for NVSim specification.

    Attributes
    ----------
    cell_name:
        Display name of the validated cell.
    missing:
        Required parameters with no value at all — the cell cannot be
        specified until these are filled (by a heuristic or otherwise).
    derived:
        Required parameters present but produced by a heuristic, keyed
        by parameter name with the heuristic's provenance.
    reported:
        Required parameters taken directly from the cited paper.
    """

    cell_name: str
    missing: List[str] = field(default_factory=list)
    derived: Dict[str, Provenance] = field(default_factory=dict)
    reported: List[str] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        """True when every required parameter has a value."""
        return not self.missing

    @property
    def derived_fraction(self) -> float:
        """Fraction of required parameters that heuristics supplied."""
        total = len(self.missing) + len(self.derived) + len(self.reported)
        if total == 0:
            return 0.0
        return len(self.derived) / total


def validate_cell(cell: NVMCell) -> ValidationReport:
    """Check a cell against its class's NVSim requirements."""
    report = ValidationReport(cell_name=cell.display_name)
    for key in required_parameters(cell.cell_class):
        param = cell.get(key)
        if param is None:
            report.missing.append(key)
        elif param.provenance.is_derived:
            report.derived[key] = param.provenance
        else:
            report.reported.append(key)
    return report


def require_complete(cell: NVMCell) -> None:
    """Raise :class:`CellParameterError` unless the cell is specifiable."""
    report = validate_cell(cell)
    if not report.is_complete:
        raise CellParameterError(
            f"{cell.display_name} is missing required parameters: "
            + ", ".join(report.missing)
        )
