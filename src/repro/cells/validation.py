"""Per-class parameter validation for NVSim-style specification.

Section III of the paper lists which parameters NVSim requires per
technology class.  :func:`required_parameters` encodes that list and
:func:`validate_cell` checks a cell against it, reporting which gaps
remain and which were closed by heuristics — the machine-checkable form
of the paper's "apples-to-apples" requirement.

Beyond presence, :func:`check_plausibility` range- and
consistency-checks every *value* — published or heuristic-derived —
against published-silicon bounds (:data:`PLAUSIBILITY_BOUNDS`).  The
paper's comparison rests on heuristic-filled parameters (equations
(1)-(3)), so a heuristic that extrapolates into physical nonsense must
fail loudly, naming the heuristic that produced the number:
:func:`require_plausible` raises
:class:`~repro.errors.PlausibilityError` carrying the parameter, value,
bound and full provenance chain under the strict validation policy
(:mod:`repro.validate.policy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cells.base import CellClass, NVMCell, Param, Provenance
from repro.errors import CellParameterError, PlausibilityError

#: Parameters NVSim needs per class (paper Section III, prose list).
_REQUIRED: Dict[CellClass, Tuple[str, ...]] = {
    CellClass.PCRAM: (
        "process_nm",
        "cell_size_f2",
        "read_current_ua",
        "read_energy_pj",
        "reset_current_ua",
        "reset_pulse_ns",
        "set_current_ua",
        "set_pulse_ns",
    ),
    CellClass.STTRAM: (
        "process_nm",
        "cell_size_f2",
        "read_voltage_v",
        "read_power_uw",
        "reset_current_ua",
        "reset_pulse_ns",
        "reset_energy_pj",
        "set_current_ua",
        "set_pulse_ns",
        "set_energy_pj",
    ),
    CellClass.RRAM: (
        "process_nm",
        "cell_size_f2",
        "read_voltage_v",
        "read_power_uw",
        "reset_voltage_v",
        "reset_pulse_ns",
        "reset_energy_pj",
        "set_voltage_v",
        "set_pulse_ns",
        "set_energy_pj",
    ),
    CellClass.SRAM: (
        "process_nm",
        "cell_size_f2",
    ),
}


def required_parameters(cell_class: CellClass) -> Tuple[str, ...]:
    """The NVSim-required parameter names for a technology class."""
    return _REQUIRED[cell_class]


@dataclass
class ValidationReport:
    """Outcome of validating a cell for NVSim specification.

    Attributes
    ----------
    cell_name:
        Display name of the validated cell.
    missing:
        Required parameters with no value at all — the cell cannot be
        specified until these are filled (by a heuristic or otherwise).
    derived:
        Required parameters present but produced by a heuristic, keyed
        by parameter name with the heuristic's provenance.
    reported:
        Required parameters taken directly from the cited paper.
    """

    cell_name: str
    missing: List[str] = field(default_factory=list)
    derived: Dict[str, Provenance] = field(default_factory=dict)
    reported: List[str] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        """True when every required parameter has a value."""
        return not self.missing

    @property
    def derived_fraction(self) -> float:
        """Fraction of required parameters that heuristics supplied."""
        total = len(self.missing) + len(self.derived) + len(self.reported)
        if total == 0:
            return 0.0
        return len(self.derived) / total


def validate_cell(cell: NVMCell) -> ValidationReport:
    """Check a cell against its class's NVSim requirements."""
    report = ValidationReport(cell_name=cell.display_name)
    for key in required_parameters(cell.cell_class):
        param = cell.get(key)
        if param is None:
            report.missing.append(key)
        elif param.provenance.is_derived:
            report.derived[key] = param.provenance
        else:
            report.reported.append(key)
    return report


def require_complete(cell: NVMCell) -> None:
    """Raise :class:`CellParameterError` unless the cell is specifiable."""
    report = validate_cell(cell)
    if not report.is_complete:
        raise CellParameterError(
            f"{cell.display_name} is missing required parameters: "
            + ", ".join(report.missing)
        )


# ---------------------------------------------------------------------------
# Physical plausibility
# ---------------------------------------------------------------------------

#: Inclusive ``(lo, hi)`` plausibility range per parameter, in the
#: engineering units of Table II.  Deliberately generous — roughly an
#: order of magnitude beyond any silicon published for these classes —
#: so they trip on unit mistakes and runaway heuristics, never on a
#: legitimate prototype.
PLAUSIBILITY_BOUNDS: Dict[str, Tuple[float, float]] = {
    "process_nm": (5.0, 1000.0),
    "cell_size_f2": (1.0, 2000.0),
    "cell_levels": (1.0, 8.0),
    "read_current_ua": (0.1, 1e5),
    "read_voltage_v": (0.01, 20.0),
    "read_power_uw": (1e-3, 1e6),
    "read_energy_pj": (1e-5, 1e4),
    "reset_current_ua": (0.1, 1e5),
    "reset_voltage_v": (0.01, 20.0),
    "reset_pulse_ns": (0.01, 1e5),
    "reset_energy_pj": (1e-5, 1e4),
    "set_current_ua": (0.1, 1e5),
    "set_voltage_v": (0.01, 20.0),
    "set_pulse_ns": (0.01, 1e5),
    "set_energy_pj": (1e-5, 1e4),
}


def describe_provenance(param: Param) -> str:
    """Human-readable provenance chain for one parameter value.

    Names the heuristic that produced a derived value — the error must
    say *which heuristic* computed the implausible number, not just
    that one is implausible.
    """
    labels = {
        Provenance.REPORTED: "reported in the cited paper",
        Provenance.ELECTRICAL: "derived via heuristic 1 (electrical properties)",
        Provenance.INTERPOLATED: "derived via heuristic 2 (interpolation)",
        Provenance.SIMILARITY: "derived via heuristic 3 (similarity)",
        Provenance.NOT_APPLICABLE: "not applicable",
    }
    text = labels[param.provenance]
    if param.note:
        text += f": {param.note}"
    return text


@dataclass(frozen=True)
class PlausibilityViolation:
    """One implausible cell parameter: what, where, why."""

    cell_name: str
    parameter: str
    value: float
    bound: str
    provenance: str

    def message(self) -> str:
        return (
            f"{self.cell_name}: {self.parameter}={self.value:g} violates "
            f"{self.bound} ({self.provenance})"
        )


def _violation(cell: NVMCell, parameter: str, param: Param,
               bound: str) -> PlausibilityViolation:
    return PlausibilityViolation(
        cell_name=cell.display_name,
        parameter=parameter,
        value=param.value,
        bound=bound,
        provenance=describe_provenance(param),
    )


def check_plausibility(cell: NVMCell) -> List[PlausibilityViolation]:
    """Range- and consistency-check every set parameter of a cell.

    Checks (all on the *values*, whatever their provenance):

    - every parameter within its :data:`PLAUSIBILITY_BOUNDS` range;
    - PCRAM set pulse at least as long as reset pulse (crystallisation
      is the slow transition; a heuristic that inverts the ordering has
      mixed the operations up);
    - for NVM classes with both derivable, per-bit write energy at
      least the per-bit read energy (a destructive program operation
      below sensing cost is a unit error).
    """
    violations: List[PlausibilityViolation] = []
    for parameter, param in cell.parameters():
        bounds = PLAUSIBILITY_BOUNDS.get(parameter)
        if bounds is None:
            continue
        lo, hi = bounds
        if not lo <= param.value <= hi:
            violations.append(
                _violation(cell, parameter, param,
                           f"plausible range [{lo:g}, {hi:g}]")
            )

    if (
        cell.cell_class is CellClass.PCRAM
        and cell.set_pulse_ns is not None
        and cell.reset_pulse_ns is not None
        and cell.set_pulse_ns.value < cell.reset_pulse_ns.value
    ):
        violations.append(
            _violation(
                cell, "set_pulse_ns", cell.set_pulse_ns,
                f"set>=reset pulse ordering (reset is "
                f"{cell.reset_pulse_ns.value:g} ns)",
            )
        )

    if cell.cell_class.is_nvm:
        try:
            read_j = cell.read_energy_j()
            write_j = cell.write_energy_j()
        except CellParameterError:
            pass  # not derivable yet; completeness checks report that
        else:
            if write_j < read_j:
                worst = min(
                    (p for p in (cell.set_energy_pj, cell.reset_energy_pj)
                     if p is not None),
                    key=lambda p: p.value,
                    default=None,
                )
                if worst is not None:
                    violations.append(
                        _violation(
                            cell, "set/reset energy", worst,
                            f"write>=read energy ordering (read is "
                            f"{read_j * 1e12:g} pJ/bit)",
                        )
                    )
    return violations


def require_plausible(cell: NVMCell, policy=None) -> List[PlausibilityViolation]:
    """Enforce :func:`check_plausibility` per the validation policy.

    ``strict`` raises :class:`~repro.errors.PlausibilityError` on the
    first violation; ``lenient`` counts them (``validate.cells.
    violations`` metric) and returns the list; ``off`` skips the scan.
    """
    from repro.obs import metrics as _metrics
    from repro.validate.policy import Policy, resolve_policy

    policy = resolve_policy(policy)
    if not policy.active:
        return []
    violations = check_plausibility(cell)
    if not violations:
        return []
    _metrics.counter_add("validate.cells.violations", len(violations))
    if policy is Policy.STRICT:
        first = violations[0]
        raise PlausibilityError(
            first.message(),
            subject=first.cell_name,
            field=first.parameter,
            value=first.value,
            bound=first.bound,
            provenance=first.provenance,
        )
    return violations
