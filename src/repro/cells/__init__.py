"""Cell-level NVM models and the paper's modeling heuristics (Section III).

Public surface:

- :class:`~repro.cells.base.NVMCell`, :class:`~repro.cells.base.CellClass`,
  :class:`~repro.cells.base.Param`, :class:`~repro.cells.base.Provenance`
- the Table II library in :mod:`repro.cells.library`
- heuristics 1-3 in :mod:`repro.cells.heuristics`
- NVSim-requirement validation in :mod:`repro.cells.validation`
"""

from repro.cells.base import (
    PARAMETER_UNITS,
    CellClass,
    NVMCell,
    Param,
    Provenance,
    electrical,
    interpolated,
    reported,
    similarity,
)
from repro.cells.heuristics import (
    DEFAULT_ACCESS_VOLTAGE_V,
    apply_electrical_properties,
    cell_size_f2_from_dims,
    interpolate_from_cells,
    interpolate_parameter,
    read_current_from_pv,
    read_power_from_iv,
    similar_parameter,
    write_current_from_energy,
    write_energy_from_current,
)
from repro.cells.library import (
    ALL_CELLS,
    CHEN,
    CHUNG,
    CLOSE,
    HAYAKAWA,
    JAN,
    KANG,
    NVM_CELLS,
    OH,
    SRAM,
    UMEKI,
    XUE,
    ZHANG,
    cell_by_name,
    cells_of_class,
    table2_rows,
)
from repro.cells.validation import (
    ValidationReport,
    required_parameters,
    require_complete,
    validate_cell,
)

__all__ = [
    "PARAMETER_UNITS",
    "CellClass",
    "NVMCell",
    "Param",
    "Provenance",
    "reported",
    "electrical",
    "interpolated",
    "similarity",
    "DEFAULT_ACCESS_VOLTAGE_V",
    "apply_electrical_properties",
    "cell_size_f2_from_dims",
    "interpolate_from_cells",
    "interpolate_parameter",
    "read_current_from_pv",
    "read_power_from_iv",
    "similar_parameter",
    "write_current_from_energy",
    "write_energy_from_current",
    "ALL_CELLS",
    "NVM_CELLS",
    "OH",
    "CHEN",
    "KANG",
    "CLOSE",
    "CHUNG",
    "JAN",
    "UMEKI",
    "XUE",
    "HAYAKAWA",
    "ZHANG",
    "SRAM",
    "cell_by_name",
    "cells_of_class",
    "table2_rows",
    "ValidationReport",
    "required_parameters",
    "require_complete",
    "validate_cell",
]
