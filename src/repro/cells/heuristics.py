"""The paper's three modeling heuristics (Section III-A).

When a VLSI paper introducing an NVM cell omits a parameter that an
architectural simulator needs, the paper fills the gap with one of three
strategies, in decreasing order of preference:

1. **Electrical properties** — derive the value from known parameters
   using equations (1)-(3):

   - (1) ``P_read = I_read * V_read``
   - (2) ``E_{s/r} = I_{s/r} * V_access * t_{s/r}``
   - (3) ``A [F^2] = (l_cell * w_cell) / s_proc^2``

2. **Interpolation** — fit the trend of the parameter across known
   same-class technologies (typically against process node) and read the
   unknown value off the trend line.

3. **Similarity** — copy the parameter from another technology in the
   same class, preferring a donor that matches the target on a related
   parameter (the paper's example: Kang's set current is taken from Oh
   because their reset currents are identical).

All functions work in the engineering units of Table II (uA, V, ns, pJ,
uW, F^2, nm) so derived values can be compared against the table
directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cells.base import (
    CellClass,
    NVMCell,
    Param,
    electrical,
    interpolated,
    similarity,
)
from repro.errors import HeuristicError

# ---------------------------------------------------------------------------
# Heuristic 1 — electrical properties (equations (1)-(3))
# ---------------------------------------------------------------------------


def read_power_from_iv(read_current_ua: float, read_voltage_v: float) -> Param:
    """Equation (1): read power [uW] from read current [uA] and voltage [V].

    ``uA * V = uW`` so no unit conversion factor is needed.
    """
    if read_current_ua <= 0 or read_voltage_v <= 0:
        raise HeuristicError("read current and voltage must be positive")
    value = read_current_ua * read_voltage_v
    return electrical(value, note="eq (1): I_read * V_read")


def read_current_from_pv(read_power_uw: float, read_voltage_v: float) -> Param:
    """Equation (1) inverted: read current [uA] from power [uW] and voltage."""
    if read_power_uw <= 0 or read_voltage_v <= 0:
        raise HeuristicError("read power and voltage must be positive")
    value = read_power_uw / read_voltage_v
    return electrical(value, note="eq (1) inverted: P_read / V_read")


def write_energy_from_current(
    current_ua: float, access_voltage_v: float, pulse_ns: float
) -> Param:
    """Equation (2): set/reset energy [pJ] from current, voltage and pulse.

    ``uA * V * ns = fJ * 1e0 = 1e-15 J``; expressed in pJ this is the
    product divided by 1000.
    """
    if min(current_ua, access_voltage_v, pulse_ns) <= 0:
        raise HeuristicError("current, voltage and pulse must be positive")
    femtojoules = current_ua * access_voltage_v * pulse_ns
    return electrical(femtojoules / 1000.0, note="eq (2): I * V_access * t")


def write_current_from_energy(
    energy_pj: float, access_voltage_v: float, pulse_ns: float
) -> Param:
    """Equation (2) inverted: set/reset current [uA] from energy [pJ]."""
    if min(energy_pj, access_voltage_v, pulse_ns) <= 0:
        raise HeuristicError("energy, voltage and pulse must be positive")
    value = energy_pj * 1000.0 / (access_voltage_v * pulse_ns)
    return electrical(value, note="eq (2) inverted: E / (V_access * t)")


def cell_size_f2_from_dims(
    length_nm: float, width_nm: float, process_nm: float
) -> Param:
    """Equation (3): cell size [F^2] from physical dims and process node."""
    if min(length_nm, width_nm, process_nm) <= 0:
        raise HeuristicError("dimensions and process must be positive")
    value = (length_nm * width_nm) / (process_nm * process_nm)
    return electrical(value, note="eq (3): l*w / s^2")


# ---------------------------------------------------------------------------
# Heuristic 2 — interpolation across same-class technologies
# ---------------------------------------------------------------------------


def interpolate_parameter(
    known: Sequence[Tuple[float, float]],
    at: float,
    parameter: str = "",
) -> Param:
    """Heuristic 2: linear-trend estimate of a parameter.

    Parameters
    ----------
    known:
        ``(x, y)`` pairs from same-class technologies where the trend is
        taken against ``x`` (typically the process node in nm).
    at:
        The ``x`` at which to estimate the unknown parameter.
    parameter:
        Name used in the provenance note.

    With a single known point this degrades to copying that point (which
    is then equivalent to heuristic 3, but the provenance still records
    that a trend was requested).
    """
    points = sorted(known)
    if not points:
        raise HeuristicError("interpolation requires at least one known point")
    if len(points) == 1:
        value = points[0][1]
        return interpolated(value, note=f"single-point trend for {parameter}")
    # Least-squares line through the known points.
    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    denom = n * sxx - sx * sx
    if denom == 0:
        value = sy / n
        return interpolated(value, note=f"flat trend for {parameter}")
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    value = slope * at + intercept
    if value <= 0:
        # A trend extrapolated below zero is physically meaningless; fall
        # back to the nearest known point, as the paper's heuristic
        # ordering implies (prefer 2 over 3, but never a nonsense value).
        nearest = min(points, key=lambda p: abs(p[0] - at))
        value = nearest[1]
        note = f"trend for {parameter} went nonpositive; nearest point used"
        return interpolated(value, note=note)
    return interpolated(value, note=f"linear trend for {parameter} at {at:g}")


def interpolate_from_cells(
    donors: Iterable[NVMCell],
    x_parameter: str,
    y_parameter: str,
    at: float,
) -> Param:
    """Heuristic 2 using donor cells directly.

    Gathers ``(x, y)`` points from donors that have both parameters set
    and interpolates ``y_parameter`` at ``x = at``.
    """
    points: List[Tuple[float, float]] = []
    for donor in donors:
        x = donor.get(x_parameter)
        y = donor.get(y_parameter)
        if x is not None and y is not None:
            points.append((x.value, y.value))
    if not points:
        raise HeuristicError(
            f"no donor cell has both {x_parameter!r} and {y_parameter!r}"
        )
    return interpolate_parameter(points, at, parameter=y_parameter)


# ---------------------------------------------------------------------------
# Heuristic 3 — similarity (same-class donor)
# ---------------------------------------------------------------------------


def similar_parameter(
    target: NVMCell,
    donors: Iterable[NVMCell],
    parameter: str,
    match_on: Optional[str] = None,
) -> Param:
    """Heuristic 3: copy ``parameter`` from the most similar donor.

    Donors must be the same class as ``target`` and have ``parameter``
    set.  When ``match_on`` is given, the donor whose ``match_on`` value
    is closest to the target's is chosen (the paper's worked example
    matches Kang to Oh on reset current).  Otherwise the donor closest in
    process node is used, falling back to the first available donor.
    """
    candidates = [
        d
        for d in donors
        if d.cell_class is target.cell_class
        and d.name != target.name
        and d.get(parameter) is not None
    ]
    if not candidates:
        raise HeuristicError(
            f"no same-class donor provides {parameter!r} for {target.name}"
        )

    def distance(donor: NVMCell) -> float:
        key = match_on if match_on is not None else "process_nm"
        target_param = target.get(key)
        donor_param = donor.get(key)
        if target_param is None or donor_param is None:
            return float("inf")
        return abs(target_param.value - donor_param.value)

    best = min(candidates, key=distance)
    value = best.value(parameter)
    matched = f" matched on {match_on}" if match_on else ""
    return similarity(value, note=f"from {best.name}{matched}")


# ---------------------------------------------------------------------------
# Driver — apply heuristic 1 wherever it closes a gap
# ---------------------------------------------------------------------------

#: Access-transistor voltage assumed by equation (2) when the cited paper
#: does not report one.  1.2 V is a typical wordline/access voltage for the
#: 45-120 nm nodes in Table II.
DEFAULT_ACCESS_VOLTAGE_V = 1.2


def apply_electrical_properties(cell: NVMCell) -> NVMCell:
    """Fill in parameters derivable with heuristic 1 from what is known.

    Applies equation (1) for read power and equation (2) for set/reset
    energy.  Returns a new cell; parameters already present are never
    overwritten.
    """
    updates = {}

    if (
        cell.read_power_uw is None
        and cell.read_current_ua is not None
        and cell.read_voltage_v is not None
    ):
        updates["read_power_uw"] = read_power_from_iv(
            cell.read_current_ua.value, cell.read_voltage_v.value
        )

    for which in ("set", "reset"):
        energy_key = f"{which}_energy_pj"
        current_key = f"{which}_current_ua"
        pulse_key = f"{which}_pulse_ns"
        if (
            cell.get(energy_key) is None
            and cell.get(current_key) is not None
            and cell.get(pulse_key) is not None
        ):
            updates[energy_key] = write_energy_from_current(
                cell.value(current_key),
                DEFAULT_ACCESS_VOLTAGE_V,
                cell.value(pulse_key),
            )
        elif (
            cell.get(current_key) is None
            and cell.get(energy_key) is not None
            and cell.get(pulse_key) is not None
        ):
            updates[current_key] = write_current_from_energy(
                cell.value(energy_key),
                DEFAULT_ACCESS_VOLTAGE_V,
                cell.value(pulse_key),
            )

    if not updates:
        return cell
    return cell.with_params(**updates)
