"""Core datatypes for cell-level NVM models (paper Section III, Table II).

A :class:`NVMCell` carries the cell-level parameters that an NVSim-style
circuit model needs, together with per-parameter *provenance*: whether the
value was reported in the original VLSI paper or derived with one of the
paper's three modeling heuristics.  Provenance is the paper's first
contribution — it is what makes comparisons across technologies
"apples-to-apples" — so the library treats it as first-class data rather
than a footnote.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro import units
from repro.errors import CellParameterError


class CellClass(enum.Enum):
    """Memory technology class."""

    SRAM = "SRAM"
    PCRAM = "PCRAM"
    STTRAM = "STTRAM"
    RRAM = "RRAM"

    @property
    def is_nvm(self) -> bool:
        """Whether the class is non-volatile."""
        return self is not CellClass.SRAM


class Provenance(enum.Enum):
    """Where a parameter value came from.

    ``REPORTED``     — taken directly from the cited VLSI paper.
    ``ELECTRICAL``   — derived via heuristic 1 (equations (1)-(3));
                       marked with a dagger in Table II.
    ``INTERPOLATED`` — derived via heuristic 2 (trend interpolation);
                       marked with a star in Table II.
    ``SIMILARITY``   — derived via heuristic 3 (same-class donor);
                       marked with a star in Table II.
    ``NOT_APPLICABLE`` — the parameter does not exist for this class
                       (grayed-out cells in Table II).
    """

    REPORTED = "reported"
    ELECTRICAL = "electrical"      # heuristic 1, dagger
    INTERPOLATED = "interpolated"  # heuristic 2, star
    SIMILARITY = "similarity"      # heuristic 3, star
    NOT_APPLICABLE = "n/a"

    @property
    def table_mark(self) -> str:
        """The symbol Table II uses for this provenance ('' / '†' / '*')."""
        if self is Provenance.ELECTRICAL:
            return "†"
        if self in (Provenance.INTERPOLATED, Provenance.SIMILARITY):
            return "*"
        return ""

    @property
    def is_derived(self) -> bool:
        """True when the value was produced by a heuristic."""
        return self in (
            Provenance.ELECTRICAL,
            Provenance.INTERPOLATED,
            Provenance.SIMILARITY,
        )


#: Parameter names understood by :class:`NVMCell` / the NVSim front end,
#: with the engineering unit each is expressed in (matching Table II).
PARAMETER_UNITS: Dict[str, str] = {
    "process_nm": "nm",
    "cell_size_f2": "F^2",
    "cell_levels": "levels",
    "read_current_ua": "uA",
    "read_voltage_v": "V",
    "read_power_uw": "uW",
    "read_energy_pj": "pJ",
    "reset_current_ua": "uA",
    "reset_voltage_v": "V",
    "reset_pulse_ns": "ns",
    "reset_energy_pj": "pJ",
    "set_current_ua": "uA",
    "set_voltage_v": "V",
    "set_pulse_ns": "ns",
    "set_energy_pj": "pJ",
}


@dataclass(frozen=True)
class Param:
    """A single cell parameter value with provenance.

    Attributes
    ----------
    value:
        Numeric value in the engineering unit listed in
        :data:`PARAMETER_UNITS` (e.g. pulse lengths in ns).
    provenance:
        How the value was obtained.
    note:
        Optional free-text note (e.g. which donor cell a similarity
        estimate came from).
    """

    value: float
    provenance: Provenance = Provenance.REPORTED
    note: str = ""

    def __post_init__(self) -> None:
        if not math.isfinite(self.value):
            raise CellParameterError(f"parameter value must be finite, got {self.value!r}")

    def marked(self) -> str:
        """Render the value with its Table II provenance mark."""
        return f"{self.value:g}{self.provenance.table_mark}"


def reported(value: float, note: str = "") -> Param:
    """Shorthand for a parameter reported in the cited paper."""
    return Param(value, Provenance.REPORTED, note)


def electrical(value: float, note: str = "") -> Param:
    """Shorthand for a heuristic-1 (electrical properties) parameter."""
    return Param(value, Provenance.ELECTRICAL, note)


def interpolated(value: float, note: str = "") -> Param:
    """Shorthand for a heuristic-2 (interpolation) parameter."""
    return Param(value, Provenance.INTERPOLATED, note)


def similarity(value: float, note: str = "") -> Param:
    """Shorthand for a heuristic-3 (similarity) parameter."""
    return Param(value, Provenance.SIMILARITY, note)


@dataclass(frozen=True)
class NVMCell:
    """A cell-level memory technology model (one column of Table II).

    Only the parameters applicable to the cell's class are set; the rest
    stay ``None`` (Table II's grayed-out cells).  Parameter values use the
    engineering units of :data:`PARAMETER_UNITS`.
    """

    name: str
    citation: str
    cell_class: CellClass
    year: int
    access_device: str = "CMOS"

    process_nm: Optional[Param] = None
    cell_size_f2: Optional[Param] = None
    cell_levels: Optional[Param] = None

    read_current_ua: Optional[Param] = None
    read_voltage_v: Optional[Param] = None
    read_power_uw: Optional[Param] = None
    read_energy_pj: Optional[Param] = None

    reset_current_ua: Optional[Param] = None
    reset_voltage_v: Optional[Param] = None
    reset_pulse_ns: Optional[Param] = None
    reset_energy_pj: Optional[Param] = None

    set_current_ua: Optional[Param] = None
    set_voltage_v: Optional[Param] = None
    set_pulse_ns: Optional[Param] = None
    set_energy_pj: Optional[Param] = None

    def __post_init__(self) -> None:
        if self.year < 1990 or self.year > 2030:
            raise CellParameterError(f"{self.name}: implausible year {self.year}")
        for key in ("process_nm", "cell_size_f2", "cell_levels"):
            param = getattr(self, key)
            if param is not None and param.value <= 0:
                raise CellParameterError(f"{self.name}: {key} must be positive")

    # -- identity -----------------------------------------------------

    @property
    def display_name(self) -> str:
        """Citation name plus class subscript, e.g. ``Zhang_R``."""
        if self.cell_class is CellClass.SRAM:
            return self.name
        return f"{self.name}_{self.cell_class.value[0]}"

    # -- parameter access ----------------------------------------------

    def get(self, parameter: str) -> Optional[Param]:
        """Return a parameter by Table II name, or None when unset."""
        if parameter not in PARAMETER_UNITS:
            raise CellParameterError(f"unknown parameter {parameter!r}")
        return getattr(self, parameter)

    def value(self, parameter: str) -> float:
        """Return a parameter's numeric value; raise if unset."""
        param = self.get(parameter)
        if param is None:
            raise CellParameterError(
                f"{self.name}: parameter {parameter!r} is not set"
            )
        return param.value

    def parameters(self) -> Iterator[Tuple[str, Param]]:
        """Iterate over (name, Param) for every set parameter."""
        for key in PARAMETER_UNITS:
            param = getattr(self, key)
            if param is not None:
                yield key, param

    def derived_parameters(self) -> Dict[str, Param]:
        """Parameters whose values came from a heuristic."""
        return {
            key: param
            for key, param in self.parameters()
            if param.provenance.is_derived
        }

    def with_params(self, **updates: Param) -> "NVMCell":
        """Return a copy with the given parameters replaced."""
        for key in updates:
            if key not in PARAMETER_UNITS:
                raise CellParameterError(f"unknown parameter {key!r}")
        return dataclasses.replace(self, **updates)

    # -- derived physical quantities ------------------------------------

    @property
    def bits_per_cell(self) -> int:
        """Number of bits stored per cell.

        Table II's ``cell levels`` row counts bits per cell: the two
        entries with value 2 (Close, Xue) are the paper's MLC devices —
        Close is a "2+ bit/cell" chip and Xue is described as storing two
        levels per cell with roughly half the per-bit area.
        """
        if self.cell_levels is None:
            return 1
        return max(1, int(self.cell_levels.value))

    @property
    def is_mlc(self) -> bool:
        """True for multi-level cells (more than one bit per cell)."""
        return self.bits_per_cell > 1

    def physical_cell_area_m2(self) -> float:
        """Cell area in m^2 from cell size [F^2] and process [nm]."""
        return units.feature_size_area(
            self.value("cell_size_f2"), self.value("process_nm")
        )

    def read_energy_j(self) -> float:
        """Per-bit read energy in joules.

        Uses the reported read energy when present, otherwise derives it
        from read power and a nominal sensing time, or from read current
        and voltage.
        """
        if self.read_energy_pj is not None:
            return self.read_energy_pj.value * units.PJ
        if self.read_power_uw is not None:
            # Nominal 1 ns sensing interval: consistent across cells, and
            # the LLC-level read energy is dominated by periphery anyway.
            return self.read_power_uw.value * units.UW * (1.0 * units.NS)
        raise CellParameterError(f"{self.name}: no way to derive read energy")

    def write_energy_j(self) -> float:
        """Per-bit write energy in joules (mean of set and reset)."""
        energies = []
        for which in ("set", "reset"):
            param = self.get(f"{which}_energy_pj")
            if param is not None:
                energies.append(param.value * units.PJ)
        if not energies:
            raise CellParameterError(f"{self.name}: no set/reset energy available")
        return sum(energies) / len(energies)

    def write_pulse_s(self) -> float:
        """Worst-case programming pulse in seconds (max of set, reset)."""
        pulses = []
        for which in ("set", "reset"):
            param = self.get(f"{which}_pulse_ns")
            if param is not None:
                pulses.append(param.value * units.NS)
        if not pulses:
            if self.cell_class is CellClass.SRAM:
                return 0.0
            raise CellParameterError(f"{self.name}: no set/reset pulse available")
        return max(pulses)

    def set_pulse_s(self) -> float:
        """Set programming pulse in seconds (0 when not applicable)."""
        if self.set_pulse_ns is None:
            return 0.0
        return self.set_pulse_ns.value * units.NS

    def reset_pulse_s(self) -> float:
        """Reset programming pulse in seconds (0 when not applicable)."""
        if self.reset_pulse_ns is None:
            return 0.0
        return self.reset_pulse_ns.value * units.NS

    def write_asymmetry(self) -> float:
        """Ratio of write to read energy — the paper's key NVM property."""
        return self.write_energy_j() / self.read_energy_j()
