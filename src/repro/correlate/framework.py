"""The workload-characterization framework (paper Section VI, Figure 3).

Pipeline: per-workload feature arrays (PRISM) + per-workload normalised
energy/speedup (simulation) -> linear correlation per (feature,
response) pair, per LLC technology and configuration.

Two system scopes, as in the paper:

- *general purpose*: all characterized workloads together — here total
  read/write counts dominate the correlations;
- *specialised (AI)*: only the cpu2017 inference workloads — here write
  entropy and write footprints dominate while totals decorrelate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.correlate.features import (
    ABSOLUTE_RESPONSE_NAMES,
    RESPONSE_NAMES,
    AlignedData,
    align,
    align_absolute,
)
from repro.correlate.linear import correlation_matrix, top_correlates
from repro.errors import CorrelationError
from repro.prism.profile import FEATURE_NAMES, WorkloadFeatures
from repro.sim.results import NormalizedResult

#: The LLCs the paper's Figure 4 analyses (best performers).
FIGURE4_LLCS: Tuple[str, ...] = ("Jan_S", "Xue_S", "Hayakawa_R")


@dataclass(frozen=True)
class CorrelationReport:
    """Correlation heatmap for one LLC technology and configuration.

    ``matrix`` is (features x responses); rows follow
    :data:`repro.prism.profile.FEATURE_NAMES`, columns follow
    ``response_names`` (normalised analyses use energy/speedup, the
    absolute general-purpose analysis energy/execution_time).
    """

    llc_name: str
    configuration: str
    scope: str
    workloads: Tuple[str, ...]
    matrix: np.ndarray
    response_names: Tuple[str, ...] = RESPONSE_NAMES

    def correlation(self, feature: str, response: str) -> float:
        """One heatmap cell by name."""
        try:
            i = FEATURE_NAMES.index(feature)
        except ValueError:
            raise CorrelationError(f"unknown feature {feature!r}")
        try:
            j = self.response_names.index(response)
        except ValueError:
            raise CorrelationError(f"unknown response {response!r}")
        return float(self.matrix[i, j])

    def ranked_features(self, response: str = "energy") -> List[Tuple[str, float]]:
        """Features ranked by |correlation| with a response."""
        j = self.response_names.index(response)
        return top_correlates(self.matrix, list(FEATURE_NAMES), response_index=j)


def run_framework(
    profiles: Dict[str, WorkloadFeatures],
    results_by_llc: Dict[str, Dict[str, NormalizedResult]],
    workloads: Sequence[str],
    configuration: str,
    scope: str,
    llc_names: Optional[Sequence[str]] = None,
    absolute: bool = False,
) -> List[CorrelationReport]:
    """Run the Figure 3 pipeline for a set of LLCs over a workload scope.

    Parameters
    ----------
    profiles:
        PRISM features per workload.
    results_by_llc:
        ``{llc_name: {workload: NormalizedResult}}`` from simulation.
    workloads:
        The workload scope (all characterized, or the AI subset).
    configuration:
        ``"fixed-capacity"`` or ``"fixed-area"`` (label only).
    scope:
        ``"general"`` or ``"ai"`` (label only).
    llc_names:
        LLCs to analyse; defaults to :data:`FIGURE4_LLCS`.
    absolute:
        Correlate against absolute LLC energy and execution time
        (``results_by_llc`` then holds SimResults) instead of the
        normalised energy/speedup pair — the paper's general-purpose
        analysis mode.
    """
    names = list(llc_names) if llc_names is not None else list(FIGURE4_LLCS)
    aligner = align_absolute if absolute else align
    reports = []
    for llc_name in names:
        if llc_name not in results_by_llc:
            raise CorrelationError(f"no results for LLC {llc_name!r}")
        aligned = aligner(profiles, results_by_llc[llc_name], workloads)
        matrix = correlation_matrix(aligned.features, aligned.responses)
        reports.append(
            CorrelationReport(
                llc_name=llc_name,
                configuration=configuration,
                scope=scope,
                workloads=aligned.workloads,
                matrix=matrix,
                response_names=aligned.response_names,
            )
        )
    return reports


def dominant_feature_group(report: CorrelationReport, response: str = "energy") -> str:
    """Classify which feature family dominates a report's correlations.

    Returns ``"totals"`` when total read/write counts carry the largest
    absolute correlation and ``"write-behaviour"`` when write entropy or
    write footprints do — the paper's general-purpose vs AI distinction.
    """
    ranked = report.ranked_features(response)
    best_feature, _ = ranked[0]
    if best_feature in ("total_reads", "total_writes"):
        return "totals"
    if best_feature in (
        "write_global_entropy",
        "write_local_entropy",
        "unique_writes",
        "footprint90_writes",
    ):
        return "write-behaviour"
    return "other"
