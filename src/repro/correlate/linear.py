"""Linear (Pearson) correlation utilities.

The paper's framework "learns" which architecture-agnostic features
predict NVM-LLC energy and speedup by computing linear correlation
between each feature column and each response column across workloads
(Figure 3).  Degenerate columns (zero variance) correlate as 0 rather
than NaN so heatmaps stay well-defined.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CorrelationError


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Returns 0.0 when either sample has zero variance (a constant
    feature cannot predict anything), and raises on length mismatch or
    samples shorter than 2.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise CorrelationError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise CorrelationError("correlation needs at least two samples")
    # A constant sample is degenerate by definition; test via the raw
    # range, not the centred values, because the mean of identical floats
    # can round to a slightly different value and leave a spurious
    # constant residual.
    if np.ptp(x) == 0.0 or np.ptp(y) == 0.0:
        return 0.0
    xc = x - x.mean()
    yc = y - y.mean()
    # Rescale to unit max-magnitude so subnormal inputs do not underflow
    # the denominator to zero.
    x_scale = np.abs(xc).max()
    y_scale = np.abs(yc).max()
    if x_scale == 0.0 or y_scale == 0.0:
        return 0.0
    xc = xc / x_scale
    yc = yc / y_scale
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float(np.clip((xc * yc).sum() / denom, -1.0, 1.0))


def correlation_matrix(
    features: np.ndarray, responses: np.ndarray
) -> np.ndarray:
    """Pairwise Pearson correlations: (n_features x n_responses).

    ``features`` is (workloads x features); ``responses`` is
    (workloads x responses).  Entry [i, j] is the correlation of feature
    column i with response column j across workloads.
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    responses = np.atleast_2d(np.asarray(responses, dtype=np.float64))
    if features.shape[0] != responses.shape[0]:
        raise CorrelationError(
            "feature and response matrices must share the workload axis: "
            f"{features.shape[0]} vs {responses.shape[0]}"
        )
    n_features = features.shape[1]
    n_responses = responses.shape[1]
    out = np.zeros((n_features, n_responses))
    for i in range(n_features):
        for j in range(n_responses):
            out[i, j] = pearson(features[:, i], responses[:, j])
    return out


def top_correlates(
    matrix: np.ndarray,
    feature_names: list,
    response_index: int = 0,
    k: Optional[int] = None,
) -> list:
    """Features ranked by |correlation| with one response column."""
    if matrix.shape[0] != len(feature_names):
        raise CorrelationError("feature_names length must match matrix rows")
    column = matrix[:, response_index]
    order = np.argsort(-np.abs(column))
    ranked = [(feature_names[i], float(column[i])) for i in order]
    return ranked[:k] if k is not None else ranked
