"""Workload-feature correlation framework (paper Section VI)."""

from repro.correlate.features import RESPONSE_NAMES, AlignedData, align
from repro.correlate.framework import (
    FIGURE4_LLCS,
    CorrelationReport,
    dominant_feature_group,
    run_framework,
)
from repro.correlate.linear import correlation_matrix, pearson, top_correlates
from repro.correlate.stats import (
    CorrelationInterval,
    bootstrap_pearson,
    jackknife_pearson,
    linear_fit,
    rankdata,
    spearman,
)

__all__ = [
    "RESPONSE_NAMES",
    "AlignedData",
    "align",
    "FIGURE4_LLCS",
    "CorrelationReport",
    "dominant_feature_group",
    "run_framework",
    "correlation_matrix",
    "pearson",
    "top_correlates",
    "CorrelationInterval",
    "bootstrap_pearson",
    "jackknife_pearson",
    "linear_fit",
    "rankdata",
    "spearman",
]
