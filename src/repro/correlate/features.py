"""Assembly of feature and response matrices for the framework.

Bridges :mod:`repro.prism` (feature vectors per workload) and
:mod:`repro.sim` (energy/speedup per workload per LLC) into the aligned
matrices :func:`repro.correlate.linear.correlation_matrix` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CorrelationError
from repro.prism.profile import FEATURE_NAMES, WorkloadFeatures
from repro.sim.results import NormalizedResult

#: Response columns for the normalised (Section V, Figure 4) analysis.
RESPONSE_NAMES: Tuple[str, ...] = ("energy", "speedup")

#: Response columns for the absolute (general-purpose) analysis: total
#: LLC energy and system execution time, per the paper's Section VI
#: wording for the general-purpose case.
ABSOLUTE_RESPONSE_NAMES: Tuple[str, ...] = ("energy", "execution_time")


@dataclass(frozen=True)
class AlignedData:
    """Feature and response matrices over a common workload ordering."""

    workloads: Tuple[str, ...]
    feature_names: Tuple[str, ...]
    response_names: Tuple[str, ...]
    features: np.ndarray  # (workloads x features)
    responses: np.ndarray  # (workloads x responses)


def align(
    profiles: Dict[str, WorkloadFeatures],
    results: Dict[str, NormalizedResult],
    workloads: Sequence[str],
) -> AlignedData:
    """Align features and *normalised* results over a workload list.

    Responses are the paper's Figure 4 axes: normalised LLC energy and
    speedup.  Raises when a workload is missing from either side —
    silent dropping would skew the correlations.
    """
    return align_responses(
        profiles,
        results,
        workloads,
        extractor=lambda r: (r.energy_ratio, r.speedup),
        response_names=RESPONSE_NAMES,
    )


def align_absolute(
    profiles: Dict[str, WorkloadFeatures],
    results: Dict[str, "object"],
    workloads: Sequence[str],
) -> AlignedData:
    """Align features against *absolute* responses (SimResult values).

    Responses are total LLC energy [J] and execution time [s] — the
    quantities the paper's general-purpose analysis names, which scale
    with total read/write counts almost by construction.
    """
    return align_responses(
        profiles,
        results,
        workloads,
        extractor=lambda r: (r.llc_energy_j, r.runtime_s),
        response_names=ABSOLUTE_RESPONSE_NAMES,
    )


def align_responses(
    profiles: Dict[str, WorkloadFeatures],
    results: Dict[str, "object"],
    workloads: Sequence[str],
    extractor,
    response_names: Tuple[str, ...],
) -> AlignedData:
    """Generic alignment with a caller-chosen response extractor."""
    if len(workloads) < 2:
        raise CorrelationError("correlation needs at least two workloads")
    missing_p = [w for w in workloads if w not in profiles]
    missing_r = [w for w in workloads if w not in results]
    if missing_p or missing_r:
        raise CorrelationError(
            f"missing profiles for {missing_p} / results for {missing_r}"
        )
    feature_rows = []
    response_rows = []
    for workload in workloads:
        feature_rows.append(profiles[workload].as_array())
        response_rows.append(list(extractor(results[workload])))
    return AlignedData(
        workloads=tuple(workloads),
        feature_names=tuple(FEATURE_NAMES),
        response_names=response_names,
        features=np.vstack(feature_rows),
        responses=np.array(response_rows, dtype=np.float64),
    )
