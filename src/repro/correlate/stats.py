"""Statistical utilities beyond plain Pearson correlation.

The paper's AI-scope correlations rest on three data points; anyone
building on them should know how fragile that is.  This module provides
the tools to quantify it: Spearman rank correlation (used to compare
measured Table VI orderings with the paper's), jackknife/bootstrap
confidence intervals for Pearson r, and simple least-squares fits for
trend lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.correlate.linear import pearson
from repro.errors import CorrelationError


def rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks of a sample (ties share the mean rank)."""
    x = np.asarray(x, dtype=np.float64)
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(len(x), dtype=np.float64)
    ranks[order] = np.arange(len(x), dtype=np.float64)
    # Average tied groups.
    sorted_values = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            mean_rank = (i + j) / 2.0
            ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (Pearson over average ranks)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise CorrelationError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise CorrelationError("correlation needs at least two samples")
    return pearson(rankdata(x), rankdata(y))


@dataclass(frozen=True)
class CorrelationInterval:
    """A correlation estimate with a resampled confidence interval."""

    estimate: float
    low: float
    high: float
    n_samples: int

    @property
    def is_stable(self) -> bool:
        """True when the CI does not straddle zero."""
        return (self.low > 0 and self.high > 0) or (self.low < 0 and self.high < 0)

    @property
    def width(self) -> float:
        """CI width — 3-point correlations produce embarrassing widths."""
        return self.high - self.low


def bootstrap_pearson(
    x: np.ndarray,
    y: np.ndarray,
    n_resamples: int = 2000,
    confidence: float = 0.9,
    seed: int = 0,
) -> CorrelationInterval:
    """Percentile-bootstrap confidence interval for Pearson r.

    Degenerate resamples (constant columns) contribute r = 0, which is
    the honest value for "no information".
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise CorrelationError("bootstrap needs two equal samples of size >= 2")
    if not 0.0 < confidence < 1.0:
        raise CorrelationError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = x.size
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        index = rng.integers(0, n, size=n)
        estimates[i] = pearson(x[index], y[index])
    alpha = (1.0 - confidence) / 2.0
    return CorrelationInterval(
        estimate=pearson(x, y),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        n_samples=n,
    )


def jackknife_pearson(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Leave-one-out range of Pearson r: (min, max) over deletions.

    For the AI scope's three points this is the entire story: deleting
    any point leaves two, whose correlation is +/-1 by construction.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 3:
        raise CorrelationError("jackknife needs at least three samples")
    values = []
    for i in range(x.size):
        mask = np.arange(x.size) != i
        values.append(pearson(x[mask], y[mask]))
    return (float(min(values)), float(max(values)))


def linear_fit(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Least-squares slope and intercept of y on x."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise CorrelationError("fit needs two equal samples of size >= 2")
    xc = x - x.mean()
    denom = (xc * xc).sum()
    if denom == 0.0:
        raise CorrelationError("fit needs a non-constant x")
    slope = float((xc * (y - y.mean())).sum() / denom)
    intercept = float(y.mean() - slope * x.mean())
    return slope, intercept
