"""Experiment: Section V-C core-sweep sensitivity study.

Scales the multi-threaded NPB workloads from 1 to 32 cores (one thread
per core, constant total work) against the fixed-area LLC technologies
the paper analyses, normalised to a single-core SRAM baseline.  As cores
grow, per-thread striping multiplies the aggregate footprint, so LLC
capacity becomes the binding resource — the paper's "capacity is an
increasing strain" observation — while leakage-heavy dense NVMs pay for
their watts whenever runtime stretches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext, TableWriter
from repro.sim.config import gainestown
from repro.sim.results import SimResult
from repro.workloads.generators import DEFAULT_SEED
from repro.workloads.profiles import profile

#: Core counts the paper sweeps.
DEFAULT_CORES = (1, 2, 4, 8, 16, 32)

#: Workloads Section V-C discusses.
DEFAULT_WORKLOADS = ("ft", "cg", "lu", "sp", "mg", "is")

#: Fixed-area technologies Section V-C analyses (plus the SRAM anchor).
DEFAULT_LLCS = ("Umeki_S", "Jan_S", "Xue_S", "Hayakawa_R", "Zhang_R", "SRAM")


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, cores, llc) sample of the sweep."""

    workload: str
    n_cores: int
    llc_name: str
    runtime_s: float
    llc_energy_j: float
    mpki: float

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product."""
        return self.llc_energy_j * self.runtime_s**2


@dataclass(frozen=True)
class CoreSweepResult:
    """All sweep samples plus the single-core SRAM baselines."""

    points: List[SweepPoint]
    baselines: Dict[str, SweepPoint]

    def point(self, workload: str, n_cores: int, llc: str) -> SweepPoint:
        """Sample lookup."""
        for p in self.points:
            if (p.workload, p.n_cores, p.llc_name) == (workload, n_cores, llc):
                return p
        raise ExperimentError(f"no sweep point for {workload}/{n_cores}/{llc}")

    def speedup(self, workload: str, n_cores: int, llc: str) -> float:
        """Speedup vs the single-core SRAM baseline of that workload."""
        baseline = self.baselines[workload]
        return baseline.runtime_s / self.point(workload, n_cores, llc).runtime_s

    def energy_ratio(self, workload: str, n_cores: int, llc: str) -> float:
        """LLC energy vs the single-core SRAM baseline."""
        baseline = self.baselines[workload]
        return self.point(workload, n_cores, llc).llc_energy_j / baseline.llc_energy_j


def run(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    cores: Sequence[int] = DEFAULT_CORES,
    llcs: Sequence[str] = DEFAULT_LLCS,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    context: Optional[ExperimentContext] = None,
    jobs: Optional[int] = None,
) -> CoreSweepResult:
    """Run the core sweep.

    The baseline is the 1-core SRAM run of each workload; it is always
    simulated even when 1 is not in ``cores``.

    A shared ``context`` (whose scale/seed/jobs then take precedence)
    lets the sweep reuse traces and replays across experiments; ``jobs``
    alone fans the (workload, core-count) cells out over worker
    processes.
    """
    if not workloads or not cores or not llcs:
        raise ExperimentError("core sweep needs workloads, cores and llcs")
    if context is None:
        context = ExperimentContext(scale=scale, seed=seed, jobs=jobs)

    # SRAM is replayed last within each cell (the legacy point order);
    # the 1-core cell needs it regardless, for the baseline.
    model_order = [name for name in llcs if name != "SRAM"]
    if "SRAM" in llcs:
        model_order.append("SRAM")

    core_list = sorted(set(cores) | {1})
    cells = []
    for workload in workloads:
        bench = profile(workload)
        base_n = max(5000, int(bench.n_accesses * context.scale))
        for n_cores in core_list:
            # Weak scaling: each core brings its own thread and working
            # set, which is what turns capacity into "an increasing
            # strain on the system as cores increase" (Section V-C).
            n = min(base_n * n_cores // 4, 4 * base_n) if n_cores > 4 else base_n
            names = list(model_order) if n_cores in cores else []
            if n_cores == 1 and "SRAM" not in names:
                names.append("SRAM")
            cells.append(
                context.cell(
                    workload,
                    "fixed-area",
                    names,
                    n_accesses=n,
                    n_threads=n_cores,
                    arch=gainestown(n_cores=n_cores),
                )
            )

    points: List[SweepPoint] = []
    baselines: Dict[str, SweepPoint] = {}
    for cell, results in zip(cells, context.run_cells(cells)):
        n_cores = cell.n_threads
        if n_cores == 1:
            baselines[cell.workload] = _point(results["SRAM"], cell.workload, 1)
        if n_cores not in cores:
            continue
        for name in model_order:
            points.append(_point(results[name], cell.workload, n_cores))
    return CoreSweepResult(points=points, baselines=baselines)


def _point(result: SimResult, workload: str, n_cores: int) -> SweepPoint:
    return SweepPoint(
        workload=workload,
        n_cores=n_cores,
        llc_name=result.llc_name,
        runtime_s=result.runtime_s,
        llc_energy_j=result.llc_energy_j,
        mpki=result.mpki,
    )


def render(result: CoreSweepResult) -> str:
    """Render speedup/energy tables plus sparkline scaling curves."""
    from repro.report.charts import sparkline

    out = []
    workloads = sorted({p.workload for p in result.points})
    cores = sorted({p.n_cores for p in result.points})
    llcs = sorted({p.llc_name for p in result.points})
    for workload in workloads:
        speed = TableWriter(headers=["LLC"] + [f"{c} cores" for c in cores])
        energy = TableWriter(headers=["LLC"] + [f"{c} cores" for c in cores])
        curves = []
        for llc in llcs:
            speedups = [result.speedup(workload, c, llc) for c in cores]
            speed.add(llc, *speedups)
            energy.add(llc, *[result.energy_ratio(workload, c, llc) for c in cores])
            curves.append(f"  {llc:12s} {sparkline(speedups)}")
        out.append(
            f"Core sweep — {workload}: speedup vs 1-core SRAM\n{speed.render()}"
            f"\n\nCore sweep — {workload}: LLC energy vs 1-core SRAM\n{energy.render()}"
            f"\n\nscaling curves ({cores[0]}->{cores[-1]} cores):\n"
            + "\n".join(curves)
        )
    return "\n\n".join(out)
