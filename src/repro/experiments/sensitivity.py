"""Experiment: robustness of the headline conclusions (extension).

A reproduction on a calibrated simulator owes its reader an answer to
"would the conclusions change if your knobs were different?"  This
study sweeps the two axes we chose rather than measured:

1. **core-model constants** — base CPI, LLC-hit latency exposure, and
   the MLP ceiling, each varied well beyond plausible error;
2. **trace seeds** — fresh random draws of every synthetic workload.

At every point it re-checks the paper's sign-level conclusions
(*invariants*): NVM fixed-capacity speedups near unity, Jan_S an
order-of-magnitude energy winner, Kang_P an energy loser on write-heavy
AI work, and the Figure 4 AI-scope contrast (write-behaviour features
out-correlate totals for energy).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.correlate.linear import pearson
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext, TableWriter
from repro.prism.profile import extract_features
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.results import normalize
from repro.workloads.generators import DEFAULT_SEED

#: Core-model constants swept (name, values).  The middle value of each
#: axis is the calibrated default.
MODEL_AXES: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("base_cpi", (0.4, 0.55, 0.8)),
    ("llc_hit_exposure", (0.3, 0.55, 0.8)),
    ("max_mlp", (3.0, 6.0, 10.0)),
)

#: Seeds swept for the trace-randomness axis.
SEED_AXIS: Tuple[int, ...] = (DEFAULT_SEED, 7, 1234)

#: Workloads the invariants are evaluated on.
INVARIANT_WORKLOADS: Tuple[str, ...] = ("deepsjeng", "leela", "exchange2")


@dataclass(frozen=True)
class InvariantCheck:
    """One configuration's verdicts on the paper's sign conclusions."""

    label: str
    speedup_band: bool        # all NVM speedups within 0.9..1.06
    jan_energy_win: bool      # Jan_S energy < 0.3x SRAM everywhere
    kang_energy_loss: bool    # Kang_P energy > 1x SRAM on deepsjeng
    figure4_contrast: bool    # |r(E, H_wl)| > |r(E, totals)| on AI scope

    @property
    def all_hold(self) -> bool:
        """Whether every invariant holds in this configuration."""
        return (
            self.speedup_band
            and self.jan_energy_win
            and self.kang_energy_loss
            and self.figure4_contrast
        )


@dataclass(frozen=True)
class SensitivityResult:
    """All configuration checks."""

    checks: List[InvariantCheck]

    @property
    def robust(self) -> bool:
        """True when the conclusions hold at every swept point."""
        return all(c.all_hold for c in self.checks)

    @property
    def holding_fraction(self) -> float:
        """Fraction of configurations where everything holds."""
        if not self.checks:
            return 0.0
        return sum(c.all_hold for c in self.checks) / len(self.checks)


#: Models each invariant check replays ("SRAM" is the baseline).
CHECK_MODELS: Tuple[str, ...] = ("SRAM", "Jan_S", "Kang_P", "Xue_S")


def _assemble_check(
    label: str,
    seed: int,
    per_workload,
    context: ExperimentContext,
    features_cache,
) -> InvariantCheck:
    speedups: List[float] = []
    jan_ratios: List[float] = []
    kang_deepsjeng = 0.0
    entropies: List[float] = []
    totals: List[float] = []
    energies: List[float] = []

    for workload in INVARIANT_WORKLOADS:
        results = per_workload[workload]
        baseline = results["SRAM"]
        jan = normalize(results["Jan_S"], baseline)
        kang = normalize(results["Kang_P"], baseline)
        xue = normalize(results["Xue_S"], baseline)
        speedups.extend((jan.speedup, kang.speedup, xue.speedup))
        jan_ratios.append(jan.energy_ratio)
        if workload == "deepsjeng":
            kang_deepsjeng = kang.energy_ratio
        key = (workload, seed)
        if key not in features_cache:
            # Features depend on the trace only — shared across every
            # model-constant configuration at this seed.
            features_cache[key] = extract_features(
                context.trace(workload, seed=seed)
            )
        features = features_cache[key]
        entropies.append(features.write_local_entropy)
        totals.append(features.total_reads)
        energies.append(jan.energy_ratio)

    r_entropy = pearson(np.array(entropies), np.array(energies))
    r_totals = pearson(np.array(totals), np.array(energies))
    return InvariantCheck(
        label=label,
        speedup_band=all(0.9 < s < 1.06 for s in speedups),
        jan_energy_win=all(r < 0.3 for r in jan_ratios),
        kang_energy_loss=kang_deepsjeng > 1.0,
        figure4_contrast=abs(r_entropy) > abs(r_totals),
    )


def run(
    scale: float = 1.0,
    axes: Sequence[Tuple[str, Sequence[float]]] = MODEL_AXES,
    seeds: Sequence[int] = SEED_AXIS,
    context: Optional[ExperimentContext] = None,
    jobs: Optional[int] = None,
) -> SensitivityResult:
    """Run the sensitivity sweep.

    Model-constant points vary one knob at a time around the calibrated
    default (one-factor-at-a-time, 7 points for the default axes); the
    seed axis re-runs the default configuration on fresh traces.

    A shared ``context`` (whose scale/jobs then take precedence) reuses
    traces across configurations; ``jobs`` alone fans the
    (configuration, workload) cells out over worker processes.
    """
    if context is None:
        if not 0.0 < scale <= 1.0:
            raise ExperimentError("scale must be in (0, 1]")
        context = ExperimentContext(scale=scale, jobs=jobs)

    default = gainestown()
    configs: List[Tuple[str, ArchitectureConfig, int]] = [
        ("default", default, DEFAULT_SEED)
    ]
    for name, values in axes:
        for value in values:
            if value == getattr(default, name):
                continue  # the default point is already checked
            arch = dataclasses.replace(default, **{name: value})
            configs.append((f"{name}={value:g}", arch, DEFAULT_SEED))
    for seed in seeds:
        if seed == DEFAULT_SEED:
            continue
        configs.append((f"seed={seed}", default, seed))

    cells = [
        context.cell(workload, "fixed-capacity", CHECK_MODELS, seed=seed, arch=arch)
        for _, arch, seed in configs
        for workload in INVARIANT_WORKLOADS
    ]
    all_results = context.run_cells(cells)

    checks: List[InvariantCheck] = []
    features_cache: Dict[tuple, object] = {}
    offset = 0
    for label, _, seed in configs:
        per_workload = {
            workload: all_results[offset + i]
            for i, workload in enumerate(INVARIANT_WORKLOADS)
        }
        offset += len(INVARIANT_WORKLOADS)
        checks.append(
            _assemble_check(label, seed, per_workload, context, features_cache)
        )
    return SensitivityResult(checks=checks)


def render(result: SensitivityResult) -> str:
    """Render the verdict table."""
    table = TableWriter(
        headers=[
            "configuration",
            "speedup band",
            "Jan_S win",
            "Kang_P loss",
            "Fig4 contrast",
            "all",
        ]
    )
    for check in result.checks:
        table.add(
            check.label,
            "ok" if check.speedup_band else "FAIL",
            "ok" if check.jan_energy_win else "FAIL",
            "ok" if check.kang_energy_loss else "FAIL",
            "ok" if check.figure4_contrast else "FAIL",
            "ok" if check.all_hold else "FAIL",
        )
    verdict = (
        "conclusions hold at every swept point"
        if result.robust
        else f"conclusions hold in {result.holding_fraction:.0%} of points"
    )
    return (
        "Sensitivity of the headline conclusions to model constants and seeds\n"
        + table.render()
        + f"\n\n{verdict}"
    )
