"""Experiment: the paper's Section VII future-work lifetime study.

"Future work will characterize the extent to which architecture-agnostic
features (like the ones studied in this work) will affect the lifetime
of different NVMs."  This driver does exactly that: for each
characterized workload it replays the wear distribution on the
endurance-limited technologies (PCRAM, RRAM), projects unleveled
lifetime at the workload's simulated write rate, and correlates the
(log-)lifetimes against the Table VI features.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.correlate.linear import pearson
from repro.endurance.lifetime import LifetimeEstimate, estimate_lifetime
from repro.endurance.wear import replay_with_wear
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext, TableWriter
from repro.nvsim.published import published_model, sram_baseline
from repro.prism.profile import FEATURE_NAMES, WorkloadFeatures, extract_features
from repro.workloads.registry import characterized_benchmarks

#: The endurance-limited technologies the study covers.
DEFAULT_LLCS = ("Kang_P", "Close_P", "Zhang_R", "Hayakawa_R")


@dataclass(frozen=True)
class LifetimeStudy:
    """Per-workload lifetimes plus feature correlations."""

    llc_names: Tuple[str, ...]
    workloads: Tuple[str, ...]
    lifetimes: Dict[str, Dict[str, LifetimeEstimate]]  # llc -> workload
    features: Dict[str, WorkloadFeatures]

    def lifetime_years(self, llc: str, workload: str) -> float:
        """Unleveled lifetime in years."""
        estimate = self.lifetimes[llc][workload]
        if estimate.unleveled_years is None:
            raise ExperimentError(f"{llc} does not wear out")
        return estimate.unleveled_years

    def correlations(self, llc: str) -> Dict[str, float]:
        """Pearson r of each feature vs log-lifetime across workloads."""
        lifetimes = np.array(
            [math.log10(max(1e-12, self.lifetime_years(llc, w)))
             for w in self.workloads]
        )
        out = {}
        for feature in FEATURE_NAMES:
            values = np.array(
                [getattr(self.features[w], feature) for w in self.workloads]
            )
            out[feature] = pearson(values, lifetimes)
        return out


def run(
    context: Optional[ExperimentContext] = None,
    llcs: Sequence[str] = DEFAULT_LLCS,
    workloads: Optional[Sequence[str]] = None,
) -> LifetimeStudy:
    """Run the lifetime study."""
    context = context or ExperimentContext()
    names = list(workloads) if workloads is not None else characterized_benchmarks()
    models = {name: published_model(name, "fixed-capacity") for name in llcs}

    features: Dict[str, WorkloadFeatures] = {}
    lifetimes: Dict[str, Dict[str, LifetimeEstimate]] = {n: {} for n in llcs}
    for workload in names:
        trace = context.trace(workload)
        features[workload] = extract_features(trace)
        session = context.session(workload)
        # The wear window's wall-clock duration: the workload's own
        # simulated runtime on the SRAM baseline (technology-neutral).
        window_s = session.run(sram_baseline()).runtime_s
        for llc_name, model in models.items():
            wear = replay_with_wear(
                session.private.stream,
                model.capacity_bytes,
                context.arch.llc_associativity,
                context.arch.llc_block_bytes,
            )
            lifetimes[llc_name][workload] = estimate_lifetime(
                model.name, model.cell_class, wear, window_s
            )
    return LifetimeStudy(
        llc_names=tuple(llcs),
        workloads=tuple(names),
        lifetimes=lifetimes,
        features=features,
    )


def render(study: LifetimeStudy) -> str:
    """Render lifetimes and the feature-correlation table."""
    years = TableWriter(headers=["workload"] + list(study.llc_names))
    for workload in study.workloads:
        years.add(
            workload,
            *[
                f"{study.lifetime_years(llc, workload):.2e}"
                for llc in study.llc_names
            ],
        )
    correlations = TableWriter(headers=["feature"] + list(study.llc_names))
    per_llc = {llc: study.correlations(llc) for llc in study.llc_names}
    for feature in FEATURE_NAMES:
        correlations.add(
            feature, *[per_llc[llc][feature] for llc in study.llc_names]
        )
    return (
        "Projected unleveled lifetime [years] (fixed-capacity, 2 MB)\n"
        + years.render()
        + "\n\nFeature correlation with log10(lifetime)\n"
        + correlations.render()
    )
