"""Experiment: regenerate Table V (workloads and their LLC mpki).

Measures each synthetic workload's LLC mpki on the baseline 2 MB SRAM
configuration and reports it next to the paper's value.  The paper's
selection criterion (mpki > 5, to stress the LLC) is checked; the one
documented deviation is exchange2, whose published tiny unique footprint
and double-digit mpki cannot coexist in a pure capacity/LRU model (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentContext, TableWriter
from repro.nvsim.published import sram_baseline
from repro.workloads.profiles import PROFILES
from repro.workloads.registry import all_benchmarks

#: Workloads exempt from the mpki > 5 check (see module docstring).
MPKI_EXEMPT = ("exchange2",)


@dataclass(frozen=True)
class Table5Row:
    """One workload's Table V entry: paper vs measured."""

    workload: str
    suite: str
    description: str
    multithreaded: bool
    paper_mpki: float
    measured_mpki: float

    @property
    def ratio(self) -> float:
        """measured / paper mpki."""
        return self.measured_mpki / self.paper_mpki if self.paper_mpki else 0.0


@dataclass(frozen=True)
class Table5Result:
    """All Table V rows."""

    rows: List[Table5Row]

    def row(self, workload: str) -> Table5Row:
        """Row lookup by name."""
        return next(r for r in self.rows if r.workload == workload)

    @property
    def stress_criterion_met(self) -> bool:
        """mpki > 5 for all non-exempt workloads (paper's selection bar)."""
        return all(
            r.measured_mpki > 5.0 for r in self.rows if r.workload not in MPKI_EXEMPT
        )


def run(context: Optional[ExperimentContext] = None) -> Table5Result:
    """Measure mpki for every workload on the SRAM baseline."""
    context = context or ExperimentContext()
    baseline = sram_baseline("fixed-capacity")
    rows = []
    for name in all_benchmarks():
        bench = PROFILES[name]
        result = context.session(name).run(baseline)
        rows.append(
            Table5Row(
                workload=name,
                suite=bench.suite,
                description=bench.description,
                multithreaded=bench.multithreaded,
                paper_mpki=bench.paper_mpki,
                measured_mpki=result.mpki,
            )
        )
    return Table5Result(rows=rows)


def render(result: Table5Result) -> str:
    """Render Table V with measured values."""
    table = TableWriter(
        headers=["suite", "bmk", "paper mpki", "measured mpki", "description"]
    )
    for row in result.rows:
        table.add(
            row.suite, row.workload, row.paper_mpki, row.measured_mpki, row.description
        )
    return "Table V — workloads (paper vs measured LLC mpki)\n" + table.render()
