"""Experiment drivers: one module per paper table/figure.

================  ============================================
module            regenerates
================  ============================================
``table2``        Table II  — cell parameters + provenance
``table3``        Table III — LLC models (both configurations)
``table5``        Table V   — workloads and LLC mpki
``table6``        Table VI  — workload features
``figure1``       Figure 1  — fixed-capacity results
``figure2``       Figure 2  — fixed-area results
``figure4``       Figure 4  — correlation heatmaps
``coresweep``     Section V-C core-sweep sensitivity study
``lifetime``      Section VII future-work lifetime study
``techniques_study``  technique-group evaluation (extension)
``compression``   compacted-way compressed LLC study (extension)
``sensitivity``   robustness sweep of the headline conclusions
``runner``        run-everything CLI (``repro-experiments``)
================  ============================================
"""

from repro.experiments import (
    compression,
    coresweep,
    lifetime,
    sensitivity,
    techniques_study,
    figure1,
    figure2,
    figure4,
    runner,
    table2,
    table3,
    table5,
    table6,
)
from repro.experiments.common import ExperimentContext, TableWriter

__all__ = [
    "compression",
    "coresweep",
    "lifetime",
    "sensitivity",
    "techniques_study",
    "figure1",
    "figure2",
    "figure4",
    "runner",
    "table2",
    "table3",
    "table5",
    "table6",
    "ExperimentContext",
    "TableWriter",
]
