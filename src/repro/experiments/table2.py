"""Experiment: regenerate Table II (NVM cell parameters + provenance).

Renders the released cell library with the paper's dagger/star
provenance marks and summarises, per cell, how many required parameters
the heuristics supplied — the measurable form of the paper's claim that
transparent heuristics are needed for apples-to-apples comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cells.base import PARAMETER_UNITS
from repro.cells.library import NVM_CELLS, table2_rows
from repro.cells.validation import ValidationReport, validate_cell
from repro.experiments.common import TableWriter


@dataclass(frozen=True)
class Table2Result:
    """Rendered Table II plus per-cell validation summaries."""

    rows: List[Dict[str, object]]
    validations: Dict[str, ValidationReport]

    @property
    def all_specifiable(self) -> bool:
        """True when every cell has all NVSim-required parameters."""
        return all(v.is_complete for v in self.validations.values())


def run() -> Table2Result:
    """Regenerate Table II."""
    validations = {cell.display_name: validate_cell(cell) for cell in NVM_CELLS}
    return Table2Result(rows=table2_rows(), validations=validations)


def render(result: Table2Result) -> str:
    """Render the experiment as text (Table II + validation summary)."""
    names = [cell.display_name for cell in NVM_CELLS]
    table = TableWriter(headers=["parameter"] + names)
    for row in result.rows:
        table.add(
            row["parameter"],
            *[row.get(name) if row.get(name) is not None else "-" for name in names],
        )
    summary = TableWriter(headers=["cell", "reported", "derived", "missing"])
    for name, report in result.validations.items():
        summary.add(
            name,
            len(report.reported),
            len(report.derived),
            ",".join(report.missing) or "-",
        )
    return (
        "Table II — NVM cell parameters († = heuristic 1, * = heuristics 2/3)\n"
        + table.render()
        + "\n\nPer-cell NVSim-specifiability\n"
        + summary.render()
    )
