"""Run-everything CLI: ``repro-experiments`` / ``python -m repro.experiments.runner``.

Regenerates every table and figure of the paper and prints them as
text tables.  ``--scale`` shortens traces for quick runs; ``--only``
restricts to a subset of experiments; ``--jobs`` fans simulation cells
out over worker processes; ``--engine`` picks the (bit-identical)
replay engine for the run and its workers.

Observability (:mod:`repro.obs`): ``--metrics`` collects run telemetry —
per-experiment spans, replay-cache hit rates, per-worker cell timings,
engine usage — and writes ``manifest.json`` + ``metrics.json`` beside
the run's results (next to ``--write``'s report when given, else under
``results/``); ``--trace-file`` additionally streams every completed
span as JSON lines.  ``repro-experiments metrics-summary RESULTS_DIR``
renders a saved pair back as a human-readable report.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.experiments import (
    compression,
    coresweep,
    lifetime,
    sensitivity,
    techniques_study,
    figure1,
    figure2,
    figure4,
    table2,
    table3,
    table5,
    table6,
)
from repro.experiments.common import ExperimentContext
from repro.obs import metrics as _metrics
from repro.obs.manifest import write_run_files
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressLine

#: Experiment ids in run order.
EXPERIMENTS = (
    "table2",
    "table3",
    "table5",
    "table6",
    "figure1",
    "figure2",
    "figure4",
    "coresweep",
    "lifetime",
    "techniques",
    "compression",
    "sensitivity",
)

#: The DSE planner surface (``--dse`` / ``--only dse``): not part of the
#: default full run — it explores beyond the paper's grid — but
#: dispatchable everywhere an experiment id is accepted.
DSE_EXPERIMENT = "dse"

#: Every dispatchable experiment id (the paper set plus the planner).
ALL_EXPERIMENTS = EXPERIMENTS + (DSE_EXPERIMENT,)

#: Default directory for manifest/metrics when ``--write`` gives no home.
DEFAULT_RESULTS_DIR = "results"


def run_experiment(name: str, context: ExperimentContext, features=None):
    """Run one experiment by id; returns ``(title, rendered_text, features)``.

    The single dispatch point every front end shares: :func:`run_all`,
    the experiment service (:mod:`repro.serve`) and the golden-result
    suite all produce their output through this function, so their
    renders are identical by construction.

    ``features`` threads the Table VI result through to Figure 4 so a
    full run computes it once; a standalone Figure 4 run recomputes it.
    The returned ``features`` is the Table VI result when this
    experiment produced one, else the value passed in.
    """
    if name == "table2":
        return "Table II", table2.render(table2.run()), features
    if name == "table3":
        result = table3.run()
        text = (
            table3.render(result, "fixed-capacity")
            + "\n\n"
            + table3.render(result, "fixed-area")
        )
        return "Table III", text, features
    if name == "table5":
        return "Table V", table5.render(table5.run(context)), features
    if name == "table6":
        features = table6.run(context)
        return "Table VI", table6.render(features), features
    if name == "figure1":
        return "Figure 1", figure1.render(figure1.run(context)), features
    if name == "figure2":
        return "Figure 2", figure2.render(figure2.run(context)), features
    if name == "figure4":
        return (
            "Figure 4",
            figure4.render(figure4.run(context, features)),
            features,
        )
    if name == "coresweep":
        return (
            "Core sweep (Section V-C)",
            coresweep.render(coresweep.run(context=context)),
            features,
        )
    if name == "lifetime":
        return (
            "Lifetime study (Section VII)",
            lifetime.render(lifetime.run(context)),
            features,
        )
    if name == "techniques":
        return (
            "Techniques study (extension)",
            techniques_study.render(techniques_study.run(context)),
            features,
        )
    if name == "compression":
        return (
            "Compressed LLC study (extension)",
            compression.render(compression.run(context)),
            features,
        )
    if name == "sensitivity":
        return (
            "Sensitivity study (extension)",
            sensitivity.render(sensitivity.run(context=context)),
            features,
        )
    if name == DSE_EXPERIMENT:
        from repro.analytic import planner as dse_planner

        outcome = dse_planner.run_dse(context)
        # Stash per-cell surrogate-vs-simulated provenance on the
        # context so run_all can record it in the run manifest.
        context.dse_provenance = dse_planner.provenance_record(outcome)
        return (
            "DSE planner (extension)",
            dse_planner.render(outcome),
            features,
        )
    from repro.errors import ExperimentError
    from repro.validate.schema import unknown_key_message

    raise ExperimentError(
        unknown_key_message("experiment", name, list(ALL_EXPERIMENTS))
    )


def _run_settings(
    scale: float, only: Optional[str], jobs: Optional[int],
    write_path: Optional[str], trace_file: Optional[str], seed: int,
    run_dir: Optional[str] = None, resumed_from: Optional[str] = None,
    policy=None,
) -> dict:
    """The provenance settings recorded in the run manifest."""
    from repro.sim.engine import resolve_engine
    from repro.sim.parallel import resolve_jobs
    from repro.sim.replay_cache import cache_enabled, default_cache_dir
    from repro.validate.policy import current_policy

    return {
        "scale": scale,
        "seed": seed,
        "only": only,
        "jobs": resolve_jobs(jobs),
        "engine": resolve_engine(None),
        "cache_dir": str(default_cache_dir()),
        "cache_enabled": cache_enabled(),
        "write_path": write_path,
        "trace_file": trace_file,
        "run_dir": run_dir,
        "resumed_from": resumed_from,
        "cell_timeout_s": policy.cell_timeout_s if policy else None,
        "cell_retries": policy.max_retries if policy else None,
        "validate": current_policy().value,
    }


def run_all(
    scale: float = 1.0,
    only: Optional[str] = None,
    stream=None,
    write_path: Optional[str] = None,
    jobs: Optional[int] = None,
    metrics: bool = False,
    trace_file: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    run_dir: Optional[str] = None,
    resume: Optional[str] = None,
    cell_timeout: Optional[float] = None,
    cell_retries: Optional[int] = None,
    validate: Optional[str] = None,
    engine: Optional[str] = None,
    dse: bool = False,
    dse_margin: Optional[float] = None,
) -> None:
    """Run the requested experiments; print renders and optionally write
    a markdown report (``write_path``).

    ``jobs`` fans simulation cells out over worker processes (0 = one
    per CPU); the default runs everything serially in-process.
    ``metrics`` (or ``trace_file``) turns on :mod:`repro.obs` collection
    for the run and writes ``manifest.json`` + ``metrics.json`` into
    ``metrics_dir`` (default: the run directory if given, else the
    report's directory, else ``results/``).

    ``run_dir`` makes the run *checkpointed*: every completed sweep
    cell is journaled to ``RUN_DIR/checkpoint.jsonl``
    (:mod:`repro.sim.checkpoint`) so a killed run can restart with
    ``resume`` — which reuses the journal and skips completed cells,
    producing output byte-identical to an uninterrupted run.
    ``cell_timeout`` / ``cell_retries`` configure the sweep fault
    policy (:class:`~repro.sim.parallel.FaultPolicy`).

    ``engine`` selects the replay engine for the whole run (every
    engine is bit-identical; see :mod:`repro.sim.engine`).  It is
    exported to ``$REPRO_SIM_ENGINE`` so parallel workers replay with
    the same engine; ``None`` defers to the environment.

    ``dse`` runs the analytical DSE planner (:mod:`repro.analytic`)
    instead of the paper set — shorthand for ``only="dse"``;
    ``dse_margin`` overrides the planner's Pareto-pruning accuracy
    margin (also ``$REPRO_DSE_MARGIN``).  The planner's per-cell
    surrogate-vs-simulated provenance is recorded in the run manifest
    when metrics are on.
    """
    from repro.report.builder import ReportBuilder
    from repro.sim.checkpoint import CheckpointJournal
    from repro.sim.engine import ENGINE_ENV, resolve_engine
    from repro.sim.parallel import FaultPolicy
    from repro.workloads.generators import DEFAULT_SEED

    if engine is not None:
        # Validate eagerly, then export: workers inherit the choice.
        os.environ[ENGINE_ENV] = resolve_engine(engine)

    if dse:
        if only is not None and only != DSE_EXPERIMENT:
            from repro.errors import ExperimentError

            raise ExperimentError(
                f"--dse and --only {only} conflict; pass one of them"
            )
        only = DSE_EXPERIMENT
    if dse_margin is not None:
        from repro.analytic.planner import DSE_MARGIN_ENV, resolve_margin

        # Validate eagerly, then export: the planner (and any worker)
        # reads the environment at score time.
        os.environ[DSE_MARGIN_ENV] = repr(resolve_margin(dse_margin))

    if stream is None:
        # Resolve at call time so test harnesses that swap sys.stdout
        # capture the output.
        stream = sys.stdout

    if resume is not None:
        if run_dir is not None and Path(run_dir) != Path(resume):
            from repro.errors import ExperimentError

            raise ExperimentError("--resume and --run-dir name different "
                                  "directories; pass only --resume")
        run_dir = resume

    policy = FaultPolicy.from_env(cell_timeout, cell_retries)
    checkpoint = None
    if run_dir is not None:
        checkpoint = CheckpointJournal(run_dir)
        if resume is None:
            checkpoint.discard()  # fresh run: a stale journal would lie

    context = ExperimentContext(
        scale=scale, jobs=jobs, checkpoint=checkpoint, fault_policy=policy,
        validate=validate,
    )
    # Settings are gathered after the context resolves the validation
    # policy so the manifest records what the run actually enforced.
    settings = _run_settings(
        scale, only, jobs, write_path, trace_file, DEFAULT_SEED,
        run_dir=run_dir, resumed_from=resume, policy=policy,
    )
    if resume is not None:
        stream.write(
            f"resuming from {resume}: {len(context._checkpointed)} "
            "journaled cells will be skipped\n"
        )
    features = None
    report = ReportBuilder(
        title="NVM-LLC reproduction — experiment report",
        scale=scale,
        seed=DEFAULT_SEED,
        provenance=[
            f"engine: {settings['engine']}",
            f"jobs: {settings['jobs']}",
        ],
    )

    def emit(title: str, text: str, elapsed: float) -> None:
        stream.write(f"\n{'=' * 72}\n{title}  [{elapsed:.1f}s]\n{'=' * 72}\n")
        stream.write(text + "\n")
        report.add_section(title, text, elapsed_s=elapsed)

    def run_one(name: str) -> Tuple[str, str]:
        nonlocal features
        title, text, features = run_experiment(name, context, features)
        return title, text

    # The planner is opt-in: a full run covers the paper set only.
    selected = [
        name
        for name in ALL_EXPERIMENTS
        if (only is None and name != DSE_EXPERIMENT) or name == only
    ]

    registry: Optional[MetricsRegistry] = None
    previous = _metrics.get_registry()
    if metrics or trace_file:
        registry = _metrics.enable(MetricsRegistry(trace_path=trace_file))
    try:
        with ProgressLine(total=len(selected), label="experiments") as progress:
            for position, name in enumerate(selected, 1):
                progress.update(f"[{position}/{len(selected)} experiments] {name} ...")
                start = time.time()
                with _metrics.span(f"experiment.{name}"):
                    title, text = run_one(name)
                emit(title, text, time.time() - start)
                progress.tick(name)

        if write_path is not None:
            path = report.write(write_path)
            stream.write(f"\nreport written to {path}\n")

        if checkpoint is not None:
            stream.write(
                f"checkpoint: {context.cells_skipped} cells skipped, "
                f"{checkpoint.recorded} newly journaled "
                f"({checkpoint.path})\n"
            )

        if registry is not None:
            out_dir = Path(
                metrics_dir
                if metrics_dir is not None
                else (
                    run_dir
                    if run_dir is not None
                    else (Path(write_path).parent if write_path else DEFAULT_RESULTS_DIR)
                )
            )
            resume_info = None
            if checkpoint is not None:
                resume_info = {
                    "resumed_from": resume,
                    "cells_skipped": context.cells_skipped,
                    "cells_recorded": checkpoint.recorded,
                }
            dse_provenance = getattr(context, "dse_provenance", None)
            if dse_provenance is not None:
                # Per-cell surrogate-vs-simulated record: which cells
                # the planner pruned, dispatched, and how close the
                # surrogate came on the ones it simulated.
                settings["dse"] = dse_provenance
            manifest_path, metrics_path = write_run_files(
                out_dir, settings, registry, resume=resume_info
            )
            stream.write(f"run manifest written to {manifest_path}\n")
            stream.write(f"run metrics written to {metrics_path}\n")
    finally:
        if checkpoint is not None:
            checkpoint.close()
        if registry is not None:
            registry.close()
            if previous is not None:
                _metrics.enable(previous)
            else:
                _metrics.disable()


def metrics_summary_main(argv: Optional[List[str]] = None, stream=None) -> int:
    """``repro-experiments metrics-summary`` — render saved run metrics."""
    from repro.errors import ReproError, render_error
    from repro.obs.manifest import load_run
    from repro.obs.report import render_summary

    parser = argparse.ArgumentParser(
        prog="repro-experiments metrics-summary",
        description="Render manifest.json + metrics.json from an "
        "instrumented run as a human-readable summary.",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=DEFAULT_RESULTS_DIR,
        help="results directory (or metrics.json path) from a --metrics "
        f"run (default: {DEFAULT_RESULTS_DIR}/)",
    )
    args = parser.parse_args(argv)
    if stream is None:
        stream = sys.stdout
    try:
        metrics, manifest = load_run(args.path)
    except ReproError as error:
        print(render_error(error), file=sys.stderr)
        return error.exit_code
    stream.write(render_summary(metrics, manifest))
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "metrics-summary":
        return metrics_summary_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures "
        "(or `repro-experiments metrics-summary` to render saved run metrics).",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length scale in (0, 1]; below ~0.5 capacity effects fade",
    )
    parser.add_argument(
        "--only",
        choices=ALL_EXPERIMENTS,
        default=None,
        help="run a single experiment",
    )
    parser.add_argument(
        "--dse",
        action="store_true",
        help="run the analytical DSE planner instead of the paper set "
        "(shorthand for --only dse; see docs/DSE.md)",
    )
    parser.add_argument(
        "--dse-margin",
        type=float,
        metavar="M",
        default=None,
        help="Pareto-pruning accuracy margin for --dse, in [0, 1) "
        "(also: REPRO_DSE_MARGIN; default: 0.005)",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="also write a markdown report to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for simulation cells (0 = one per CPU)",
    )
    from repro.sim.engine import ENGINES

    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="replay engine for the run — all are bit-identical "
        "(also: REPRO_SIM_ENGINE; default: fast)",
    )
    checkpoint_group = parser.add_mutually_exclusive_group()
    checkpoint_group.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="checkpoint every completed sweep cell to DIR/checkpoint.jsonl "
        "(a fresh run: any existing journal there is discarded)",
    )
    checkpoint_group.add_argument(
        "--resume",
        metavar="RUN_DIR",
        default=None,
        help="resume an interrupted checkpointed run: skip cells journaled "
        "in RUN_DIR/checkpoint.jsonl and append the remainder",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-cell timeout for parallel sweeps "
        "(also: REPRO_CELL_TIMEOUT; default: no timeout)",
    )
    parser.add_argument(
        "--cell-retries",
        type=int,
        metavar="N",
        default=None,
        help="retries per cell for transient worker failures "
        "(also: REPRO_CELL_RETRIES; default: 2)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        default=_metrics.metrics_env_enabled(),
        help="collect run telemetry and write manifest.json + metrics.json "
        "beside the results (also: REPRO_METRICS=1)",
    )
    parser.add_argument(
        "--trace-file",
        metavar="PATH",
        default=os.environ.get(_metrics.TRACE_FILE_ENV) or None,
        help="stream completed tracing spans to PATH as JSON lines "
        "(implies --metrics; also: REPRO_TRACE_FILE)",
    )
    parser.add_argument(
        "--metrics-dir",
        metavar="DIR",
        default=None,
        help="directory for manifest.json/metrics.json (default: the "
        "--write report's directory, else results/)",
    )
    parser.add_argument(
        "--validate",
        choices=("strict", "lenient", "off"),
        default=None,
        help="input/output validation policy for this run "
        "(also: REPRO_VALIDATE; default: strict)",
    )
    args = parser.parse_args(argv)
    from repro.errors import PartialResultError, ReproError, render_error

    try:
        run_all(
            scale=args.scale,
            only=args.only,
            write_path=args.write,
            jobs=args.jobs,
            metrics=args.metrics,
            trace_file=args.trace_file,
            metrics_dir=args.metrics_dir,
            run_dir=args.run_dir,
            resume=args.resume,
            cell_timeout=args.cell_timeout,
            cell_retries=args.cell_retries,
            validate=args.validate,
            engine=args.engine,
            dse=args.dse,
            dse_margin=args.dse_margin,
        )
    except PartialResultError as error:
        print(render_error(error), file=sys.stderr)
        run_dir = args.resume or args.run_dir
        if run_dir:
            print(
                f"completed cells are journaled; rerun with "
                f"--resume {run_dir} to finish the remainder",
                file=sys.stderr,
            )
        return error.exit_code
    except ReproError as error:
        print(render_error(error), file=sys.stderr)
        return error.exit_code
    return 0


if __name__ == "__main__":
    sys.exit(main())
