"""Run-everything CLI: ``repro-experiments`` / ``python -m repro.experiments.runner``.

Regenerates every table and figure of the paper and prints them as
text tables.  ``--scale`` shortens traces for quick runs; ``--only``
restricts to a subset of experiments.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    coresweep,
    lifetime,
    sensitivity,
    techniques_study,
    figure1,
    figure2,
    figure4,
    table2,
    table3,
    table5,
    table6,
)
from repro.experiments.common import ExperimentContext

#: Experiment ids in run order.
EXPERIMENTS = (
    "table2",
    "table3",
    "table5",
    "table6",
    "figure1",
    "figure2",
    "figure4",
    "coresweep",
    "lifetime",
    "techniques",
    "sensitivity",
)


def run_all(
    scale: float = 1.0,
    only: Optional[str] = None,
    stream=None,
    write_path: Optional[str] = None,
    jobs: Optional[int] = None,
) -> None:
    """Run the requested experiments; print renders and optionally write
    a markdown report (``write_path``).

    ``jobs`` fans simulation cells out over worker processes (0 = one
    per CPU); the default runs everything serially in-process.
    """
    from repro.report.builder import ReportBuilder
    from repro.workloads.generators import DEFAULT_SEED

    if stream is None:
        # Resolve at call time so test harnesses that swap sys.stdout
        # capture the output.
        stream = sys.stdout

    context = ExperimentContext(scale=scale, jobs=jobs)
    features = None
    report = ReportBuilder(
        title="NVM-LLC reproduction — experiment report",
        scale=scale,
        seed=DEFAULT_SEED,
    )

    def emit(title: str, text: str, elapsed: float) -> None:
        stream.write(f"\n{'=' * 72}\n{title}  [{elapsed:.1f}s]\n{'=' * 72}\n")
        stream.write(text + "\n")
        report.add_section(title, text, elapsed_s=elapsed)

    for name in EXPERIMENTS:
        if only is not None and name != only:
            continue
        start = time.time()
        if name == "table2":
            emit("Table II", table2.render(table2.run()), time.time() - start)
        elif name == "table3":
            result = table3.run()
            text = (
                table3.render(result, "fixed-capacity")
                + "\n\n"
                + table3.render(result, "fixed-area")
            )
            emit("Table III", text, time.time() - start)
        elif name == "table5":
            emit("Table V", table5.render(table5.run(context)), time.time() - start)
        elif name == "table6":
            features = table6.run(context)
            emit("Table VI", table6.render(features), time.time() - start)
        elif name == "figure1":
            emit("Figure 1", figure1.render(figure1.run(context)), time.time() - start)
        elif name == "figure2":
            emit("Figure 2", figure2.render(figure2.run(context)), time.time() - start)
        elif name == "figure4":
            result = figure4.run(context, features)
            emit("Figure 4", figure4.render(result), time.time() - start)
        elif name == "coresweep":
            result = coresweep.run(context=context)
            emit("Core sweep (Section V-C)", coresweep.render(result), time.time() - start)
        elif name == "lifetime":
            result = lifetime.run(context)
            emit("Lifetime study (Section VII)", lifetime.render(result), time.time() - start)
        elif name == "techniques":
            result = techniques_study.run(context)
            emit(
                "Techniques study (extension)",
                techniques_study.render(result),
                time.time() - start,
            )
        elif name == "sensitivity":
            result = sensitivity.run(context=context)
            emit(
                "Sensitivity study (extension)",
                sensitivity.render(result),
                time.time() - start,
            )

    if write_path is not None:
        path = report.write(write_path)
        stream.write(f"\nreport written to {path}\n")


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-length scale in (0, 1]; below ~0.5 capacity effects fade",
    )
    parser.add_argument(
        "--only",
        choices=EXPERIMENTS,
        default=None,
        help="run a single experiment",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="also write a markdown report to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for simulation cells (0 = one per CPU)",
    )
    args = parser.parse_args(argv)
    run_all(scale=args.scale, only=args.only, write_path=args.write, jobs=args.jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
