"""Experiment: regenerate Table III (LLC models, both configurations).

Two parts:

1. the *published* Table III models (the exact experiment inputs), and
2. the analytical circuit model run on the same cells, with per-quantity
   ratios against the published values — quantifying how close the
   simplified NVSim-equivalent lands (DESIGN.md documents this as a
   methodology reproduction, validated on ordering/regime rather than
   absolute values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.cells.library import NVM_CELLS, SRAM, cell_by_name
from repro.experiments.common import TableWriter
from repro.nvsim.config import CacheDesign, FIXED_AREA_BUDGET_MM2
from repro.nvsim.model import LLCModel, generate_llc_model
from repro.nvsim.published import published_models
from repro.nvsim.sweep import generate_fixed_area_model


@dataclass(frozen=True)
class ModelComparison:
    """Generated vs published model for one cell and configuration."""

    name: str
    configuration: str
    generated: LLCModel
    published: LLCModel

    def ratio(self, attribute: str) -> float:
        """generated / published for one numeric attribute."""
        published_value = getattr(self.published, attribute)
        generated_value = getattr(self.generated, attribute)
        if published_value == 0:
            return float("inf") if generated_value else 1.0
        return generated_value / published_value


@dataclass(frozen=True)
class Table3Result:
    """Published models plus generated-model comparisons."""

    published: Dict[str, List[LLCModel]]
    comparisons: List[ModelComparison]


def run() -> Table3Result:
    """Regenerate Table III and compare the circuit model against it."""
    published = {
        configuration: published_models(configuration)
        for configuration in ("fixed-capacity", "fixed-area")
    }
    comparisons: List[ModelComparison] = []
    cells = list(NVM_CELLS) + [SRAM]
    fixed_capacity_design = CacheDesign(capacity_bytes=2 * units.MB)
    published_fc = {m.name: m for m in published["fixed-capacity"]}
    published_fa = {m.name: m for m in published["fixed-area"]}
    for cell in cells:
        generated = generate_llc_model(cell, fixed_capacity_design)
        comparisons.append(
            ModelComparison(
                name=cell.display_name,
                configuration="fixed-capacity",
                generated=generated,
                published=published_fc[cell.display_name],
            )
        )
        generated_fa = generate_fixed_area_model(cell, FIXED_AREA_BUDGET_MM2)
        comparisons.append(
            ModelComparison(
                name=cell.display_name,
                configuration="fixed-area",
                generated=generated_fa,
                published=published_fa[cell.display_name],
            )
        )
    return Table3Result(published=published, comparisons=comparisons)


_COLUMNS = (
    ("capacity [MB]", "capacity_mb"),
    ("area [mm2]", "area_mm2"),
    ("tag [ns]", "tag_latency_s"),
    ("read [ns]", "read_latency_s"),
    ("write [ns]", "write_latency_s"),
    ("E_hit [nJ]", "hit_energy_j"),
    ("E_miss [nJ]", "miss_energy_j"),
    ("E_write [nJ]", "write_energy_j"),
    ("leak [W]", "leakage_w"),
)

_SCALE = {
    "tag_latency_s": 1 / units.NS,
    "read_latency_s": 1 / units.NS,
    "write_latency_s": 1 / units.NS,
    "hit_energy_j": 1 / units.NJ,
    "miss_energy_j": 1 / units.NJ,
    "write_energy_j": 1 / units.NJ,
}


def render(result: Table3Result, configuration: str = "fixed-capacity") -> str:
    """Render one configuration's published table plus model ratios."""
    table = TableWriter(headers=["model"] + [label for label, _ in _COLUMNS])
    for model in result.published[configuration]:
        table.add(
            model.name,
            *[
                getattr(model, attr) * _SCALE.get(attr, 1.0)
                for _, attr in _COLUMNS
            ],
        )
    ratios = TableWriter(
        headers=["model"] + [label for label, _ in _COLUMNS[1:]]
    )
    for comparison in result.comparisons:
        if comparison.configuration != configuration:
            continue
        ratios.add(
            comparison.name,
            *[comparison.ratio(attr) for _, attr in _COLUMNS[1:]],
        )
    return (
        f"Table III ({configuration}) — published LLC models\n"
        + table.render()
        + "\n\nGenerated/published ratios (circuit-model fidelity)\n"
        + ratios.render()
    )
