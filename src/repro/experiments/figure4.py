"""Experiment: regenerate Figure 4 (feature correlation heatmaps).

Runs the Section VI framework twice:

- *general scope*: all characterized workloads, correlated against
  absolute LLC energy and execution time — the paper finds total
  read/write counts most correlated there;
- *AI scope*: the three cpu2017 inference workloads, correlated against
  normalised energy and speedup (the Figure 4 axes) — the paper finds
  write entropy, unique write footprint and 90% write footprint ~99%
  correlated while totals decorrelate.

Six heatmap panels as in the paper: {Jan_S, Xue_S, Hayakawa_R} x
{fixed-capacity, fixed-area} for the AI scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.correlate.framework import (
    FIGURE4_LLCS,
    CorrelationReport,
    dominant_feature_group,
    run_framework,
)
from repro.experiments.common import ExperimentContext, TableWriter
from repro.experiments.table6 import Table6Result
from repro.experiments.table6 import run as run_table6
from repro.prism.profile import FEATURE_NAMES
from repro.workloads.registry import ai_benchmarks, characterized_benchmarks


@dataclass(frozen=True)
class Figure4Result:
    """All correlation reports for both scopes and configurations."""

    ai_reports: List[CorrelationReport]
    general_reports: List[CorrelationReport]

    def report(self, llc: str, configuration: str) -> CorrelationReport:
        """One AI-scope panel (a)-(f) by LLC and configuration."""
        for r in self.ai_reports:
            if r.llc_name == llc and r.configuration == configuration:
                return r
        raise KeyError(f"no AI report for {llc}/{configuration}")


def run(
    context: Optional[ExperimentContext] = None,
    features: Optional[Table6Result] = None,
) -> Figure4Result:
    """Regenerate Figure 4's data (both scopes, both configurations)."""
    context = context or ExperimentContext()
    features = features or run_table6(context)
    ai = ai_benchmarks()
    general = characterized_benchmarks()

    ai_reports: List[CorrelationReport] = []
    general_reports: List[CorrelationReport] = []
    for configuration in ("fixed-capacity", "fixed-area"):
        results = context.normalized_sweep(
            ai, configuration, llc_names=FIGURE4_LLCS
        )
        ai_reports.extend(
            run_framework(
                features.features, results, ai, configuration, scope="ai"
            )
        )
        # The general-purpose analysis is phrased over absolute LLC
        # energy and execution time (Section VI): totals dominate there.
        absolute = context.absolute_sweep(
            general, configuration, llc_names=FIGURE4_LLCS
        )
        general_reports.extend(
            run_framework(
                features.features,
                absolute,
                general,
                configuration,
                scope="general",
                absolute=True,
            )
        )
    return Figure4Result(ai_reports=ai_reports, general_reports=general_reports)


def render(result: Figure4Result) -> str:
    """Render the six AI panels (tables + heatmaps) plus the
    general-scope summary."""
    from repro.report.charts import correlation_heatmap

    out = []
    for report in result.ai_reports:
        table = TableWriter(headers=["feature", "corr(energy)", "corr(speedup)"])
        for i, feature in enumerate(FEATURE_NAMES):
            table.add(feature, float(report.matrix[i, 0]), float(report.matrix[i, 1]))
        heatmap = correlation_heatmap(
            report.matrix,
            list(FEATURE_NAMES),
            list(report.response_names),
        )
        out.append(
            f"Figure 4 — {report.llc_name}, {report.configuration} (AI scope)\n"
            + table.render()
            + "\n\n"
            + heatmap
        )
    summary = TableWriter(
        headers=["LLC", "configuration", "scope", "dominant features (energy)"]
    )
    for report in result.general_reports + result.ai_reports:
        summary.add(
            report.llc_name,
            report.configuration,
            report.scope,
            dominant_feature_group(report, "energy"),
        )
    out.append("Dominant feature families\n" + summary.render())
    return "\n\n".join(out)
