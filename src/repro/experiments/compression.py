"""Experiment: the compressed NVM LLC study (extension).

The L2C2 line of work that follows the source paper (Escuin et al.,
arXiv:2204.09504; forecasting companion arXiv:2204.03512) compresses
LLC lines into compacted ways: effective capacity grows with the
workload's compressibility, and every write programs only the
compressed bytes.  This study prices that design on the
endurance-limited technologies: for each workload it replays the LLC
stream with and without compacted-way compression and reports the
speedup, the write-energy ratio, and the projected unleveled lifetime
per cell technology — the three axes the L2C2 papers argue NVM LLCs
win on.

Energy is priced through the shared :func:`repro.nvsim.pricing.price_counts`
hook with ``write_energy_scale`` set to the replayed byte fraction, and
lifetime through :func:`repro.endurance.lifetime.estimate_lifetime`
with the physical frame count and per-cell write fraction — the same
seams every other experiment uses, so an uncompressed run of this study
reproduces the baseline numbers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.endurance.lifetime import LifetimeEstimate, estimate_lifetime
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext, TableWriter
from repro.nvsim.pricing import price_counts
from repro.nvsim.published import published_model, sram_baseline
from repro.report.charts import bar_chart
from repro.techniques.base import Technique
from repro.techniques.compression import CompressedLLC
from repro.techniques.replay import TechniqueOutcome, replay_with_technique
from repro.validate.guard import guard_compression
from repro.workloads.profiles import compressibility

#: Endurance-limited targets the compressed design is priced on.
DEFAULT_LLCS = ("Kang_P", "Zhang_R")

#: Compressibility-diverse workloads: integer (high ratio), NPB
#: floating point (low ratio), AI serving mix.
DEFAULT_WORKLOADS = ("gobmk", "ft", "deepsjeng")


@dataclass(frozen=True)
class CompressionCell:
    """One (workload, LLC) comparison: uncompressed vs compacted."""

    workload: str
    llc_name: str
    declared_ratio: float  # profile's mean compression ratio
    write_bytes_fraction: float  # measured bytes programmed / full size
    mean_resident_lines: float  # measured lines per set (assoc = baseline)
    speedup: float  # runtime_base / runtime_compressed
    energy_ratio: float  # total energy compressed / uncompressed
    baseline_lifetime: LifetimeEstimate
    compressed_lifetime: LifetimeEstimate

    @property
    def lifetime_gain(self) -> float:
        """Unleveled-lifetime multiplier from compression."""
        a = self.baseline_lifetime.unleveled_years
        b = self.compressed_lifetime.unleveled_years
        if a is None or b is None:
            raise ExperimentError(f"{self.llc_name} does not wear out")
        return b / a if a else float("inf")


@dataclass(frozen=True)
class CompressionStudy:
    """All compression cells plus the per-workload replay outcomes."""

    llc_names: Tuple[str, ...]
    workloads: Tuple[str, ...]
    cells: List[CompressionCell]
    outcomes: Dict[str, Tuple[TechniqueOutcome, TechniqueOutcome]]

    def cell(self, workload: str, llc: str) -> CompressionCell:
        """Lookup one (workload, llc) cell."""
        for c in self.cells:
            if (c.workload, c.llc_name) == (workload, llc):
                return c
        raise KeyError(f"no compression cell for {workload}/{llc}")


def run(
    context: Optional[ExperimentContext] = None,
    llcs: Sequence[str] = DEFAULT_LLCS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> CompressionStudy:
    """Run the compressed-LLC study."""
    context = context or ExperimentContext()
    cells: List[CompressionCell] = []
    outcomes: Dict[str, Tuple[TechniqueOutcome, TechniqueOutcome]] = {}
    models = {name: published_model(name, "fixed-capacity") for name in llcs}
    for workload in workloads:
        session = context.session(workload)
        private = session.private
        # The wear window's wall-clock duration: the workload's own
        # simulated runtime on the SRAM baseline (technology-neutral).
        window_s = session.run(sram_baseline()).runtime_s
        declared = compressibility(workload).mean_ratio
        base: Optional[TechniqueOutcome] = None
        comp: Optional[TechniqueOutcome] = None
        for llc_name, model in models.items():
            if base is None or comp is None:
                # Fixed-capacity models share one geometry, so the two
                # replays are computed once per workload.
                base = replay_with_technique(
                    private.stream,
                    Technique(),
                    model.capacity_bytes,
                    context.arch.llc_associativity,
                    context.arch.llc_block_bytes,
                    context.arch.n_cores,
                )
                comp = guard_compression(
                    replay_with_technique(
                        private.stream,
                        CompressedLLC.for_workload(workload, seed=context.seed),
                        model.capacity_bytes,
                        context.arch.llc_associativity,
                        context.arch.llc_block_bytes,
                        context.arch.n_cores,
                    ),
                    subject=f"compressed replay {workload}",
                )
                outcomes[workload] = (base, comp)
            result_base = price_counts(
                workload, "fixed-capacity", private, base.counts, model,
                context.arch,
            )
            result_comp = price_counts(
                workload, "fixed-capacity", private, comp.counts, model,
                context.arch,
                write_energy_scale=comp.write_bytes_fraction,
            )
            cells.append(
                CompressionCell(
                    workload=workload,
                    llc_name=llc_name,
                    declared_ratio=declared,
                    write_bytes_fraction=comp.write_bytes_fraction,
                    mean_resident_lines=comp.mean_resident_lines,
                    speedup=result_base.runtime_s / result_comp.runtime_s,
                    energy_ratio=(
                        result_comp.energy.total_j / result_base.energy.total_j
                    ),
                    baseline_lifetime=estimate_lifetime(
                        model.name,
                        model.cell_class,
                        base.wear,
                        window_s,
                        n_frames=base.n_frames,
                        cell_write_fraction=base.write_bytes_fraction,
                    ),
                    compressed_lifetime=estimate_lifetime(
                        model.name,
                        model.cell_class,
                        comp.wear,
                        window_s,
                        n_frames=comp.n_frames,
                        cell_write_fraction=comp.write_bytes_fraction,
                    ),
                )
            )
    return CompressionStudy(
        llc_names=tuple(llcs),
        workloads=tuple(workloads),
        cells=cells,
        outcomes=outcomes,
    )


def render(study: CompressionStudy) -> str:
    """Render the study: per-cell table plus a lifetime-gain chart."""
    table = TableWriter(
        headers=[
            "workload",
            "LLC",
            "ratio",
            "bytes frac",
            "lines/set",
            "speedup",
            "energy x",
            "lifetime x",
        ]
    )
    for c in study.cells:
        table.add(
            c.workload,
            c.llc_name,
            f"{c.declared_ratio:.2f}",
            f"{c.write_bytes_fraction:.3f}",
            f"{c.mean_resident_lines:.2f}",
            f"{c.speedup:.3f}",
            f"{c.energy_ratio:.3f}",
            f"{c.lifetime_gain:.2f}",
        )
    first_llc = study.llc_names[0]
    chart = bar_chart(
        {w: study.cell(w, first_llc).lifetime_gain for w in study.workloads},
        title=f"Unleveled lifetime gain from compression ({first_llc})",
    )
    return (
        "Compacted-way compression vs uncompressed (fixed-capacity, 2 MB)\n"
        + table.render()
        + "\n\n"
        + chart
    )
