"""Experiment: regenerate Figure 1 (fixed-capacity speedup/energy/ED^2P).

Simulates all twenty workloads on all ten NVM LLC models plus the SRAM
baseline, fixed-capacity configuration, and reports the paper's three
normalised metrics split into single-threaded (Figure 1a) and
multi-threaded (Figure 1b) panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentContext, TableWriter
from repro.sim.results import NormalizedResult
from repro.workloads.registry import all_benchmarks, multi_threaded, single_threaded

#: Display order of the NVM LLC models in the figure panels.
MODEL_ORDER = (
    "Oh_P",
    "Chen_P",
    "Kang_P",
    "Close_P",
    "Chung_S",
    "Jan_S",
    "Umeki_S",
    "Xue_S",
    "Hayakawa_R",
    "Zhang_R",
)


@dataclass(frozen=True)
class FigureData:
    """One figure's normalised results.

    ``results[llc_name][workload]`` is the paper's normalised triple.
    """

    configuration: str
    results: Dict[str, Dict[str, NormalizedResult]]

    def panel(self, workloads: Sequence[str], metric: str) -> Dict[str, List[float]]:
        """One sub-plot: {llc: [metric per workload]} over given order.

        ``metric`` is ``"speedup"``, ``"energy_ratio"`` or ``"ed2p_ratio"``.
        """
        return {
            llc: [getattr(self.results[llc][w], metric) for w in workloads]
            for llc in self.results
        }

    def metric(self, llc: str, workload: str, metric: str) -> float:
        """One bar of the figure."""
        return getattr(self.results[llc][workload], metric)

    def geometric_mean(self, llc: str, metric: str, workloads: Sequence[str]) -> float:
        """Geomean of a metric over workloads (summary statistic)."""
        values = [getattr(self.results[llc][w], metric) for w in workloads]
        return float(np.exp(np.mean(np.log(values))))


def run(
    context: Optional[ExperimentContext] = None,
    workloads: Optional[Sequence[str]] = None,
) -> FigureData:
    """Regenerate Figure 1's data."""
    context = context or ExperimentContext()
    names = list(workloads) if workloads is not None else all_benchmarks()
    results = context.normalized_sweep(names, "fixed-capacity")
    results.pop("SRAM", None)
    return FigureData(configuration="fixed-capacity", results=results)


def render(data: FigureData) -> str:
    """Render both panels as tables plus a geomean-energy bar chart."""
    from repro.report.charts import bar_chart

    out = []
    for label, group in (
        ("Figure 1a (single-threaded)", single_threaded()),
        ("Figure 1b (multi-threaded)", multi_threaded()),
    ):
        group = [w for w in group if _have(data, w)]
        if not group:
            continue
        for metric, name in (
            ("speedup", "normalized speedup"),
            ("energy_ratio", "normalized LLC energy"),
            ("ed2p_ratio", "normalized ED^2P"),
        ):
            table = TableWriter(headers=["LLC"] + group)
            for llc in MODEL_ORDER:
                if llc not in data.results:
                    continue
                table.add(llc, *[data.metric(llc, w, metric) for w in group])
            out.append(f"{label} — {name}\n{table.render()}")
        geomeans = {
            llc: data.geometric_mean(llc, "energy_ratio", group)
            for llc in MODEL_ORDER
            if llc in data.results
        }
        out.append(
            bar_chart(
                geomeans,
                reference=1.0,
                title=f"{label} — geomean normalized LLC energy (log scale)",
                log_scale=True,
            )
        )
    return "\n\n".join(out)


def _have(data: FigureData, workload: str) -> bool:
    return any(workload in per_workload for per_workload in data.results.values())
