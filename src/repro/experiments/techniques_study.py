"""Experiment: evaluate the NVM-LLC management techniques (extension).

The paper's Section I taxonomy motivates three technique groups but
evaluates none; this extension study prices one representative of each
group — plus the hybrid SRAM/NVM partition — on the endurance-limited
technologies over write-diverse workloads: data-array write reduction,
write-energy reduction, DRAM traffic cost, and projected lifetime gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentContext, TableWriter
from repro.nvsim.published import published_model
from repro.techniques.early_write_termination import EarlyWriteTermination
from repro.techniques.evaluate import TechniqueEvaluation, evaluate_technique
from repro.techniques.hybrid import HybridEvaluation, evaluate_hybrid
from repro.techniques.wear_leveling import SetRotationLeveling
from repro.techniques.write_bypass import ReuseWriteBypass

#: Endurance-limited targets the techniques are priced on.
DEFAULT_LLCS = ("Kang_P", "Zhang_R")

#: Write-diverse workload subset (hot writebacks, streams, AI mix).
DEFAULT_WORKLOADS = ("gobmk", "ft", "deepsjeng")


@dataclass(frozen=True)
class TechniquesStudy:
    """All technique evaluations plus the hybrid results."""

    evaluations: List[TechniqueEvaluation]
    hybrids: List[HybridEvaluation]

    def evaluation(
        self, workload: str, llc: str, technique: str
    ) -> TechniqueEvaluation:
        """Lookup one (workload, llc, technique) cell."""
        for e in self.evaluations:
            if (e.workload, e.llc_name, e.technique) == (workload, llc, technique):
                return e
        raise KeyError(f"no evaluation for {workload}/{llc}/{technique}")


def run(
    context: Optional[ExperimentContext] = None,
    llcs: Sequence[str] = DEFAULT_LLCS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> TechniquesStudy:
    """Run the techniques study."""
    context = context or ExperimentContext()
    evaluations: List[TechniqueEvaluation] = []
    hybrids: List[HybridEvaluation] = []
    for workload in workloads:
        trace = context.trace(workload)
        session = context.session(workload)
        private = session.private
        window_s = session.run(published_model("Xue_S")).runtime_s
        for llc_name in llcs:
            model = published_model(llc_name, "fixed-capacity")
            for technique in (
                SetRotationLeveling(period=4096),
                ReuseWriteBypass(filter_blocks=8192),
                EarlyWriteTermination(),
            ):
                evaluations.append(
                    evaluate_technique(
                        trace,
                        model,
                        technique,
                        arch=context.arch,
                        window_s=window_s,
                        private=private,
                    )
                )
            hybrids.append(
                evaluate_hybrid(private.stream, model, sram_ways=2)
            )
    return TechniquesStudy(evaluations=evaluations, hybrids=hybrids)


def render(study: TechniquesStudy) -> str:
    """Render the study as tables."""
    table = TableWriter(
        headers=[
            "workload",
            "LLC",
            "technique",
            "write cut",
            "energy cut",
            "lifetime x",
            "dram writes +",
        ]
    )
    for e in study.evaluations:
        gain = e.lifetime_gain
        table.add(
            e.workload,
            e.llc_name,
            e.technique,
            f"{e.write_reduction:+.1%}",
            f"{e.energy_reduction:+.1%}",
            f"{gain:.2f}" if gain is not None else "-",
            e.extra_dram_writes,
        )
    hybrid = TableWriter(
        headers=[
            "LLC",
            "sram ways",
            "NVM write cut",
            "write-energy cut",
            "leakage x",
            "migrations",
        ]
    )
    for h in study.hybrids:
        hybrid.add(
            h.llc_name,
            h.sram_ways,
            f"{h.nvm_write_reduction:.1%}",
            f"{h.write_energy_reduction:.1%}",
            f"{h.leakage_increase:.1f}",
            h.counts.migrations,
        )
    return (
        "Technique evaluations (vs technique-free baseline)\n"
        + table.render()
        + "\n\nHybrid SRAM/NVM way partition (2 SRAM ways of 16)\n"
        + hybrid.render()
    )
