"""Shared infrastructure for the experiment drivers.

An :class:`ExperimentContext` owns trace generation and simulation
caching for one run of the experiment suite: each workload's trace is
generated once, its private-level replay once, and its LLC replay once
per distinct capacity.  ``scale`` shortens traces uniformly for quick
runs (tests); note that below ~0.5 the capacity-sweep components no
longer complete enough passes for fixed-area capacity effects to show.
"""

from __future__ import annotations

import dataclasses
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CheckpointError, ExperimentError
from repro.nvsim.published import nvm_models, published_models, sram_baseline
from repro.obs import metrics as _metrics
from repro.obs.progress import ProgressLine
from repro.sim.checkpoint import CheckpointJournal, cell_digest
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.parallel import (
    FaultPolicy,
    SweepCell,
    resolve_jobs,
    resolve_model,
    run_cells,
)
from repro.sim.results import NormalizedResult, SimResult, normalize
from repro.sim.system import SimulationSession
from repro.trace.stream import Trace, TraceSpill, resolve_spill_dir
from repro.validate.policy import POLICY_ENV, current_policy, resolve_policy, set_policy
from repro.workloads.generators import DEFAULT_SEED, generate_from_profile
from repro.workloads.profiles import profile


class ExperimentContext:
    """Caches traces and simulation sessions across experiments.

    Traces are keyed by (workload, seed, length, threads) and sessions
    additionally by architecture, so the core-sweep and sensitivity
    studies — which vary core counts, seeds and model constants — share
    one context (and one trace per distinct key) with the table/figure
    experiments.

    Parameters
    ----------
    scale:
        Multiplier on each profile's trace length (1.0 = full).
    seed:
        Trace-generation seed.
    arch:
        Architecture; defaults to the paper's 4-core Gainestown.
    jobs:
        Worker processes for sweeps run through this context: 1 =
        serial in-process (the default), N > 1 = a process pool,
        0 = one worker per CPU.  See :mod:`repro.sim.parallel`.
    checkpoint:
        Optional :class:`~repro.sim.checkpoint.CheckpointJournal`.
        When given, cells already recorded in the journal are skipped
        (their journaled results are returned instead — byte-identical
        to recomputation) and every newly completed cell is recorded
        durably, making the run resumable after a crash.
    fault_policy:
        Timeout/retry/pool-recovery policy for sweeps
        (:class:`~repro.sim.parallel.FaultPolicy`); defaults to the
        environment configuration.
    validate:
        Validation policy for this run (``strict``/``lenient``/``off``,
        see :mod:`repro.validate.policy`).  When given it overrides the
        ``REPRO_VALIDATE`` environment variable and is exported to it so
        parallel worker processes apply the same policy; when omitted
        the environment (default ``strict``) decides.
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = DEFAULT_SEED,
        arch: Optional[ArchitectureConfig] = None,
        jobs: Optional[int] = None,
        checkpoint: Optional[CheckpointJournal] = None,
        fault_policy: Optional[FaultPolicy] = None,
        validate: Optional[str] = None,
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ExperimentError("scale must be in (0, 1]")
        if validate is not None:
            import os

            policy = resolve_policy(validate)
            set_policy(policy)
            os.environ[POLICY_ENV] = policy.value
        self.validate_policy = current_policy()
        self.scale = scale
        self.seed = seed
        self.arch = arch or gainestown()
        self.jobs = resolve_jobs(jobs)
        self.checkpoint = checkpoint
        self.fault_policy = fault_policy
        self.cells_skipped = 0
        self._checkpointed: Dict[str, Dict[str, SimResult]] = (
            checkpoint.load() if checkpoint is not None else {}
        )
        self._checkpoint_warned = False
        self._traces: Dict[tuple, Trace] = {}
        self._sessions: Dict[tuple, SimulationSession] = {}

    def n_accesses(self, workload: str) -> int:
        """Trace length for a workload at this context's scale."""
        return max(5000, int(profile(workload).n_accesses * self.scale))

    def trace(
        self,
        workload: str,
        seed: Optional[int] = None,
        n_accesses: Optional[int] = None,
        n_threads: Optional[int] = None,
    ) -> Trace:
        """The (cached) trace for a workload at this context's scale.

        ``seed``/``n_accesses``/``n_threads`` override the context
        defaults (sensitivity and core-sweep cells need their own seeds,
        lengths and thread counts); each distinct key is generated once.
        """
        seed = self.seed if seed is None else seed
        n = self.n_accesses(workload) if n_accesses is None else n_accesses
        key = (workload, seed, n, n_threads)
        if key not in self._traces:
            self._traces[key] = generate_from_profile(
                profile(workload), seed=seed, n_accesses=n, n_threads=n_threads
            )
        return self._traces[key]

    def session(
        self,
        workload: str,
        arch: Optional[ArchitectureConfig] = None,
        seed: Optional[int] = None,
        n_accesses: Optional[int] = None,
        n_threads: Optional[int] = None,
    ) -> SimulationSession:
        """The (cached) simulation session for a workload (+ overrides).

        Sessions are configuration-agnostic — pass the configuration to
        ``run()`` — so one private replay serves both fixed-capacity and
        fixed-area sweeps of the same workload.
        """
        arch = arch or self.arch
        seed = self.seed if seed is None else seed
        n = self.n_accesses(workload) if n_accesses is None else n_accesses
        key = (workload, seed, n, n_threads, arch)
        if key not in self._sessions:
            self._sessions[key] = SimulationSession(
                self.trace(workload, seed=seed, n_accesses=n, n_threads=n_threads),
                arch=arch,
            )
        return self._sessions[key]

    # -- cells -----------------------------------------------------------

    def cell(
        self,
        workload: str,
        configuration: str,
        model_names: Sequence[str],
        seed: Optional[int] = None,
        n_accesses: Optional[int] = None,
        n_threads: Optional[int] = None,
        arch: Optional[ArchitectureConfig] = None,
    ) -> SweepCell:
        """Build a :class:`~repro.sim.parallel.SweepCell` with this
        context's defaults filled in (lengths resolved so workers and
        the serial path generate identical traces)."""
        return SweepCell(
            workload=workload,
            configuration=configuration,
            model_names=tuple(model_names),
            seed=self.seed if seed is None else seed,
            n_accesses=self.n_accesses(workload) if n_accesses is None else n_accesses,
            n_threads=n_threads,
            arch=arch or self.arch,
        )

    def run_cell(self, cell: SweepCell) -> Dict[str, SimResult]:
        """Run one cell in-process through the context's session cache.

        Fires the ``REPRO_FAULT_HOOK`` seam like the parallel path does
        (:func:`~repro.sim.parallel.run_cell`), so fault/pacing hooks
        reach serial sweeps too — serve jobs run cells through here.
        """
        from repro.sim.parallel import fire_fault_hook

        fire_fault_hook(cell)
        with _metrics.span("experiments.cell"):
            session = self.session(
                cell.workload,
                arch=cell.arch,
                seed=cell.seed,
                n_accesses=cell.n_accesses,
                n_threads=cell.n_threads,
            )
            results = {
                name: session.run(
                    resolve_model(name, cell.configuration), cell.configuration
                )
                for name in cell.model_names
            }
        _metrics.counter_add("experiments.cells")
        return results

    def _record_checkpoint(self, cell: SweepCell, results: Dict[str, SimResult]) -> None:
        """Journal one completed cell (checkpoint failures are non-fatal:
        the run still holds the results in memory — it just loses
        resumability for this cell, warned once and counted)."""
        if self.checkpoint is None:
            return
        self._checkpointed[cell_digest(cell)] = results
        try:
            self.checkpoint.record(cell, results)
        except CheckpointError as error:
            if not self._checkpoint_warned:
                self._checkpoint_warned = True
                import sys

                print(f"warning: {error} — run continues, resumability "
                      "degraded for unjournaled cells", file=sys.stderr)

    @contextmanager
    def _spilled(self, todo: Sequence[Tuple[int, SweepCell]]) -> Iterator[List[SweepCell]]:
        """Spill each distinct trace once and hand out cells carrying
        zero-copy :class:`~repro.trace.stream.TraceSpill` handles.

        The parent generates (or reuses its cached) trace per distinct
        ``(workload, seed, length, threads)`` key and writes its columns
        under a temporary directory (rooted at ``$REPRO_SPILL_DIR`` when
        set), so N workers map one shared copy instead of regenerating N
        times.  The directory lives exactly as long as the sweep.
        """
        with tempfile.TemporaryDirectory(
            prefix="repro-spill-", dir=resolve_spill_dir()
        ) as spill_dir:
            spills: Dict[tuple, TraceSpill] = {}
            cells: List[SweepCell] = []
            for _, cell in todo:
                key = (cell.workload, cell.seed, cell.n_accesses, cell.n_threads)
                handle = spills.get(key)
                if handle is None:
                    trace = self.trace(
                        cell.workload,
                        seed=cell.seed,
                        n_accesses=cell.n_accesses,
                        n_threads=cell.n_threads,
                    )
                    handle = trace.spill(
                        spill_dir, prefix=f"{len(spills):03d}-{cell.workload}"
                    )
                    spills[key] = handle
                cells.append(dataclasses.replace(cell, trace_spill=handle))
            _metrics.counter_add("experiments.traces_spilled", len(spills))
            yield cells

    def run_cells(self, cells: Sequence[SweepCell]) -> List[Dict[str, SimResult]]:
        """Run cells honouring ``jobs``: serial runs go through the
        context's caches; parallel runs fan out over a process pool
        (workers share replays with the parent via the on-disk replay
        cache, and map the parent's spilled trace columns read-only
        instead of regenerating them).  Results are in input order
        either way.

        With a checkpoint journal attached, cells already journaled are
        skipped (their recorded results are returned — byte-identical
        to recomputation) and each newly completed cell is journaled
        durably before the sweep moves on.
        """
        from repro.errors import PartialResultError

        cells = list(cells)
        done: List[Optional[Dict[str, SimResult]]] = [None] * len(cells)
        todo: List[Tuple[int, SweepCell]] = []
        for index, cell in enumerate(cells):
            recorded = (
                self._checkpointed.get(cell_digest(cell))
                if self.checkpoint is not None
                else None
            )
            if recorded is not None:
                done[index] = recorded
            else:
                todo.append((index, cell))
        skipped = len(cells) - len(todo)
        if skipped:
            self.cells_skipped += skipped
            _metrics.counter_add("checkpoint.cells_skipped", skipped)
        if not todo:
            return done  # type: ignore[return-value]

        if self.jobs <= 1 or len(todo) <= 1:
            with ProgressLine(total=len(todo), label="cells") as progress:
                for index, cell in todo:
                    done[index] = self.run_cell(cell)
                    self._record_checkpoint(cell, done[index])
                    progress.tick(f"{cell.workload} ({cell.configuration})")
            return done  # type: ignore[return-value]

        def on_result(position: int, cell: SweepCell, results: Dict[str, SimResult]) -> None:
            self._record_checkpoint(cell, results)

        try:
            with self._spilled(todo) as spilled:
                fresh = run_cells(
                    spilled,
                    self.jobs,
                    policy=self.fault_policy,
                    on_result=on_result,
                )
        except PartialResultError as error:
            # Re-map partial results to the caller's cell indices and
            # fold in the checkpoint-skipped cells — nothing is lost.
            completed = {
                todo[position][0]: value
                for position, value in error.completed.items()
            }
            for index, value in enumerate(done):
                if value is not None:
                    completed[index] = value
            raise PartialResultError(
                str(error),
                completed=completed,
                failures={
                    todo[position][0]: message
                    for position, message in error.failures.items()
                },
            ) from None
        for (index, _), value in zip(todo, fresh):
            done[index] = value
        return done  # type: ignore[return-value]

    # -- sweeps ----------------------------------------------------------

    def _sweep_models(self, configuration, llc_names):
        models = published_models(configuration)
        if llc_names is not None:
            wanted = set(llc_names)
            models = [m for m in models if m.name in wanted]
        return models

    def absolute_sweep(
        self,
        workloads: Sequence[str],
        configuration: str,
        llc_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, SimResult]]:
        """Raw (unnormalised) results per LLC per workload.

        Used by the general-purpose correlation analysis, which the
        paper phrases over absolute LLC energy and execution time.
        """
        models = self._sweep_models(configuration, llc_names)
        names = tuple(m.name for m in models)
        cells = [self.cell(w, configuration, names) for w in workloads]
        out: Dict[str, Dict[str, SimResult]] = {m.name: {} for m in models}
        for workload, results in zip(workloads, self.run_cells(cells)):
            for name in names:
                out[name][workload] = results[name]
        return out

    def normalized_sweep(
        self,
        workloads: Sequence[str],
        configuration: str,
        llc_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, NormalizedResult]]:
        """Run every workload against every published LLC model.

        Returns ``{llc_name: {workload: NormalizedResult}}``, normalised
        per-workload against the SRAM baseline of the same configuration.
        """
        models = self._sweep_models(configuration, llc_names)
        names = tuple(m.name for m in models)
        # "SRAM" resolves to the baseline; include it even when filtered
        # out so every cell can normalise.
        cell_names = names if "SRAM" in names else ("SRAM",) + names
        cells = [self.cell(w, configuration, cell_names) for w in workloads]
        out: Dict[str, Dict[str, NormalizedResult]] = {m.name: {} for m in models}
        for workload, results in zip(workloads, self.run_cells(cells)):
            baseline = results["SRAM"]
            for name in names:
                out[name][workload] = normalize(results[name], baseline)
        return out


@dataclass
class TableWriter:
    """Minimal fixed-width / markdown table renderer for experiment CLI
    output and EXPERIMENTS.md regeneration."""

    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append one row (cells are str()-ed)."""
        if len(cells) != len(self.headers):
            raise ExperimentError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        widths = [
            max(len(h), *(len(r[i]) for r in self.rows)) if self.rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        def line(cells: Iterable[str]) -> str:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        out = [line(self.headers), line("-" * w for w in widths)]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
