"""Shared infrastructure for the experiment drivers.

An :class:`ExperimentContext` owns trace generation and simulation
caching for one run of the experiment suite: each workload's trace is
generated once, its private-level replay once, and its LLC replay once
per distinct capacity.  ``scale`` shortens traces uniformly for quick
runs (tests); note that below ~0.5 the capacity-sweep components no
longer complete enough passes for fixed-area capacity effects to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.nvsim.published import nvm_models, published_models, sram_baseline
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.results import NormalizedResult, SimResult, normalize
from repro.sim.system import SimulationSession
from repro.trace.stream import Trace
from repro.workloads.generators import DEFAULT_SEED, generate_from_profile
from repro.workloads.profiles import profile


class ExperimentContext:
    """Caches traces and simulation sessions across experiments.

    Parameters
    ----------
    scale:
        Multiplier on each profile's trace length (1.0 = full).
    seed:
        Trace-generation seed.
    arch:
        Architecture; defaults to the paper's 4-core Gainestown.
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = DEFAULT_SEED,
        arch: Optional[ArchitectureConfig] = None,
    ) -> None:
        if not 0.0 < scale <= 1.0:
            raise ExperimentError("scale must be in (0, 1]")
        self.scale = scale
        self.seed = seed
        self.arch = arch or gainestown()
        self._traces: Dict[str, Trace] = {}
        self._sessions: Dict[str, SimulationSession] = {}

    def trace(self, workload: str) -> Trace:
        """The (cached) trace for a workload at this context's scale."""
        if workload not in self._traces:
            bench = profile(workload)
            n = max(5000, int(bench.n_accesses * self.scale))
            self._traces[workload] = generate_from_profile(
                bench, seed=self.seed, n_accesses=n
            )
        return self._traces[workload]

    def session(self, workload: str) -> SimulationSession:
        """The (cached) simulation session for a workload."""
        if workload not in self._sessions:
            self._sessions[workload] = SimulationSession(
                self.trace(workload), arch=self.arch
            )
        return self._sessions[workload]

    # -- sweeps ----------------------------------------------------------

    def absolute_sweep(
        self,
        workloads: Sequence[str],
        configuration: str,
        llc_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, SimResult]]:
        """Raw (unnormalised) results per LLC per workload.

        Used by the general-purpose correlation analysis, which the
        paper phrases over absolute LLC energy and execution time.
        """
        models = published_models(configuration)
        if llc_names is not None:
            wanted = set(llc_names)
            models = [m for m in models if m.name in wanted]
        out: Dict[str, Dict[str, SimResult]] = {m.name: {} for m in models}
        for workload in workloads:
            session = self.session(workload)
            for model in models:
                out[model.name][workload] = session.run(model, configuration)
        return out

    def normalized_sweep(
        self,
        workloads: Sequence[str],
        configuration: str,
        llc_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Dict[str, NormalizedResult]]:
        """Run every workload against every published LLC model.

        Returns ``{llc_name: {workload: NormalizedResult}}``, normalised
        per-workload against the SRAM baseline of the same configuration.
        """
        models = published_models(configuration)
        if llc_names is not None:
            wanted = set(llc_names)
            models = [m for m in models if m.name in wanted]
        baseline_model = sram_baseline(configuration)
        out: Dict[str, Dict[str, NormalizedResult]] = {m.name: {} for m in models}
        for workload in workloads:
            session = self.session(workload)
            baseline = session.run(baseline_model, configuration)
            for model in models:
                result = session.run(model, configuration)
                out[model.name][workload] = normalize(result, baseline)
        return out


@dataclass
class TableWriter:
    """Minimal fixed-width / markdown table renderer for experiment CLI
    output and EXPERIMENTS.md regeneration."""

    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append one row (cells are str()-ed)."""
        if len(cells) != len(self.headers):
            raise ExperimentError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        widths = [
            max(len(h), *(len(r[i]) for r in self.rows)) if self.rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        def line(cells: Iterable[str]) -> str:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        out = [line(self.headers), line("-" * w for w in widths)]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
