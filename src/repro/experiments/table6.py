"""Experiment: regenerate Table VI (workload memory-behaviour features).

Runs the PRISM-equivalent profiler on every characterized workload's
trace and reports the ten features next to the paper's values.  As
DESIGN.md's scaling note explains, traces are ~10^4x shorter than the
real executions, so absolute values differ; the preserved structure is
checked by :func:`extreme_workloads` (which workload is each column's
maximum) and the per-column rank correlations the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import ExperimentContext, TableWriter
from repro.prism.profile import FEATURE_LABELS, FEATURE_NAMES, WorkloadFeatures, extract_features
from repro.workloads.profiles import PAPER_FEATURE_LABELS, PROFILES
from repro.workloads.registry import characterized_benchmarks

#: Maps our feature names onto the paper's Table VI column attributes.
PAPER_ATTR_OF = {
    "read_global_entropy": "H_rg",
    "read_local_entropy": "H_rl",
    "write_global_entropy": "H_wg",
    "write_local_entropy": "H_wl",
    "unique_reads": "r_uniq_e6",
    "unique_writes": "w_uniq_e6",
    "footprint90_reads": "ft90_r_e3",
    "footprint90_writes": "ft90_w_e3",
    "total_reads": "r_total_e9",
    "total_writes": "w_total_e9",
}


@dataclass(frozen=True)
class Table6Result:
    """Measured features for the sixteen characterized workloads."""

    features: Dict[str, WorkloadFeatures]

    def measured_column(self, feature: str) -> np.ndarray:
        """One measured feature across workloads, in registry order."""
        return np.array(
            [getattr(self.features[w], feature) for w in self.workloads]
        )

    def paper_column(self, feature: str) -> np.ndarray:
        """The paper's Table VI column aligned with the measured one."""
        attr = PAPER_ATTR_OF[feature]
        return np.array(
            [getattr(PROFILES[w].paper_features, attr) for w in self.workloads]
        )

    @property
    def workloads(self) -> List[str]:
        """Characterized workloads, registry order."""
        return [w for w in characterized_benchmarks() if w in self.features]


def run(context: Optional[ExperimentContext] = None) -> Table6Result:
    """Profile every characterized workload."""
    context = context or ExperimentContext()
    features = {
        name: extract_features(context.trace(name))
        for name in characterized_benchmarks()
    }
    return Table6Result(features=features)


def extreme_workloads(result: Table6Result) -> Dict[str, Tuple[str, str]]:
    """Per feature: (measured argmax workload, paper argmax workload).

    The paper's heatmap extremes (GemsFDTD's footprints, exchange2's
    totals, ...) should match where the scaling allows.
    """
    out = {}
    workloads = result.workloads
    for feature in FEATURE_NAMES:
        measured = result.measured_column(feature)
        paper = result.paper_column(feature)
        out[feature] = (
            workloads[int(np.argmax(measured))],
            workloads[int(np.argmax(paper))],
        )
    return out


def rank_correlation(result: Table6Result, feature: str) -> float:
    """Spearman rank correlation of measured vs paper for one column."""
    measured = result.measured_column(feature)
    paper = result.paper_column(feature)
    def ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x)
        r = np.empty_like(order, dtype=np.float64)
        r[order] = np.arange(len(x))
        return r
    rm, rp = ranks(measured), ranks(paper)
    rm -= rm.mean()
    rp -= rp.mean()
    denom = np.sqrt((rm * rm).sum() * (rp * rp).sum())
    return float((rm * rp).sum() / denom) if denom else 0.0


def render(result: Table6Result) -> str:
    """Render measured Table VI."""
    table = TableWriter(headers=["bmk"] + list(FEATURE_LABELS))
    for name in result.workloads:
        features = result.features[name]
        table.add(name, *[getattr(features, f) for f in FEATURE_NAMES])
    correlations = TableWriter(headers=["feature", "spearman vs paper"])
    for feature in FEATURE_NAMES:
        correlations.add(feature, rank_correlation(result, feature))
    return (
        "Table VI — measured workload features\n"
        + table.render()
        + "\n\nPer-column rank agreement with the paper\n"
        + correlations.render()
    )
