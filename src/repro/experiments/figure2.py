"""Experiment: regenerate Figure 2 (fixed-area speedup/energy/ED^2P).

Identical sweep to Figure 1 but with the fixed-area Table III models:
every LLC fits the SRAM baseline's 6.55 mm^2 and takes the capacity that
budget buys (1 MB for Jan_S up to 128 MB for Zhang_R), so dense NVMs can
now win on misses what they lose on latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentContext, TableWriter
from repro.experiments.figure1 import MODEL_ORDER, FigureData
from repro.workloads.registry import all_benchmarks, multi_threaded, single_threaded


def run(
    context: Optional[ExperimentContext] = None,
    workloads: Optional[Sequence[str]] = None,
) -> FigureData:
    """Regenerate Figure 2's data."""
    context = context or ExperimentContext()
    names = list(workloads) if workloads is not None else all_benchmarks()
    results = context.normalized_sweep(names, "fixed-area")
    results.pop("SRAM", None)
    return FigureData(configuration="fixed-area", results=results)


def render(data: FigureData) -> str:
    """Render both panels as tables (speedup / energy / ED^2P rows)."""
    out = []
    for label, group in (
        ("Figure 2a (single-threaded)", single_threaded()),
        ("Figure 2b (multi-threaded)", multi_threaded()),
    ):
        group = [
            w
            for w in group
            if any(w in per_workload for per_workload in data.results.values())
        ]
        for metric, name in (
            ("speedup", "normalized speedup"),
            ("energy_ratio", "normalized LLC energy"),
            ("ed2p_ratio", "normalized ED^2P"),
        ):
            table = TableWriter(headers=["LLC"] + group)
            for llc in MODEL_ORDER:
                if llc not in data.results:
                    continue
                table.add(llc, *[data.metric(llc, w, metric) for w in group])
            out.append(f"{label} — {name}\n{table.render()}")
    return "\n\n".join(out)
