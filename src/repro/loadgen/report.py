"""Folding load-run records into percentile/throughput reports.

One report shape serves three consumers: the ``repro-cli loadgen``
terminal rendering, the CI load-smoke artifact, and the committed
``BENCH_0008.json`` benchmark record (written through
``tools/bench_record.py --serve``, which adds the schema envelope and
host fingerprint).

Percentiles are *exact* (sorted-sample linear interpolation, the same
rule ``statistics.quantiles`` uses with ``method='inclusive'``) — no
histogram buckets, the record counts are small enough to keep every
sample.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.loadgen.launcher import (
    REQUEST_STATES,
    FleetRun,
    RateRun,
    RequestRecord,
)

#: Latency percentiles every summary reports.
PERCENTILES = (50.0, 90.0, 99.0)


def percentile(values: Sequence[float], p: float) -> float:
    """Exact percentile by linear interpolation (p in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


def summarize_rate(run: RateRun) -> Dict[str, Any]:
    """One (rate)'s summary: throughput, latency, failure, dedup."""
    records = run.records
    by_state = {state: 0 for state in REQUEST_STATES}
    for record in records:
        by_state[record.state] += 1
    done = [r for r in records if r.state == "done"]
    latencies = [r.latency_s for r in done]
    submits = [r.submit_s for r in records if r.job_id is not None]
    offered = len(records)
    failures = offered - len(done) - by_state["rejected"]
    return {
        "qps_target": run.qps,
        "offered": offered,
        "states": by_state,
        "throughput_rps": (
            len(done) / run.wall_s if run.wall_s > 0 else 0.0
        ),
        "wall_s": run.wall_s,
        "latency_s": {
            f"p{p:g}": percentile(latencies, p) for p in PERCENTILES
        },
        "submit_s": {
            f"p{p:g}": percentile(submits, p) for p in PERCENTILES
        },
        "failure_rate": failures / offered if offered else 0.0,
        "rejected_rate": by_state["rejected"] / offered if offered else 0.0,
        "dedup": _dedup_summary(records),
        "late_p99_s": percentile([r.late_s for r in records], 99.0),
    }


def _dedup_summary(records: List[RequestRecord]) -> Dict[str, Any]:
    """Dedup as the client saw it.

    ``hit_rate`` is deduped-over-offered: injected duplicates are not
    the only colliders (a mix whose ``seeds`` pool is smaller than the
    fresh-pick count repeats specs too), so the honest denominator is
    every submission.
    """
    duplicates_offered = sum(1 for r in records if r.duplicate)
    deduped = sum(1 for r in records if r.deduped)
    return {
        "duplicates_offered": duplicates_offered,
        "client_observed_deduped": deduped,
        "hit_rate": deduped / len(records) if records else 0.0,
    }


def summarize_fleet(runs: Sequence[FleetRun],
                    scenario_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The full sweep report (what ``BENCH_0008.json`` embeds).

    ``scaling`` gives, per rate, throughput by shard count and the
    speedup relative to one shard (when a one-shard point exists) — the
    near-linear-scaling claim is read straight off this block.
    """
    points = []
    for run in runs:
        points.append({
            "shards": run.shard_count,
            "rates": [summarize_rate(rate) for rate in run.rates],
            "fleet_counters": run.counters,
        })
    scaling: Dict[str, Any] = {}
    base = next((p for p in points if p["shards"] == 1), None)
    for point in points:
        for rate in point["rates"]:
            key = f"{rate['qps_target']:g}"
            entry = scaling.setdefault(key, {})
            entry[str(point["shards"])] = round(rate["throughput_rps"], 3)
    if base is not None:
        speedup: Dict[str, Any] = {}
        for rate_base in base["rates"]:
            key = f"{rate_base['qps_target']:g}"
            base_rps = rate_base["throughput_rps"]
            if base_rps <= 0:
                continue
            speedup[key] = {
                shards: round(rps / base_rps, 3)
                for shards, rps in scaling.get(key, {}).items()
            }
        scaling = {"throughput_rps": scaling, "speedup_vs_1_shard": speedup}
    else:
        scaling = {"throughput_rps": scaling}
    return {
        "scenario": scenario_dict,
        "points": points,
        "scaling": scaling,
    }


def render_rate(summary: Dict[str, Any]) -> str:
    """One rate's terminal line."""
    states = summary["states"]
    return (
        f"  {summary['qps_target']:>7g} qps  "
        f"{summary['throughput_rps']:>8.2f} rps  "
        f"p50 {summary['latency_s']['p50'] * 1000:>7.1f} ms  "
        f"p99 {summary['latency_s']['p99'] * 1000:>7.1f} ms  "
        f"done {states['done']}/{summary['offered']}"
        f"  rej {states['rejected']}"
        f"  fail {states['failed'] + states['error'] + states['timeout']}"
        f"  dedup {summary['dedup']['client_observed_deduped']}"
    )


def render_fleet(report: Dict[str, Any]) -> str:
    """Terminal rendering of a full sweep report."""
    lines = [f"scenario {report['scenario']['name']}"
             f" ({report['scenario']['arrival']} arrivals,"
             f" duplicate_rate={report['scenario']['duplicate_rate']:g})"]
    for point in report["points"]:
        lines.append(f"shards={point['shards']}")
        for rate in point["rates"]:
            lines.append(render_rate(rate))
        counters = point.get("fleet_counters", {})
        executed = counters.get("serve.jobs.executed")
        satisfied = counters.get("serve.jobs.store_satisfied", 0)
        deduped = counters.get("serve.jobs.deduped", 0)
        if executed is not None:
            lines.append(
                f"  fleet: executed={executed:g} "
                f"store_satisfied={satisfied:g} deduped={deduped:g}"
            )
    speedup = report.get("scaling", {}).get("speedup_vs_1_shard")
    if speedup:
        for qps, by_shards in sorted(speedup.items(), key=lambda i: float(i[0])):
            pairs = ", ".join(
                f"{shards}x: {factor:g}"
                for shards, factor in sorted(
                    by_shards.items(), key=lambda i: int(i[0])
                )
            )
            lines.append(f"speedup @ {qps} qps vs 1 shard: {pairs}")
    return "\n".join(lines) + "\n"
