"""Emulated service time: the load harness's pacing hook.

Point ``REPRO_SERVE_JOB_HOOK`` at
``repro.loadgen.pacing:emulate_service_time`` and set
``REPRO_LOADGEN_SERVICE_MS`` and every serve job sleeps that long
before executing — the *emulated backend* mode of llm-d-benchmark
style harnesses, here riding the executor's per-job hook seam
(:data:`~repro.serve.executor.JOB_HOOK_ENV`).

Why it exists: the scaling question a fleet answers is "does the
*serving layer* — routing, queueing, dedup, the store — scale with
shard count?", and on a small host (CI runs on one core) a CPU-bound
job makes that unmeasurable: four shards contending for one core show
flat throughput no matter how good the serving layer is.  A calibrated
sleep releases the GIL and burns no CPU, so each shard's capacity is
``workers / service_time`` independent of neighbours — shard-count
scaling of the serving layer becomes observable and honest, while the
real per-job CPU cost (about a millisecond for the scaled-down
``table2`` spec used by the bundled profiles) stays far below one
core's budget even at the widest fleet.

The committed ``BENCH_0008.json`` records both modes: a paced scenario
for the scaling curve and an unpaced (real-compute) scenario, each
tagged with the host fingerprint so a one-core container's numbers are
read as such.
"""

from __future__ import annotations

import os
import time

#: Milliseconds each job sleeps before executing (0/unset = no pacing).
SERVICE_MS_ENV = "REPRO_LOADGEN_SERVICE_MS"


def emulate_service_time(spec) -> None:
    """``REPRO_SERVE_JOB_HOOK`` target: sleep the configured service time."""
    raw = os.environ.get(SERVICE_MS_ENV, "").strip()
    if not raw:
        return
    try:
        ms = float(raw)
    except ValueError:
        return
    if ms > 0:
        time.sleep(ms / 1000.0)
