"""Scenario launcher: offer a declarative load profile to a target.

The launcher turns a :class:`~repro.loadgen.scenario.Scenario` into an
*open-loop* request timeline (arrival offsets x a deterministic job
mix with duplicate injection) and offers it to a target — one daemon,
a router URL, or a shard list via client-side routing — from a bounded
pool of client threads.  Every request's fate is a
:class:`RequestRecord`; :mod:`repro.loadgen.report` folds records into
percentile/throughput summaries.

:func:`sweep_shards` is the fleet harness: for each shard count it
boots a real subprocess :class:`~repro.serve.fleet.Fleet` (shared
result store, router front end), runs the scenario's full rate sweep
against the router, collects the router's aggregated ``/metrics``
counters (executed / store-satisfied / deduped), and tears the fleet
down — the measurement loop behind ``tools/bench_record.py --serve``
and ``BENCH_0008.json``.

Determinism: the request *content* and *schedule* derive entirely from
``(scenario.seed, qps)`` via stable string-seeded RNGs.  Wall-clock
execution is of course not deterministic — that is what is being
measured.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import (
    DegradedError,
    LoadGenError,
    QueueFullError,
    ServeError,
)
from repro.loadgen.arrivals import arrival_offsets
from repro.loadgen.pacing import SERVICE_MS_ENV
from repro.loadgen.scenario import Scenario
from repro.serve.client import ServeClient, ShardedClient

#: Request terminal states a record may carry.
REQUEST_STATES = ("done", "failed", "rejected", "timeout", "error")


@dataclass
class PlannedRequest:
    """One entry of the offered timeline (content, not outcome)."""

    index: int
    offset_s: float
    body: Dict[str, Any]
    duplicate: bool


@dataclass
class RequestRecord:
    """What actually happened to one offered request."""

    index: int
    offset_s: float
    body: Dict[str, Any]
    duplicate: bool
    state: str = "error"
    job_id: Optional[str] = None
    deduped: bool = False
    #: Seconds from *scheduled* start to terminal state (client-visible).
    latency_s: float = 0.0
    #: Seconds the submission itself took (queue admission).
    submit_s: float = 0.0
    #: How late the client thread fired relative to schedule.
    late_s: float = 0.0
    error: Optional[str] = None


def plan_requests(scenario: Scenario, qps: float) -> List[PlannedRequest]:
    """The deterministic request timeline for one rate."""
    import random

    offsets = arrival_offsets(
        scenario.arrival, qps, scenario.duration_s, scenario.seed
    )
    rng = random.Random(f"{scenario.seed}:{qps:g}:mix")
    weights = [entry.weight for entry in scenario.mix]
    issued: List[Dict[str, Any]] = []
    planned: List[PlannedRequest] = []
    variant_counters = [0] * len(scenario.mix)
    for index, offset in enumerate(offsets):
        duplicate = bool(
            issued and rng.random() < scenario.duplicate_rate
        )
        if duplicate:
            body = dict(rng.choice(issued))
        else:
            choice = rng.choices(range(len(scenario.mix)),
                                 weights=weights)[0]
            entry = scenario.mix[choice]
            body = entry.spec(variant_counters[choice], scenario.seed)
            variant_counters[choice] += 1
            issued.append(body)
        planned.append(PlannedRequest(index, offset, body, duplicate))
    return planned


def _drive_one(
    client,
    planned: PlannedRequest,
    start_monotonic: float,
    timeout_s: float,
) -> RequestRecord:
    record = RequestRecord(
        planned.index, planned.offset_s, planned.body, planned.duplicate
    )
    target = start_monotonic + planned.offset_s
    delay = target - time.monotonic()
    if delay > 0:
        time.sleep(delay)
    record.late_s = max(0.0, time.monotonic() - target)
    submit_start = time.monotonic()
    try:
        response = client.submit(
            planned.body["experiment"],
            scale=planned.body.get("scale", 1.0),
            seed=planned.body.get("seed"),
        )
        record.submit_s = time.monotonic() - submit_start
        record.job_id = response["job"]["id"]
        record.deduped = bool(response.get("deduped"))
        terminal = client.wait(record.job_id, timeout_s=timeout_s)
        record.state = "done" if terminal["state"] == "done" else "failed"
        if record.state == "failed":
            record.error = terminal.get("error")
    except (QueueFullError, DegradedError) as error:
        # Both carry Retry-After and are loss-free to resubmit (dedup
        # by spec digest); the harness books them as rejections rather
        # than errors so churn runs distinguish backpressure/degraded
        # windows from real failures.
        record.state = "rejected"
        record.error = str(error)
    except ServeError as error:
        record.state = (
            "timeout" if getattr(error, "http_status", None) == 504
            else "error"
        )
        record.error = str(error)
    record.latency_s = time.monotonic() - target
    return record


class ChurnDriver:
    """Applies a scenario's membership events to a fleet on schedule.

    One daemon thread sleeps to each :class:`ChurnEvent`'s offset from
    the load window's start and applies it to the fleet handle —
    ``kill`` (SIGKILL, crash stays visible to the supervisor),
    ``restart`` (graceful bounce in place), ``add`` (grow by one
    shard, joined to the live ring) and ``remove`` (leave the ring,
    then drain).  ``applied`` records what happened to each event, so
    churn reports show the membership timeline next to the request
    outcomes.
    """

    def __init__(self, fleet, events, start_monotonic: float) -> None:
        self.fleet = fleet
        self.events = list(events)
        self.start = start_monotonic
        self.applied: List[Dict[str, Any]] = []
        self._thread: Optional[threading.Thread] = None

    def start_thread(self) -> "ChurnDriver":
        self._thread = threading.Thread(
            target=self._run, name="loadgen-churn", daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout_s: float = 60.0) -> List[Dict[str, Any]]:
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
        return self.applied

    def _run(self) -> None:
        for event in self.events:
            delay = self.start + event.at_s - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            entry = dict(event.as_dict(), applied_at_s=round(
                time.monotonic() - self.start, 3))
            try:
                self._apply(event)
            except Exception as error:
                entry["error"] = str(error)
            self.applied.append(entry)

    def _apply(self, event) -> None:
        if event.action == "add":
            self.fleet.add_shard()
        elif event.action == "kill":
            self.fleet.kill_shard(event.shard, force=True)
        elif event.action == "restart":
            self.fleet.restart_shard(event.shard)
        else:
            self.fleet.remove_shard(event.shard)


def offer(
    scenario: Scenario,
    qps: float,
    url: Optional[str] = None,
    shards: Optional[Sequence[str]] = None,
    fleet=None,
) -> List[RequestRecord]:
    """Offer one rate of the scenario; returns every request's record.

    ``shards`` selects client-side ring routing
    (:class:`~repro.serve.client.ShardedClient`); otherwise ``url``
    names a daemon or router.  Open loop: a request fires at its
    scheduled offset whenever a client thread is free — saturation
    shows up as ``late_s``/rejections rather than silently closing the
    loop.

    A scenario with ``churn`` events needs ``fleet`` — a handle with
    ``kill_shard``/``restart_shard``/``add_shard``/``remove_shard``
    (the subprocess :class:`~repro.serve.fleet.Fleet`); the events are
    applied on schedule while the load is offered.
    """
    planned = plan_requests(scenario, qps)
    if not planned:
        raise LoadGenError(
            f"scenario {scenario.name!r} offers no requests at "
            f"{qps:g} qps over {scenario.duration_s:g}s"
        )
    if scenario.churn and fleet is None:
        raise LoadGenError(
            f"scenario {scenario.name!r} declares churn events; offer "
            "it through a fleet-booting driver (--shard-counts or the "
            "chaos harness), not a bare --url"
        )
    if shards:
        client = ShardedClient(list(shards), timeout_s=scenario.timeout_s)
    else:
        client = ServeClient(url, timeout_s=scenario.timeout_s)
    start = time.monotonic()
    churn: Optional[ChurnDriver] = None
    if scenario.churn and fleet is not None:
        churn = ChurnDriver(fleet, scenario.churn, start).start_thread()
    with ThreadPoolExecutor(
        max_workers=min(scenario.concurrency, len(planned)),
        thread_name_prefix="loadgen",
    ) as pool:
        futures = [
            pool.submit(_drive_one, client, p, start, scenario.timeout_s)
            for p in planned
        ]
        records = [future.result() for future in futures]
    if churn is not None:
        churn.join()
    return records


@dataclass
class RateRun:
    """One (shard_count, qps) measurement."""

    qps: float
    records: List[RequestRecord]
    wall_s: float


@dataclass
class FleetRun:
    """One shard count's full rate sweep plus fleet-side counters."""

    shard_count: int
    rates: List[RateRun] = field(default_factory=list)
    #: Aggregated fleet counters from the router's ``/metrics``.
    counters: Dict[str, float] = field(default_factory=dict)


def _fleet_counters(router_url: str) -> Dict[str, float]:
    try:
        snapshot = ServeClient(router_url).metrics()
    except ServeError:
        return {}
    counters = snapshot.get("counters", {})
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(("serve.jobs.", "serve.store.",
                            "serve.router.", "serve.shard."))
    }


def sweep_shards(
    scenario: Scenario,
    shard_counts: Sequence[int],
    workers: int = 2,
    root: Optional[str] = None,
    progress=None,
) -> List[FleetRun]:
    """Run the scenario's rate sweep at each shard count (real fleets).

    Each shard count gets a fresh fleet (own store, own state dirs
    under ``root``) so counts never bleed across points; pacing is
    wired through the fleet's child environment when the scenario asks
    for an emulated service time.
    """
    from pathlib import Path

    from repro.serve.executor import JOB_HOOK_ENV
    from repro.serve.fleet import Fleet

    extra_env: Dict[str, str] = {}
    if scenario.service_time_ms > 0:
        extra_env[JOB_HOOK_ENV] = "repro.loadgen.pacing:emulate_service_time"
        extra_env[SERVICE_MS_ENV] = f"{scenario.service_time_ms:g}"
    runs: List[FleetRun] = []
    for shard_count in shard_counts:
        fleet_root = (
            str(Path(root) / f"fleet{shard_count}") if root else None
        )
        fleet = Fleet(
            shards=shard_count, root=fleet_root, workers=workers,
            extra_env=extra_env,
            # Churn scenarios get the self-healing pieces: a
            # supervisor to restart killed shards.
            supervise=bool(scenario.churn),
        )
        run = FleetRun(shard_count=shard_count)
        with fleet:
            for qps in scenario.qps:
                if progress is not None:
                    progress(f"{shard_count} shard(s) @ {qps:g} qps")
                start = time.monotonic()
                records = offer(
                    scenario, qps, url=fleet.url,
                    fleet=fleet if scenario.churn else None,
                )
                run.rates.append(
                    RateRun(qps, records, time.monotonic() - start)
                )
            run.counters = _fleet_counters(fleet.url)
        runs.append(run)
    return runs
