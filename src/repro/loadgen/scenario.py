"""Declarative load-generation scenarios (the llm-d-benchmark idea).

A *scenario profile* is a small JSON (or YAML, when a parser is
available) document describing the load to offer a serve fleet —
job mix, duplicate rate, arrival process, rate sweep — rather than a
script that hard-codes it.  The same profile drives a laptop smoke
run, the CI load-smoke job and the committed ``BENCH_0008.json``
record, so results stay comparable across hosts and sessions.

Profile schema (all keys validated here, unknown keys rejected with
did-you-mean suggestions)::

    {
      "name": "smoke",                  // identifier, [a-z0-9_-]
      "description": "...",             // free text
      "seed": 0,                        // RNG root for arrivals + mix
      "duration_s": 5.0,                // offered-load window per rate
      "qps": [4.0, 8.0],                // rates to sweep
      "arrival": "uniform",             // or "poisson"
      "duplicate_rate": 0.25,           // P(resubmit an earlier spec)
      "mix": [                          // weighted job templates
        {"experiment": "table2", "scale": 0.02,
         "weight": 1.0, "seeds": 8}     // seeds = distinct variants
      ],
      "concurrency": 32,                // client worker threads
      "timeout_s": 60.0,                // per-request completion bound
      "service_time_ms": 0.0,           // >0: emulated service time via
                                        // the REPRO_SERVE_JOB_HOOK seam
      "churn": [                        // seeded membership events
        {"at_s": 1.0, "action": "kill", "shard": 0},
        {"at_s": 1.5, "action": "add"}
      ]
    }

``churn`` makes fleet-membership chaos *declarative*: each event fires
at its offset into the offered-load window against the fleet under
test — ``kill`` (SIGKILL, crash-visible), ``restart`` (graceful bounce
in place), ``remove`` (leave the ring, then drain) take a ``shard``
index; ``add`` grows the fleet by one shard.  Only fleet-booting
drivers (``--shard-counts`` sweeps, the chaos harness) can honour
churn; offering a churn scenario at a plain ``--url`` raises, because
the driver holds no handle to the fleet's processes.

``service_time_ms`` selects the *emulated-backend* mode
(:mod:`repro.loadgen.pacing`): each job sleeps a calibrated service
time with the GIL released instead of burning CPU, which is how
throughput scaling across shards is measured honestly on a one-core
host (see docs/SERVING.md).  Zero means real computation.

Everything is deterministic given ``(seed, qps)``: RNGs are seeded
with stable *strings*, never hashes of tuples, so two hosts offer the
same request sequence.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import LoadGenError

#: Arrival processes a profile may name.
ARRIVALS = ("uniform", "poisson")

#: Scenario names bundled with the package (repro/loadgen/profiles/).
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*$")

_SCENARIO_KEYS = (
    "name", "description", "seed", "duration_s", "qps", "arrival",
    "duplicate_rate", "mix", "concurrency", "timeout_s", "service_time_ms",
    "churn",
)
_MIX_KEYS = ("experiment", "scale", "seeds", "weight")
_CHURN_KEYS = ("at_s", "action", "shard")

#: Membership events a churn entry may name.
CHURN_ACTIONS = ("kill", "restart", "add", "remove")


@dataclass(frozen=True)
class MixEntry:
    """One weighted job template in a scenario's mix."""

    experiment: str
    scale: float = 1.0
    seeds: int = 1
    weight: float = 1.0

    def spec(self, variant: int, base_seed: int) -> Dict[str, Any]:
        """The submission body for one variant of this template."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": base_seed + (variant % self.seeds),
        }


@dataclass(frozen=True)
class ChurnEvent:
    """One declarative membership event during the offered-load window."""

    at_s: float
    action: str
    shard: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"at_s": self.at_s, "action": self.action}
        if self.shard is not None:
            out["shard"] = self.shard
        return out


@dataclass(frozen=True)
class Scenario:
    """A validated load-generation profile."""

    name: str
    description: str = ""
    seed: int = 0
    duration_s: float = 5.0
    qps: Tuple[float, ...] = (4.0,)
    arrival: str = "uniform"
    duplicate_rate: float = 0.0
    mix: Tuple[MixEntry, ...] = field(default_factory=tuple)
    concurrency: int = 32
    timeout_s: float = 60.0
    service_time_ms: float = 0.0
    churn: Tuple[ChurnEvent, ...] = field(default_factory=tuple)

    def distinct_specs(self) -> int:
        """How many distinct spec digests the mix can produce."""
        return sum(entry.seeds for entry in self.mix)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (recorded verbatim into reports)."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "qps": list(self.qps),
            "arrival": self.arrival,
            "duplicate_rate": self.duplicate_rate,
            "mix": [
                {
                    "experiment": e.experiment, "scale": e.scale,
                    "seeds": e.seeds, "weight": e.weight,
                }
                for e in self.mix
            ],
            "concurrency": self.concurrency,
            "timeout_s": self.timeout_s,
            "service_time_ms": self.service_time_ms,
            "churn": [event.as_dict() for event in self.churn],
        }


def _number(name: str, value: Any, lo: float, hi: float,
            integer: bool = False) -> float:
    from repro.validate.schema import coerce_number

    return coerce_number(name, value, lo=lo, hi=hi, integer=integer,
                         error=LoadGenError)


def parse_scenario(mapping: Mapping[str, Any]) -> Scenario:
    """Validate a profile mapping into a :class:`Scenario`."""
    from repro.experiments.runner import ALL_EXPERIMENTS
    from repro.validate.schema import unknown_key_message, validate_keys

    if not isinstance(mapping, Mapping):
        raise LoadGenError("scenario profile must be a JSON object")
    validate_keys(mapping.keys(), _SCENARIO_KEYS,
                  kind="scenario key", error=LoadGenError)
    name = mapping.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name or ""):
        raise LoadGenError(
            f"scenario needs a 'name' matching {_NAME_RE.pattern}, "
            f"got {name!r}"
        )
    arrival = mapping.get("arrival", "uniform")
    if arrival not in ARRIVALS:
        raise LoadGenError(
            unknown_key_message("arrival", str(arrival), list(ARRIVALS))
        )
    raw_qps = mapping.get("qps", [4.0])
    if not isinstance(raw_qps, Sequence) or isinstance(raw_qps, str) \
            or not raw_qps:
        raise LoadGenError("'qps' must be a non-empty list of rates")
    qps = tuple(
        float(_number(f"qps[{i}]", rate, lo=0.1, hi=10_000.0))
        for i, rate in enumerate(raw_qps)
    )
    raw_mix = mapping.get("mix")
    if not isinstance(raw_mix, Sequence) or not raw_mix:
        raise LoadGenError("'mix' must be a non-empty list of job templates")
    mix: List[MixEntry] = []
    for i, entry in enumerate(raw_mix):
        if not isinstance(entry, Mapping):
            raise LoadGenError(f"mix[{i}] must be a JSON object")
        validate_keys(entry.keys(), _MIX_KEYS,
                      kind=f"mix[{i}] key", error=LoadGenError)
        experiment = entry.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise LoadGenError(f"mix[{i}] needs an 'experiment' name")
        if experiment not in ALL_EXPERIMENTS:
            raise LoadGenError(
                unknown_key_message(
                    f"mix[{i}].experiment", experiment,
                    list(ALL_EXPERIMENTS),
                )
            )
        mix.append(MixEntry(
            experiment=experiment,
            scale=float(_number(f"mix[{i}].scale",
                                entry.get("scale", 1.0), lo=1e-6, hi=1.0)),
            seeds=int(_number(f"mix[{i}].seeds",
                              entry.get("seeds", 1), lo=1, hi=10_000,
                              integer=True)),
            weight=float(_number(f"mix[{i}].weight",
                                 entry.get("weight", 1.0), lo=1e-9,
                                 hi=1e9)),
        ))
    raw_churn = mapping.get("churn", [])
    if not isinstance(raw_churn, Sequence) or isinstance(raw_churn, str):
        raise LoadGenError("'churn' must be a list of membership events")
    churn: List[ChurnEvent] = []
    for i, event in enumerate(raw_churn):
        if not isinstance(event, Mapping):
            raise LoadGenError(f"churn[{i}] must be a JSON object")
        validate_keys(event.keys(), _CHURN_KEYS,
                      kind=f"churn[{i}] key", error=LoadGenError)
        action = event.get("action")
        if action not in CHURN_ACTIONS:
            raise LoadGenError(
                unknown_key_message(
                    f"churn[{i}].action", str(action), list(CHURN_ACTIONS)
                )
            )
        shard = event.get("shard")
        if shard is not None:
            shard = int(_number(f"churn[{i}].shard", shard,
                                lo=0, hi=4096, integer=True))
        elif action != "add":
            raise LoadGenError(
                f"churn[{i}]: action {action!r} needs a 'shard' index"
            )
        churn.append(ChurnEvent(
            at_s=float(_number(f"churn[{i}].at_s",
                               event.get("at_s", 0.0), lo=0.0, hi=3600.0)),
            action=str(action),
            shard=shard,
        ))
    churn.sort(key=lambda event: event.at_s)
    return Scenario(
        name=name,
        description=str(mapping.get("description", "")),
        seed=int(_number("seed", mapping.get("seed", 0),
                         lo=0, hi=2**31 - 1, integer=True)),
        duration_s=float(_number("duration_s",
                                 mapping.get("duration_s", 5.0),
                                 lo=0.1, hi=3600.0)),
        qps=qps,
        arrival=str(arrival),
        duplicate_rate=float(_number("duplicate_rate",
                                     mapping.get("duplicate_rate", 0.0),
                                     lo=0.0, hi=0.99)),
        mix=tuple(mix),
        concurrency=int(_number("concurrency",
                                mapping.get("concurrency", 32),
                                lo=1, hi=4096, integer=True)),
        timeout_s=float(_number("timeout_s",
                                mapping.get("timeout_s", 60.0),
                                lo=0.1, hi=3600.0)),
        service_time_ms=float(_number("service_time_ms",
                                      mapping.get("service_time_ms", 0.0),
                                      lo=0.0, hi=60_000.0)),
        churn=tuple(churn),
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a profile file: JSON always; YAML when a parser exists.

    YAML support is gated on :mod:`yaml` being importable — the
    toolchain does not depend on it, so JSON is the portable format and
    ``.yaml``/``.yml`` profiles raise a clear error on hosts without a
    parser instead of an ImportError.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise LoadGenError(f"cannot read scenario profile {path}: {error}")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise LoadGenError(
                f"{path} is YAML but no YAML parser is installed; "
                "convert the profile to JSON (the schemas are identical)"
            )
        try:
            mapping = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise LoadGenError(f"{path} is not valid YAML: {error}")
    else:
        try:
            mapping = json.loads(text)
        except json.JSONDecodeError as error:
            raise LoadGenError(f"{path} is not valid JSON: {error}")
    return parse_scenario(mapping)


def bundled_profiles() -> List[str]:
    """Names of the profiles shipped inside the package."""
    root = Path(__file__).parent / "profiles"
    return sorted(p.stem for p in root.glob("*.json"))


def bundled_profile(name: str) -> Scenario:
    """Load a profile shipped with the package by name."""
    from repro.validate.schema import unknown_key_message

    root = Path(__file__).parent / "profiles"
    path = root / f"{name}.json"
    if not path.is_file():
        raise LoadGenError(
            unknown_key_message("profile", name, bundled_profiles())
        )
    return load_scenario(path)


def resolve_scenario(ref: str) -> Scenario:
    """A profile by bundled name, or by path when ``ref`` looks like one."""
    if "/" in ref or ref.endswith((".json", ".yaml", ".yml")):
        return load_scenario(ref)
    return bundled_profile(ref)
