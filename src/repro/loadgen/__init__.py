"""repro.loadgen — declarative load generation for the serve fleet.

Scenario profiles (JSON; YAML when a parser exists) describe the job
mix, duplicate rate, arrival process and rate sweep to offer a serve
target (:mod:`repro.loadgen.scenario`); the launcher executes the
timeline open-loop from a bounded client pool and, for fleet sweeps,
boots real shard processes per point (:mod:`repro.loadgen.launcher`);
the report module folds request records into percentile latency,
throughput, failure-rate and dedup summaries
(:mod:`repro.loadgen.report`).  ``repro-cli loadgen`` is the entry
point; ``tools/bench_record.py --serve`` writes the committed
``BENCH_0008.json``.  See ``docs/SERVING.md``.
"""

from repro.loadgen.arrivals import arrival_offsets
from repro.loadgen.launcher import (
    REQUEST_STATES,
    ChurnDriver,
    FleetRun,
    PlannedRequest,
    RateRun,
    RequestRecord,
    offer,
    plan_requests,
    sweep_shards,
)
from repro.loadgen.pacing import SERVICE_MS_ENV, emulate_service_time
from repro.loadgen.report import (
    PERCENTILES,
    percentile,
    render_fleet,
    render_rate,
    summarize_fleet,
    summarize_rate,
)
from repro.loadgen.scenario import (
    ARRIVALS,
    CHURN_ACTIONS,
    ChurnEvent,
    MixEntry,
    Scenario,
    bundled_profile,
    bundled_profiles,
    load_scenario,
    parse_scenario,
    resolve_scenario,
)

__all__ = [
    "ARRIVALS",
    "CHURN_ACTIONS",
    "ChurnDriver",
    "ChurnEvent",
    "FleetRun",
    "MixEntry",
    "PERCENTILES",
    "PlannedRequest",
    "REQUEST_STATES",
    "RateRun",
    "RequestRecord",
    "SERVICE_MS_ENV",
    "Scenario",
    "arrival_offsets",
    "bundled_profile",
    "bundled_profiles",
    "emulate_service_time",
    "load_scenario",
    "offer",
    "parse_scenario",
    "percentile",
    "plan_requests",
    "render_fleet",
    "render_rate",
    "resolve_scenario",
    "summarize_fleet",
    "summarize_rate",
    "sweep_shards",
]
