"""Deterministic arrival processes for offered load.

Given a rate, a duration and the scenario seed, produce the *offsets*
(seconds from the run start) at which requests are issued.  Everything
derives from ``random.Random(f"{seed}:{qps}:arrivals")`` — a stable
string seed, so the same scenario offers the same request timeline on
every host and every run (``PYTHONHASHSEED`` never enters).

Two processes:

- ``uniform`` — evenly spaced, ``i / qps``.  Measures steady-state
  behaviour with no burstiness; the right default for scaling curves
  because throughput differences cannot hide behind arrival noise.
- ``poisson`` — exponential inter-arrival gaps at the same mean rate.
  Open-loop bursty traffic; what a fleet sees from many independent
  clients, and the process llm-d-benchmark style harnesses default to.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import LoadGenError


def arrival_offsets(
    arrival: str, qps: float, duration_s: float, seed: int
) -> List[float]:
    """Request offsets (sorted, within ``[0, duration_s)``)."""
    if qps <= 0 or duration_s <= 0:
        raise LoadGenError("arrival rate and duration must be positive")
    if arrival == "uniform":
        count = int(qps * duration_s)
        return [index / qps for index in range(count)]
    if arrival == "poisson":
        rng = random.Random(f"{seed}:{qps:g}:arrivals")
        offsets: List[float] = []
        clock = 0.0
        while True:
            clock += rng.expovariate(qps)
            if clock >= duration_s:
                return offsets
            offsets.append(clock)
    raise LoadGenError(f"unknown arrival process {arrival!r}")
