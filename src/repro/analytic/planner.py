"""DSE planner: score a grid with the surrogate, simulate only survivors.

The planner answers "which cells of a design grid could matter?"
without replaying the grid.  Every cell — one (workload, configuration,
model) point — is scored with the analytical surrogate
(:mod:`repro.analytic.surrogate`); cells whose predicted
(speedup, energy) point is Pareto-dominated *with slack* are pruned;
only the survivors (plus each group's SRAM baseline, needed for
normalisation) are dispatched to full simulation.  The margin knob
makes pruning robust to surrogate error: a cell is pruned only when a
rival beats it by at least the margin on *both* objectives, so any
cell on the true frontier survives as long as the margin exceeds twice
the surrogate's relative error (derivation in ``docs/DSE.md``).

Observability: ``dse.cells_scored`` / ``dse.cells_pruned`` /
``dse.cells_dispatched`` counters and ``dse.score`` / ``dse.dispatch``
spans land in any enabled :mod:`repro.obs` registry.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.nvsim.model import LLCModel
from repro.nvsim.published import CONFIGURATIONS, published_models
from repro.obs import metrics as _metrics
from repro.analytic.surrogate import predict_result
from repro.sim.results import NormalizedResult, normalize

#: Environment knobs (CLI flags override them; see docs/CONFIGURATION.md).
DSE_MARGIN_ENV = "REPRO_DSE_MARGIN"
DSE_WORKLOADS_ENV = "REPRO_DSE_WORKLOADS"

#: Default pruning margin: relative slack a rival must have on *both*
#: objectives before a cell is pruned.  Safe while the surrogate's
#: relative error stays under margin/2 — the measured worst case on the
#: golden workloads is ~0.14% (docs/DSE.md states bound and measurement).
DEFAULT_DSE_MARGIN = 0.005


def resolve_margin(margin: Optional[float] = None) -> float:
    """Pruning margin: explicit argument > ``REPRO_DSE_MARGIN`` > default."""
    if margin is None:
        raw = os.environ.get(DSE_MARGIN_ENV, "").strip()
        if not raw:
            return DEFAULT_DSE_MARGIN
        try:
            margin = float(raw)
        except ValueError:
            raise PlanError(
                f"{DSE_MARGIN_ENV} must be a number, got {raw!r}"
            )
    margin = float(margin)
    if math.isnan(margin) or not 0.0 <= margin < 1.0:
        raise PlanError(f"DSE margin must be in [0, 1), got {margin!r}")
    return margin


def resolve_workloads(
    workloads: Optional[Sequence[str]] = None,
) -> List[str]:
    """Grid workloads: argument > ``REPRO_DSE_WORKLOADS`` > AI subset."""
    if workloads is None:
        raw = os.environ.get(DSE_WORKLOADS_ENV, "").strip()
        if raw:
            workloads = [part.strip() for part in raw.split(",") if part.strip()]
    if not workloads:
        from repro.workloads.registry import ai_benchmarks

        return ai_benchmarks()
    from repro.validate.schema import unknown_key_message
    from repro.workloads.profiles import PROFILES

    for name in workloads:
        if name not in PROFILES:
            raise PlanError(
                unknown_key_message("DSE workload", name, list(PROFILES))
            )
    return list(workloads)


@dataclass(frozen=True, eq=True)
class PlanCell:
    """One point of the grid: a workload on one model in one configuration."""

    workload: str
    configuration: str
    model_name: str

    def label(self) -> str:
        return f"{self.workload}/{self.configuration}/{self.model_name}"


@dataclass(frozen=True)
class PlanGrid:
    """A declared design grid: workloads x configurations x models.

    ``models`` maps each configuration name to its candidate models;
    every configuration must carry exactly one SRAM model (the
    normalisation baseline) and unique model names.
    """

    workloads: Tuple[str, ...]
    configurations: Tuple[str, ...]
    models: Mapping[str, Tuple[LLCModel, ...]]

    def __post_init__(self) -> None:
        if not self.workloads:
            raise PlanError("DSE grid needs at least one workload")
        if not self.configurations:
            raise PlanError("DSE grid needs at least one configuration")
        for configuration in self.configurations:
            models = self.models.get(configuration)
            if not models:
                raise PlanError(
                    f"DSE grid has no models for {configuration!r}"
                )
            names = [model.name for model in models]
            if len(set(names)) != len(names):
                raise PlanError(
                    f"duplicate model names in {configuration!r} grid axis"
                )
            if sum(1 for model in models if model.is_sram) != 1:
                raise PlanError(
                    f"{configuration!r} grid axis needs exactly one SRAM "
                    "baseline model"
                )

    @classmethod
    def published(
        cls,
        workloads: Sequence[str],
        configurations: Sequence[str] = CONFIGURATIONS,
    ) -> "PlanGrid":
        """The paper's Table III grid over the given workloads."""
        return cls(
            workloads=tuple(workloads),
            configurations=tuple(configurations),
            models={
                configuration: tuple(published_models(configuration))
                for configuration in configurations
            },
        )

    def baseline(self, configuration: str) -> LLCModel:
        return next(m for m in self.models[configuration] if m.is_sram)

    def model(self, configuration: str, name: str) -> LLCModel:
        for model in self.models[configuration]:
            if model.name == name:
                return model
        raise PlanError(f"unknown model {name!r} in {configuration!r}")

    def cells(self) -> List[PlanCell]:
        """Every grid cell, in deterministic declaration order."""
        return [
            PlanCell(workload, configuration, model.name)
            for workload in self.workloads
            for configuration in self.configurations
            for model in self.models[configuration]
        ]

    @property
    def n_cells(self) -> int:
        return len(self.workloads) * sum(
            len(self.models[c]) for c in self.configurations
        )


def ladder_models(cell, capacities_bytes: Sequence[int]) -> List[LLCModel]:
    """Circuit-model one NVM cell at several capacities, uniquely named.

    A convenience for declaring capacity-axis grids: names become
    ``<cell>@<MiB>MB`` so one cell's ladder points stay distinct grid
    cells.  Models come from
    :func:`repro.nvsim.sweep.capacity_sweep`, i.e. they pass the
    ``guard_model`` chokepoint like every generated model.
    """
    from repro import units
    from repro.nvsim.sweep import capacity_sweep

    return [
        replace(model, name=f"{model.name}@{model.capacity_bytes // units.MB}MB")
        for model in capacity_sweep(cell, list(capacities_bytes))
    ]


# -- Pareto machinery -----------------------------------------------------


def dominates(a: NormalizedResult, b: NormalizedResult, margin: float = 0.0) -> bool:
    """Does ``a`` beat ``b`` on both objectives (with relative slack)?

    Objectives: maximise ``speedup``, minimise ``energy_ratio``.  With
    ``margin == 0`` this is classic strict Pareto dominance (at least
    one strict inequality); with ``margin > 0`` it requires ``a`` to
    beat ``b`` by a relative factor of ``margin`` on *both* axes.
    """
    if margin > 0.0:
        return (
            a.speedup >= b.speedup * (1.0 + margin)
            and a.energy_ratio <= b.energy_ratio * (1.0 - margin)
        )
    return (
        a.speedup >= b.speedup
        and a.energy_ratio <= b.energy_ratio
        and (a.speedup > b.speedup or a.energy_ratio < b.energy_ratio)
    )


def pareto_frontier(
    values: Mapping[PlanCell, NormalizedResult]
) -> List[PlanCell]:
    """Cells not strictly dominated by any other cell of the mapping."""
    cells = list(values)
    return [
        cell
        for cell in cells
        if not any(
            dominates(values[other], values[cell])
            for other in cells
            if other != cell
        )
    ]


def margin_pruned(
    values: Mapping[PlanCell, NormalizedResult], margin: float
) -> List[PlanCell]:
    """Cells some rival dominates with at least ``margin`` slack."""
    cells = list(values)
    return [
        cell
        for cell in cells
        if any(
            dominates(values[other], values[cell], margin)
            for other in cells
            if other != cell
        )
    ]


# -- Planning -------------------------------------------------------------


@dataclass
class Plan:
    """A scored grid: surrogate predictions plus the pruning verdict."""

    grid: PlanGrid
    margin: float
    predicted: Dict[PlanCell, NormalizedResult]
    pruned: List[PlanCell]
    survivors: List[PlanCell]
    dispatch: List[PlanCell]

    @property
    def n_cells(self) -> int:
        return len(self.predicted)

    @property
    def savings_ratio(self) -> float:
        """Full simulations avoided: grid cells per dispatched cell."""
        return self.n_cells / max(1, len(self.dispatch))


@dataclass
class PlanOutcome:
    """An executed plan: simulated survivors and the resulting frontier."""

    plan: Plan
    simulated: Dict[PlanCell, NormalizedResult]
    frontier: List[PlanCell]


def _groups(
    grid: PlanGrid, cells: Sequence[PlanCell]
) -> Dict[Tuple[str, str], List[PlanCell]]:
    grouped: Dict[Tuple[str, str], List[PlanCell]] = {}
    for cell in cells:
        grouped.setdefault((cell.workload, cell.configuration), []).append(cell)
    return grouped


def score(grid: PlanGrid, context, margin: Optional[float] = None) -> Plan:
    """Score every grid cell with the surrogate and prune with margin.

    One reuse-profile pass per workload (cached in the replay cache)
    prices the whole grid; no full replays happen here.
    """
    margin = resolve_margin(margin)
    predicted: Dict[PlanCell, NormalizedResult] = {}
    with _metrics.span("dse.score"):
        for workload in grid.workloads:
            session = context.session(workload)
            profile = session.reuse_profile()
            private = session.private
            for configuration in grid.configurations:
                baseline_model = grid.baseline(configuration)
                baseline = predict_result(
                    workload, configuration, private, profile,
                    baseline_model, session.arch,
                )
                for model in grid.models[configuration]:
                    result = (
                        baseline
                        if model.name == baseline_model.name
                        else predict_result(
                            workload, configuration, private, profile,
                            model, session.arch,
                        )
                    )
                    predicted[
                        PlanCell(workload, configuration, model.name)
                    ] = normalize(result, baseline)
    _metrics.counter_add("dse.cells_scored", len(predicted))

    pruned: List[PlanCell] = []
    survivors: List[PlanCell] = []
    for group_cells in _groups(grid, list(predicted)).values():
        values = {cell: predicted[cell] for cell in group_cells}
        group_pruned = set(margin_pruned(values, margin))
        for cell in group_cells:
            (pruned if cell in group_pruned else survivors).append(cell)
    _metrics.counter_add("dse.cells_pruned", len(pruned))

    dispatch = list(survivors)
    needed = {(cell.workload, cell.configuration) for cell in survivors}
    for workload, configuration in sorted(needed):
        baseline_cell = PlanCell(
            workload, configuration, grid.baseline(configuration).name
        )
        if baseline_cell not in dispatch:
            dispatch.append(baseline_cell)
    return Plan(
        grid=grid,
        margin=margin,
        predicted=predicted,
        pruned=pruned,
        survivors=survivors,
        dispatch=dispatch,
    )


def execute(plan: Plan, context) -> PlanOutcome:
    """Fully simulate the dispatched cells; frontier over the survivors.

    Baseline cells dispatched only for normalisation do not join the
    frontier candidates unless they survived pruning themselves.
    """
    grid = plan.grid
    simulated: Dict[PlanCell, NormalizedResult] = {}
    with _metrics.span("dse.dispatch"):
        for (workload, configuration), cells in _groups(
            grid, plan.dispatch
        ).items():
            session = context.session(workload)
            baseline_model = grid.baseline(configuration)
            baseline = session.run(baseline_model, configuration)
            for cell in cells:
                result = (
                    baseline
                    if cell.model_name == baseline_model.name
                    else session.run(
                        grid.model(configuration, cell.model_name),
                        configuration,
                    )
                )
                simulated[cell] = normalize(result, baseline)
    _metrics.counter_add("dse.cells_dispatched", len(plan.dispatch))

    survivor_set = set(plan.survivors)
    frontier: List[PlanCell] = []
    for group_cells in _groups(grid, plan.survivors).values():
        values = {
            cell: simulated[cell]
            for cell in group_cells
            if cell in survivor_set
        }
        frontier.extend(pareto_frontier(values))
    _metrics.gauge_set("dse.frontier_size", len(frontier))
    return PlanOutcome(plan=plan, simulated=simulated, frontier=frontier)


def plan_and_execute(
    grid: PlanGrid, context, margin: Optional[float] = None
) -> PlanOutcome:
    """Score, prune and simulate in one call."""
    return execute(score(grid, context, margin), context)


def exhaustive_frontier(
    grid: PlanGrid, context
) -> Tuple[Dict[PlanCell, NormalizedResult], List[PlanCell]]:
    """Oracle for validation: full-simulate *every* cell, then frontier.

    Returns ``(simulated, frontier)``; the acceptance check (and
    ``tools/dse_smoke.py``) compares this frontier against the
    planner's.
    """
    simulated: Dict[PlanCell, NormalizedResult] = {}
    for workload in grid.workloads:
        session = context.session(workload)
        for configuration in grid.configurations:
            baseline = session.run(grid.baseline(configuration), configuration)
            for model in grid.models[configuration]:
                result = (
                    baseline
                    if model.is_sram
                    else session.run(model, configuration)
                )
                simulated[
                    PlanCell(workload, configuration, model.name)
                ] = normalize(result, baseline)
    frontier: List[PlanCell] = []
    for group_cells in _groups(grid, list(simulated)).values():
        frontier.extend(
            pareto_frontier({cell: simulated[cell] for cell in group_cells})
        )
    return simulated, frontier


# -- Experiment surface ---------------------------------------------------


def render(outcome: PlanOutcome) -> str:
    """Human-readable planner report with per-cell provenance."""
    from repro.experiments.common import TableWriter

    plan = outcome.plan
    frontier_set = set(outcome.frontier)
    pruned_set = set(plan.pruned)
    lines = [
        f"grid: {len(plan.grid.workloads)} workloads x "
        f"{sum(len(plan.grid.models[c]) for c in plan.grid.configurations)} "
        f"models = {plan.n_cells} cells",
        f"margin: {plan.margin:g}   scored: {plan.n_cells}   "
        f"pruned: {len(plan.pruned)}   dispatched: {len(plan.dispatch)} "
        f"({plan.savings_ratio:.1f}x fewer full simulations)",
        "",
    ]
    frontier_table = TableWriter(
        headers=["workload", "configuration", "LLC", "speedup", "energy", "ED^2P"]
    )
    for cell in sorted(
        outcome.frontier,
        key=lambda c: (c.workload, c.configuration, c.model_name),
    ):
        value = outcome.simulated[cell]
        frontier_table.add(
            cell.workload, cell.configuration, cell.model_name,
            value.speedup, value.energy_ratio, value.ed2p_ratio,
        )
    lines.append("Pareto frontier (simulated)")
    lines.append(frontier_table.render())
    lines.append("")

    provenance = TableWriter(
        headers=[
            "workload", "configuration", "LLC",
            "pred speedup", "pred energy",
            "sim speedup", "sim energy", "status",
        ]
    )
    for cell in plan.grid.cells():
        pred = plan.predicted[cell]
        sim = outcome.simulated.get(cell)
        status = (
            "pruned" if cell in pruned_set
            else "frontier" if cell in frontier_set
            else "dominated"
        )
        provenance.add(
            cell.workload, cell.configuration, cell.model_name,
            pred.speedup, pred.energy_ratio,
            sim.speedup if sim is not None else "-",
            sim.energy_ratio if sim is not None else "-",
            status,
        )
    lines.append("Per-cell provenance (surrogate vs simulated)")
    lines.append(provenance.render())
    return "\n".join(lines)


def provenance_record(outcome: PlanOutcome) -> dict:
    """JSON-safe provenance for the run manifest: one row per cell."""
    plan = outcome.plan
    frontier_set = set(outcome.frontier)
    pruned_set = set(plan.pruned)
    cells = []
    for cell in plan.grid.cells():
        pred = plan.predicted[cell]
        sim = outcome.simulated.get(cell)
        cells.append({
            "workload": cell.workload,
            "configuration": cell.configuration,
            "model": cell.model_name,
            "surrogate": {
                "speedup": pred.speedup,
                "energy_ratio": pred.energy_ratio,
            },
            "simulated": None if sim is None else {
                "speedup": sim.speedup,
                "energy_ratio": sim.energy_ratio,
            },
            "status": (
                "pruned" if cell in pruned_set
                else "frontier" if cell in frontier_set
                else "dominated"
            ),
        })
    return {
        "margin": plan.margin,
        "cells_scored": plan.n_cells,
        "cells_pruned": len(plan.pruned),
        "cells_dispatched": len(plan.dispatch),
        "savings_ratio": plan.savings_ratio,
        "frontier": sorted(cell.label() for cell in outcome.frontier),
        "cells": cells,
    }


def run_dse(
    context,
    margin: Optional[float] = None,
    workloads: Optional[Sequence[str]] = None,
) -> PlanOutcome:
    """The ``dse`` experiment: planner over the published-model grid."""
    grid = PlanGrid.published(resolve_workloads(workloads))
    return plan_and_execute(grid, context, margin)
