"""Analytical surrogate: reuse profile -> predicted sweep-cell result.

Predicts what a full LLC replay would count — hits, misses, writes,
dirty evictions, per-core splits, MLP — from one capacity-parameterised
:class:`~repro.prism.reuse.StreamReuseProfile`, then prices the
prediction through the same :func:`repro.nvsim.pricing.price_counts`
hook the simulator uses.  One profile pass per workload amortises over
every cell of a design-space grid: evaluating a new (model, capacity)
point costs microseconds instead of a replay.

The prediction is *exact* for a fully-associative LRU cache (stack
distances and the dirty-eviction curve are exact); the residual error
against the 16-way simulator is set-conflict noise, measured and
bounded in ``docs/DSE.md``.  Predicted counts flow through
:func:`repro.validate.guard.guard_counts` and priced results through
:func:`repro.validate.guard.guard_result` — the surrogate obeys the
same validation chokepoints as the simulator.
"""

from __future__ import annotations

from repro.nvsim.model import LLCModel
from repro.nvsim.pricing import price_counts
from repro.obs import metrics as _metrics
from repro.prism.reuse import StreamReuseProfile
from repro.sim.config import ArchitectureConfig
from repro.sim.llc import LLCCounts, estimate_mlp
from repro.sim.results import SimResult


def predict_counts(
    profile: StreamReuseProfile,
    capacity_bytes: int,
    arch: ArchitectureConfig,
    subject: str = "surrogate",
) -> LLCCounts:
    """Predicted FA-LRU counts at one capacity, guarded like a replay.

    The returned counts satisfy the simulator's exact invariants by
    construction (``hits + misses == lookups`` per access type,
    ``dirty_evictions <= fills``) and are checked by
    :func:`~repro.validate.guard.guard_counts` regardless.
    """
    import numpy as np

    from repro.validate.guard import guard_counts

    capacity_blocks = max(1, capacity_bytes // arch.llc_block_bytes)
    read_hits = profile.read_hits_at(capacity_blocks)
    write_hits = profile.write_hits_at(capacity_blocks)

    counts = LLCCounts(
        capacity_bytes=capacity_bytes,
        associativity=arch.llc_associativity,
    )
    counts.read_lookups = profile.n_reads
    counts.read_hits = read_hits
    counts.read_misses = profile.n_reads - read_hits
    counts.write_accesses = profile.n_writes
    counts.write_hits = write_hits
    counts.write_misses = profile.n_writes - write_hits
    counts.dirty_evictions = profile.dirty_evictions_at(capacity_blocks)

    per_core_hits = profile.per_core_read_hits(capacity_blocks)
    per_core_reads = np.bincount(
        profile.read_cores, minlength=profile.n_cores
    ).tolist()
    counts.per_core_read_hits = per_core_hits
    counts.per_core_read_misses = [
        total - hits for total, hits in zip(per_core_reads, per_core_hits)
    ]
    counts.per_core_mlp = [
        estimate_mlp(
            positions, arch.mlp_window_instructions, arch.max_mlp
        )
        for positions in profile.per_core_miss_positions(capacity_blocks)
    ]
    return guard_counts(counts, subject=subject)


def predict_result(
    workload: str,
    configuration: str,
    private,
    profile: StreamReuseProfile,
    llc_model: LLCModel,
    arch: ArchitectureConfig,
) -> SimResult:
    """Predict one sweep cell: surrogate counts, simulator pricing.

    ``private`` is the workload's technology-independent
    :class:`~repro.sim.hierarchy.PrivateResult` (already computed for
    the profile); the model's latencies/energies/leakage price the
    predicted counts through :func:`repro.nvsim.pricing.price_counts`,
    so surrogate and simulator disagree only where their *counts* do.
    """
    counts = predict_counts(
        profile,
        llc_model.capacity_bytes,
        arch,
        subject=f"surrogate {workload}@{llc_model.capacity_bytes}B",
    )
    _metrics.counter_add("analytic.predictions")
    return price_counts(
        workload, configuration, private, counts, llc_model, arch
    )


def predict(session, llc_model: LLCModel, configuration=None) -> SimResult:
    """Surrogate counterpart of :meth:`SimulationSession.run`.

    Uses the session's cached reuse profile (computed once, persisted
    in the replay cache) — scoring many models against one session is
    the intended access pattern.
    """
    with _metrics.span("analytic.predict"):
        profile = session.reuse_profile()
        return predict_result(
            workload=session.trace.name or "trace",
            configuration=configuration or session.configuration,
            private=session.private,
            profile=profile,
            llc_model=llc_model,
            arch=session.arch,
        )
