"""Analytical fast path and DSE planner.

Predicts sweep-cell results from a workload's reuse profile instead of
replaying it (:mod:`repro.analytic.surrogate`), and uses those
predictions to prune design grids before full simulation
(:mod:`repro.analytic.planner`).  The math, accuracy bounds and the
Pareto-pruning safety argument live in ``docs/DSE.md``.
"""

from repro.analytic.planner import (
    DEFAULT_DSE_MARGIN,
    DSE_MARGIN_ENV,
    DSE_WORKLOADS_ENV,
    Plan,
    PlanCell,
    PlanGrid,
    PlanOutcome,
    dominates,
    exhaustive_frontier,
    execute,
    ladder_models,
    margin_pruned,
    pareto_frontier,
    plan_and_execute,
    render,
    resolve_margin,
    resolve_workloads,
    run_dse,
    score,
)
from repro.analytic.surrogate import predict, predict_counts, predict_result

__all__ = [
    "DEFAULT_DSE_MARGIN",
    "DSE_MARGIN_ENV",
    "DSE_WORKLOADS_ENV",
    "Plan",
    "PlanCell",
    "PlanGrid",
    "PlanOutcome",
    "dominates",
    "exhaustive_frontier",
    "execute",
    "ladder_models",
    "margin_pruned",
    "pareto_frontier",
    "plan_and_execute",
    "render",
    "resolve_margin",
    "resolve_workloads",
    "run_dse",
    "score",
    "predict",
    "predict_counts",
    "predict_result",
]
