"""Trace persistence.

Two formats:

- **npz** (binary, lossless, fast): the four column arrays plus the
  trace name; the format for checkpointing generated traces and for
  importing traces converted from external profilers.
- **text** (one access per line, human-readable): ``R|W <hex-address>
  <thread> <gap>``, with ``#`` comments — convenient for hand-written
  test vectors and for eyeballing.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.errors import TraceError
from repro.trace.stream import Trace

#: Required arrays in a trace .npz file.
_NPZ_KEYS = ("addresses", "writes", "thread_ids", "gaps")


def save_npz(trace: Trace, path: Union[str, Path]) -> None:
    """Save a trace to an ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        addresses=trace.addresses,
        writes=trace.writes,
        thread_ids=trace.thread_ids,
        gaps=trace.gaps,
        name=np.array(trace.name or ""),
    )


def load_npz(path: Union[str, Path]) -> Trace:
    """Load a trace from an ``.npz`` file."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        missing = [k for k in _NPZ_KEYS if k not in data]
        if missing:
            raise TraceError(f"{path} is not a trace file (missing {missing})")
        name = str(data["name"]) if "name" in data else ""
        return Trace(
            addresses=data["addresses"],
            writes=data["writes"],
            thread_ids=data["thread_ids"],
            gaps=data["gaps"],
            name=name,
        )


def dump_text(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as one access per line."""
    with open(Path(path), "w") as handle:
        handle.write(f"# trace: {trace.name or '(unnamed)'}\n")
        handle.write("# op address thread gap\n")
        for i in range(len(trace)):
            op = "W" if trace.writes[i] else "R"
            handle.write(
                f"{op} 0x{int(trace.addresses[i]):x} "
                f"{int(trace.thread_ids[i])} {int(trace.gaps[i])}\n"
            )


def parse_text(source: Union[str, Path, io.TextIOBase], name: str = "") -> Trace:
    """Parse the text format from a path, string, or file object.

    Lines: ``R|W <address> [thread] [gap]``; addresses accept ``0x``
    hex or decimal; blank lines and ``#`` comments are skipped.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        with open(Path(source)) as handle:
            lines = handle.readlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)

    addresses: List[int] = []
    writes: List[bool] = []
    threads: List[int] = []
    gaps: List[int] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 2 or parts[0].upper() not in ("R", "W"):
            raise TraceError(f"line {lineno}: expected 'R|W address ...', got {raw!r}")
        try:
            address = int(parts[1], 0)
        except ValueError:
            raise TraceError(f"line {lineno}: bad address {parts[1]!r}")
        thread = int(parts[2]) if len(parts) > 2 else 0
        gap = int(parts[3]) if len(parts) > 3 else 0
        if address < 0 or thread < 0 or gap < 0:
            raise TraceError(f"line {lineno}: negative field")
        addresses.append(address)
        writes.append(parts[0].upper() == "W")
        threads.append(thread)
        gaps.append(gap)

    return Trace(
        addresses=np.array(addresses, dtype=np.uint64),
        writes=np.array(writes, dtype=bool),
        thread_ids=np.array(threads, dtype=np.uint16),
        gaps=np.array(gaps, dtype=np.uint32),
        name=name,
    )
