"""Trace persistence, behind the input-validation firewall.

Two formats:

- **npz** (binary, lossless, fast): the four column arrays plus the
  trace name; the format for checkpointing generated traces and for
  importing traces converted from external profilers.
- **text** (one access per line, human-readable): ``R|W <hex-address>
  <thread> <gap>``, with ``#`` comments — convenient for hand-written
  test vectors and for eyeballing.

Ingestion hardening (the firewall's first layer):

- :func:`parse_text` streams its input line by line with bounded
  memory — column data accumulates in fixed-size chunks that convert
  to their final numpy dtype as they fill, so a multi-GB trace never
  materialises as a Python list, let alone via ``readlines()``.
- Every malformed line produces a structured
  :class:`~repro.errors.TraceError` carrying the 1-based line number,
  the offending field and the raw token.  Out-of-range values —
  addresses over 2^64-1, thread ids over 65535, gaps over 2^32-1 —
  are rejected *before* array construction; the old code's silent
  ``uint16``/``uint32`` wraparound cannot happen.
- Under the ``lenient`` policy (:mod:`repro.validate.policy`)
  malformed lines are *quarantined* instead: skipped, counted in the
  ``validate.trace.quarantined_lines`` metric (surfaced in run
  manifests), and summarised once on stderr.
- :func:`load_npz` schema-checks the archive — required arrays, one
  dimension each, equal lengths, integer dtypes, value ranges that fit
  the column dtypes — and wraps every decode failure (truncated zip,
  pickled payloads, hand-edited arrays) in a :class:`TraceError`, so a
  corrupt trace fails at load, not mid-sweep.
"""

from __future__ import annotations

import io
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.obs import metrics as _metrics
from repro.trace.stream import Trace
from repro.validate.policy import Policy, resolve_policy

#: Required arrays in a trace .npz file.
_NPZ_KEYS = ("addresses", "writes", "thread_ids", "gaps")

#: Inclusive value ceiling per column (the column dtype's range).
MAX_ADDRESS = 2**64 - 1
MAX_THREAD_ID = 2**16 - 1
MAX_GAP = 2**32 - 1

#: Lines per accumulation chunk in the streaming text parser.  65 536
#: accesses is ~1.5 MB of final arrays; the transient Python-list
#: overhead stays bounded by this regardless of trace size.
_CHUNK_LINES = 65536


def save_npz(trace: Trace, path: Union[str, Path]) -> None:
    """Save a trace to an ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        addresses=trace.addresses,
        writes=trace.writes,
        thread_ids=trace.thread_ids,
        gaps=trace.gaps,
        name=np.array(trace.name or ""),
    )


def _check_npz_column(
    path: Path, key: str, array: np.ndarray, policy: Policy
) -> None:
    """Schema- and range-check one column array from an npz trace."""
    if array.ndim != 1:
        raise TraceError(
            f"{path}: array {key!r} has {array.ndim} dimensions, expected 1",
            field=key,
        )
    if not policy.active:
        return
    kind = array.dtype.kind
    if key == "writes":
        if kind not in "biu":
            raise TraceError(
                f"{path}: array 'writes' must be boolean or integer 0/1, "
                f"got dtype {array.dtype}",
                field=key, value=str(array.dtype),
            )
        if kind in "iu" and array.size and int(array.max()) > 1:
            raise TraceError(
                f"{path}: array 'writes' contains values other than 0/1",
                field=key,
            )
        return
    if kind not in "iu":
        raise TraceError(
            f"{path}: array {key!r} must be an integer dtype, "
            f"got {array.dtype} — float or object traces are rejected "
            "rather than silently truncated",
            field=key, value=str(array.dtype),
        )
    if array.size == 0:
        return
    lo = int(array.min()) if kind == "i" else 0
    hi = int(array.max())
    ceiling = {"addresses": MAX_ADDRESS, "thread_ids": MAX_THREAD_ID,
               "gaps": MAX_GAP}[key]
    if lo < 0:
        raise TraceError(
            f"{path}: array {key!r} contains negative values (min {lo})",
            field=key, value=lo,
        )
    if hi > ceiling:
        raise TraceError(
            f"{path}: array {key!r} contains {hi}, over the column "
            f"maximum {ceiling}",
            field=key, value=hi,
        )


def load_npz(path: Union[str, Path], policy=None) -> Trace:
    """Load a trace from an ``.npz`` file, schema-checked.

    A file that is not a well-formed trace archive — truncated,
    hand-edited, pickled, wrong arrays, mismatched lengths,
    out-of-range values — raises :class:`TraceError` naming the array
    and problem.  ``policy`` (default: the ambient validation policy)
    set to ``off`` skips the value-range scan but keeps the structural
    checks, which predate the firewall.
    """
    path = Path(path)
    policy = resolve_policy(policy)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as error:  # zipfile/OSError/ValueError zoo
        raise TraceError(
            f"{path} is not a readable trace archive: {error}"
        ) from None
    with data:
        missing = [k for k in _NPZ_KEYS if k not in data]
        if missing:
            raise TraceError(f"{path} is not a trace file (missing {missing})")
        try:
            arrays = {k: data[k] for k in _NPZ_KEYS}
            name = str(data["name"]) if "name" in data else ""
        except Exception as error:
            raise TraceError(
                f"{path} contains an undecodable array: {error}"
            ) from None
        lengths = {k: len(a) for k, a in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise TraceError(
                f"{path}: trace arrays disagree on length "
                f"({', '.join(f'{k}={n}' for k, n in lengths.items())}) — "
                "the file is truncated or hand-edited",
            )
        for key, array in arrays.items():
            _check_npz_column(path, key, array, policy)
        return Trace(
            addresses=arrays["addresses"],
            writes=arrays["writes"],
            thread_ids=arrays["thread_ids"],
            gaps=arrays["gaps"],
            name=name,
        )


def dump_text(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as one access per line."""
    with open(Path(path), "w") as handle:
        handle.write(f"# trace: {trace.name or '(unnamed)'}\n")
        handle.write("# op address thread gap\n")
        for i in range(len(trace)):
            op = "W" if trace.writes[i] else "R"
            handle.write(
                f"{op} 0x{int(trace.addresses[i]):x} "
                f"{int(trace.thread_ids[i])} {int(trace.gaps[i])}\n"
            )


def _iter_lines(source: Union[str, Path, io.TextIOBase]) -> Iterator[str]:
    """Stream lines from a path, literal string, or file object."""
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        with open(Path(source)) as handle:
            yield from handle
    elif isinstance(source, str):
        yield from source.splitlines()
    else:
        yield from source


def _parse_line(lineno: int, raw: str) -> Optional[Tuple[int, bool, int, int]]:
    """One text line -> ``(address, write, thread, gap)`` or None.

    Raises :class:`TraceError` with the line number, field name and raw
    token on any malformed field — including values that would have
    silently wrapped the column dtypes.
    """
    line = raw.split("#", 1)[0].strip()
    if not line:
        return None
    parts = line.split()
    if len(parts) < 2 or parts[0].upper() not in ("R", "W"):
        raise TraceError(
            f"line {lineno}: expected 'R|W address ...', got {raw!r}",
            lineno=lineno, field="op", value=raw.strip(),
        )
    try:
        address = int(parts[1], 0)
    except ValueError:
        raise TraceError(
            f"line {lineno}: bad address {parts[1]!r}",
            lineno=lineno, field="address", value=parts[1],
        ) from None
    fields = [("thread", 0), ("gap", 0)]
    values = []
    for offset, (field, default) in enumerate(fields, start=2):
        if len(parts) > offset:
            try:
                values.append(int(parts[offset], 0))
            except ValueError:
                raise TraceError(
                    f"line {lineno}: bad {field} {parts[offset]!r}",
                    lineno=lineno, field=field, value=parts[offset],
                ) from None
        else:
            values.append(default)
    thread, gap = values
    for field, value, ceiling in (
        ("address", address, MAX_ADDRESS),
        ("thread", thread, MAX_THREAD_ID),
        ("gap", gap, MAX_GAP),
    ):
        if value < 0:
            raise TraceError(
                f"line {lineno}: negative {field}",
                lineno=lineno, field=field, value=value,
            )
        if value > ceiling:
            raise TraceError(
                f"line {lineno}: {field} {value} over the column "
                f"maximum {ceiling}",
                lineno=lineno, field=field, value=value,
            )
    return address, parts[0].upper() == "W", thread, gap


class _ColumnChunks:
    """Bounded-memory column accumulator for the streaming parser.

    Appends go to plain lists; every :data:`_CHUNK_LINES` rows the
    lists convert to their final numpy dtypes and reset, so peak
    Python-object overhead is one chunk regardless of input size.
    """

    def __init__(self) -> None:
        self._chunks: List[Tuple[np.ndarray, ...]] = []
        self._reset()

    def _reset(self) -> None:
        self.addresses: List[int] = []
        self.writes: List[bool] = []
        self.threads: List[int] = []
        self.gaps: List[int] = []

    def append(self, address: int, write: bool, thread: int, gap: int) -> None:
        self.addresses.append(address)
        self.writes.append(write)
        self.threads.append(thread)
        self.gaps.append(gap)
        if len(self.addresses) >= _CHUNK_LINES:
            self._flush()

    def _flush(self) -> None:
        if self.addresses:
            self._chunks.append((
                np.array(self.addresses, dtype=np.uint64),
                np.array(self.writes, dtype=bool),
                np.array(self.threads, dtype=np.uint16),
                np.array(self.gaps, dtype=np.uint32),
            ))
            self._reset()

    def trace(self, name: str) -> Trace:
        self._flush()
        if not self._chunks:
            return Trace.empty(name)
        if len(self._chunks) == 1:
            addresses, writes, threads, gaps = self._chunks[0]
        else:
            addresses, writes, threads, gaps = (
                np.concatenate(column) for column in zip(*self._chunks)
            )
        return Trace(
            addresses=addresses, writes=writes,
            thread_ids=threads, gaps=gaps, name=name,
        )


def parse_text(
    source: Union[str, Path, io.TextIOBase],
    name: str = "",
    policy=None,
) -> Trace:
    """Parse the text format from a path, string, or file object.

    Lines: ``R|W <address> [thread] [gap]``; addresses accept ``0x``
    hex or decimal; blank lines and ``#`` comments are skipped.

    Malformed or out-of-range lines raise :class:`TraceError` with the
    line number and field — or, under the ``lenient`` validation
    policy, are quarantined: skipped, counted in the
    ``validate.trace.quarantined_lines`` metric and summarised once on
    stderr.  ``policy`` defaults to the ambient policy
    (:func:`repro.validate.policy.current_policy`).
    """
    policy = resolve_policy(policy)
    columns = _ColumnChunks()
    quarantined = 0
    first_problem: Optional[TraceError] = None
    for lineno, raw in enumerate(_iter_lines(source), start=1):
        try:
            row = _parse_line(lineno, raw)
        except TraceError as error:
            if policy is not Policy.LENIENT:
                raise
            quarantined += 1
            if first_problem is None:
                first_problem = error
            continue
        if row is not None:
            columns.append(*row)
    if quarantined:
        _metrics.counter_add("validate.trace.quarantined_lines", quarantined)
        print(
            f"warning: quarantined {quarantined} malformed trace "
            f"line{'s' if quarantined != 1 else ''} in {name or 'trace'} "
            f"(first: {first_problem}) — lenient validation",
            file=sys.stderr,
        )
    return columns.trace(name)
