"""Column-oriented memory traces.

A :class:`Trace` stores accesses as parallel numpy arrays — address,
write flag, thread id, instruction gap — which keeps multi-hundred-
thousand-access traces cheap to hold and lets the profiler vectorise
feature extraction.  Scalar access (iteration, indexing) is provided for
tests and small tools.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.access import BLOCK_BITS, AccessType, MemoryAccess

#: Directory under which parallel sweeps spill trace columns for
#: zero-copy sharing with worker processes (unset = system temp dir).
SPILL_DIR_ENV = "REPRO_SPILL_DIR"


def resolve_spill_dir() -> Optional[str]:
    """The configured spill root, or None for the system temp dir."""
    raw = os.environ.get(SPILL_DIR_ENV, "").strip()
    return raw or None


@dataclass
class Trace:
    """An immutable-by-convention column store of memory accesses.

    Attributes
    ----------
    addresses:
        Byte addresses, ``uint64``.
    writes:
        Write flags, ``bool``.
    thread_ids:
        Issuing thread per access, ``uint16``.
    gaps:
        Non-memory instructions since the previous same-thread access,
        ``uint32``.
    name:
        Optional label (benchmark name).
    """

    addresses: np.ndarray
    writes: np.ndarray
    thread_ids: np.ndarray
    gaps: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        n = len(self.addresses)
        for column, label in (
            (self.writes, "writes"),
            (self.thread_ids, "thread_ids"),
            (self.gaps, "gaps"),
        ):
            if len(column) != n:
                raise TraceError(
                    f"column {label} has {len(column)} rows, expected {n}"
                )
        self.addresses = np.asarray(self.addresses, dtype=np.uint64)
        self.writes = np.asarray(self.writes, dtype=bool)
        self.thread_ids = np.asarray(self.thread_ids, dtype=np.uint16)
        self.gaps = np.asarray(self.gaps, dtype=np.uint32)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_accesses(cls, accesses: Sequence[MemoryAccess], name: str = "") -> "Trace":
        """Build a trace from scalar accesses (test/tooling path)."""
        return cls(
            addresses=np.array([a.address for a in accesses], dtype=np.uint64),
            writes=np.array([a.is_write for a in accesses], dtype=bool),
            thread_ids=np.array([a.thread_id for a in accesses], dtype=np.uint16),
            gaps=np.array([a.gap for a in accesses], dtype=np.uint32),
            name=name,
        )

    @classmethod
    def empty(cls, name: str = "") -> "Trace":
        """An empty trace."""
        return cls(
            addresses=np.empty(0, dtype=np.uint64),
            writes=np.empty(0, dtype=bool),
            thread_ids=np.empty(0, dtype=np.uint16),
            gaps=np.empty(0, dtype=np.uint32),
            name=name,
        )

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"], name: str = "") -> "Trace":
        """Concatenate traces back-to-back."""
        if not traces:
            return cls.empty(name)
        return cls(
            addresses=np.concatenate([t.addresses for t in traces]),
            writes=np.concatenate([t.writes for t in traces]),
            thread_ids=np.concatenate([t.thread_ids for t in traces]),
            gaps=np.concatenate([t.gaps for t in traces]),
            name=name or traces[0].name,
        )

    # -- basic stats -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def n_accesses(self) -> int:
        """Total accesses."""
        return len(self)

    @property
    def n_reads(self) -> int:
        """Total read accesses."""
        return int(len(self) - self.writes.sum())

    @property
    def n_writes(self) -> int:
        """Total write accesses."""
        return int(self.writes.sum())

    @property
    def n_instructions(self) -> int:
        """Total instructions implied by the trace (gaps plus accesses)."""
        return int(self.gaps.sum()) + len(self)

    @property
    def n_threads(self) -> int:
        """Number of distinct issuing threads."""
        if len(self) == 0:
            return 0
        return int(self.thread_ids.max()) + 1

    @property
    def block_addresses(self) -> np.ndarray:
        """Block addresses (uint64) of all accesses."""
        return self.addresses >> np.uint64(BLOCK_BITS)

    # -- views --------------------------------------------------------------

    def reads(self) -> "Trace":
        """The read-only sub-trace."""
        return self._select(~self.writes)

    def writes_only(self) -> "Trace":
        """The write-only sub-trace."""
        return self._select(self.writes)

    def thread(self, thread_id: int) -> "Trace":
        """The per-thread sub-trace."""
        return self._select(self.thread_ids == thread_id)

    def head(self, n: int) -> "Trace":
        """The first ``n`` accesses."""
        return Trace(
            addresses=self.addresses[:n],
            writes=self.writes[:n],
            thread_ids=self.thread_ids[:n],
            gaps=self.gaps[:n],
            name=self.name,
        )

    def _select(self, mask: np.ndarray) -> "Trace":
        return Trace(
            addresses=self.addresses[mask],
            writes=self.writes[mask],
            thread_ids=self.thread_ids[mask],
            gaps=self.gaps[mask],
            name=self.name,
        )

    # -- spilling -----------------------------------------------------------

    def spill(self, directory: str, prefix: str = "trace") -> "TraceSpill":
        """Write the four columns as ``.npy`` files; return the handle.

        The handle is a small picklable key (paths only) that worker
        processes can :meth:`~TraceSpill.load` back as read-only memory
        maps — the columns are shared through the page cache instead of
        being pickled through the pool pipe once per worker.
        """
        paths = {}
        for column in ("addresses", "writes", "thread_ids", "gaps"):
            path = os.path.join(directory, f"{prefix}.{column}.npy")
            np.save(path, getattr(self, column))
            paths[column + "_path"] = path
        return TraceSpill(name=self.name, **paths)

    # -- scalar access ------------------------------------------------------

    def __getitem__(self, index: int) -> MemoryAccess:
        return MemoryAccess(
            address=int(self.addresses[index]),
            access_type=AccessType.WRITE if self.writes[index] else AccessType.READ,
            thread_id=int(self.thread_ids[index]),
            gap=int(self.gaps[index]),
        )

    def __iter__(self) -> Iterator[MemoryAccess]:
        for i in range(len(self)):
            yield self[i]


@dataclass(frozen=True)
class TraceSpill:
    """Picklable handle to a trace spilled as per-column ``.npy`` files.

    Produced by :meth:`Trace.spill`; :meth:`load` maps the columns back
    read-only (``mmap_mode="r"``), so every process loading the same
    handle shares one page-cache copy of the data.  The files must
    outlive every loaded view — the spilling side owns their lifetime
    (the experiment layer uses a temporary directory scoped to the
    sweep).
    """

    addresses_path: str
    writes_path: str
    thread_ids_path: str
    gaps_path: str
    name: str = ""

    def load(self) -> Trace:
        """Map the spilled columns back as a read-only trace.

        Loading never copies: the columns are saved with their final
        dtypes, so the trace constructor's dtype coercion is a no-op
        view over the memory map.
        """
        try:
            return Trace(
                addresses=np.load(self.addresses_path, mmap_mode="r"),
                writes=np.load(self.writes_path, mmap_mode="r"),
                thread_ids=np.load(self.thread_ids_path, mmap_mode="r"),
                gaps=np.load(self.gaps_path, mmap_mode="r"),
                name=self.name,
            )
        except OSError as error:
            raise TraceError(f"cannot load spilled trace: {error}") from None


def interleave_threads(per_thread: Sequence[Trace], name: str = "") -> Trace:
    """Round-robin interleave per-thread traces into one program order.

    Thread ids are reassigned by position in ``per_thread``.  The
    interleaving is the canonical order the simulator's round-robin core
    stepping would produce for balanced threads.
    """
    if not per_thread:
        return Trace.empty(name)
    lengths = [len(t) for t in per_thread]
    total = sum(lengths)
    addresses = np.empty(total, dtype=np.uint64)
    writes = np.empty(total, dtype=bool)
    thread_ids = np.empty(total, dtype=np.uint16)
    gaps = np.empty(total, dtype=np.uint32)

    # Merged-order slot of each per-thread access: round-robin over the
    # threads that still have accesses left.
    slots: List[List[int]] = [[] for _ in per_thread]
    cursors = [0] * len(per_thread)
    remaining = total
    position = 0
    slot = 0
    while remaining:
        tid = position % len(per_thread)
        if cursors[tid] < lengths[tid]:
            slots[tid].append(slot)
            cursors[tid] += 1
            slot += 1
            remaining -= 1
        position += 1

    for tid, trace in enumerate(per_thread):
        index = np.array(slots[tid], dtype=np.int64)
        addresses[index] = trace.addresses
        writes[index] = trace.writes
        thread_ids[index] = tid
        gaps[index] = trace.gaps
    return Trace(addresses, writes, thread_ids, gaps, name=name)
