"""Synthetic address-stream primitives.

Building blocks used by :mod:`repro.workloads.generators` to compose
per-benchmark traces with controllable memory-behaviour features:

- *footprint* is set by region sizes,
- *global entropy* by the skew of the page-popularity distribution,
- *local entropy* by the spread of offsets within a page,
- *mpki* emerges from footprint relative to the cache hierarchy,
- the read/write mix and instruction gaps are explicit parameters.

All samplers are vectorised over numpy and driven by a caller-supplied
:class:`numpy.random.Generator`, so traces are reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.stream import Trace

#: Page size used for locality structure (matches the profiler's M=10).
PAGE_BYTES = 1024

#: Word size: synthetic addresses are word-aligned.
WORD_BYTES = 8

AddressSampler = Callable[[np.random.Generator, int], np.ndarray]


def zipf_weights(n_items: int, skew: float) -> np.ndarray:
    """Normalised bounded-Zipf popularity weights over ``n_items`` ranks.

    ``skew=0`` is uniform; larger skews concentrate probability on the
    first ranks (hot pages), which lowers global entropy and shrinks the
    90% footprint relative to the unique footprint.
    """
    if n_items <= 0:
        raise TraceError("zipf_weights needs a positive item count")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-float(skew))
    return weights / weights.sum()


def pooled_sampler(
    base: int,
    n_pages: int,
    skew: float = 0.0,
    offsets_per_page: int = PAGE_BYTES // WORD_BYTES,
    permute_pages: bool = True,
) -> AddressSampler:
    """Sampler over a page pool with Zipf popularity.

    Each sample picks a page by popularity rank and a word offset inside
    it.  ``offsets_per_page`` controls intra-page spread: 1 pins every
    access to the page head (minimal local entropy), the default sweeps
    the whole page (maximal local entropy).
    """
    if n_pages <= 0:
        raise TraceError("pooled_sampler needs at least one page")
    if not 1 <= offsets_per_page <= PAGE_BYTES // WORD_BYTES:
        raise TraceError("offsets_per_page out of range")
    weights = zipf_weights(n_pages, skew)

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        pages = rng.choice(n_pages, size=count, p=weights)
        if permute_pages:
            # Map popularity rank -> scattered page index so hot pages are
            # not physically adjacent (keeps global entropy honest).
            permutation = np.random.RandomState(n_pages % (2**31)).permutation(n_pages)
            pages = permutation[pages]
        offsets = rng.integers(0, offsets_per_page, size=count)
        addresses = (
            np.uint64(base)
            + pages.astype(np.uint64) * np.uint64(PAGE_BYTES)
            + offsets.astype(np.uint64) * np.uint64(WORD_BYTES)
        )
        return addresses

    return sample


def strided_sampler(
    base: int,
    stride_bytes: int,
    region_bytes: int,
) -> AddressSampler:
    """Sequential streaming sampler: walks the region with a fixed stride,
    wrapping around — classic stencil/array-sweep behaviour (high unique
    footprint, low temporal reuse, low local entropy per page)."""
    if stride_bytes <= 0 or region_bytes < stride_bytes:
        raise TraceError("invalid stride/region for strided_sampler")
    steps = region_bytes // stride_bytes
    cursor = {"position": 0}

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        start = cursor["position"]
        indexes = (start + np.arange(count, dtype=np.uint64)) % np.uint64(steps)
        cursor["position"] = int((start + count) % steps)
        return np.uint64(base) + indexes * np.uint64(stride_bytes)

    return sample


def pointer_chase_sampler(
    base: int,
    region_bytes: int,
) -> AddressSampler:
    """Uniform random accesses over a region: a pointer-chasing / graph
    traversal pattern (maximal global and local entropy for its size)."""
    if region_bytes < WORD_BYTES:
        raise TraceError("region too small for pointer_chase_sampler")
    words = region_bytes // WORD_BYTES

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        offsets = rng.integers(0, words, size=count, dtype=np.uint64)
        return np.uint64(base) + offsets * np.uint64(WORD_BYTES)

    return sample


@dataclass(frozen=True)
class StreamComponent:
    """One weighted component of a synthetic access stream.

    Attributes
    ----------
    sampler:
        Address sampler for this component.
    weight:
        Relative share of accesses drawn from this component.
    write_fraction:
        Probability that a component access is a write.
    """

    sampler: AddressSampler
    weight: float
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise TraceError("component weight must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise TraceError("write_fraction must be in [0, 1]")


def compose_trace(
    rng: np.random.Generator,
    components: Sequence[StreamComponent],
    n_accesses: int,
    mean_gap: float,
    n_threads: int = 1,
    name: str = "",
    shared_fraction: float = 0.0,
) -> Trace:
    """Compose a trace from weighted components.

    Parameters
    ----------
    rng:
        Source of randomness (seed it for reproducibility).
    components:
        Weighted address stream components.
    n_accesses:
        Total accesses to generate.
    mean_gap:
        Mean non-memory instructions between accesses (geometric).
    n_threads:
        Accesses are dealt round-robin to this many threads.
    name:
        Trace label.
    shared_fraction:
        For multi-threaded traces, the fraction of accesses redirected
        to a common shared region (models true sharing/communication).
    """
    if n_accesses <= 0:
        raise TraceError("n_accesses must be positive")
    if not components:
        raise TraceError("compose_trace needs at least one component")
    if mean_gap < 0:
        raise TraceError("mean_gap must be nonnegative")
    if not 0.0 <= shared_fraction <= 1.0:
        raise TraceError("shared_fraction must be in [0, 1]")

    weights = np.array([c.weight for c in components], dtype=np.float64)
    weights /= weights.sum()
    choice = rng.choice(len(components), size=n_accesses, p=weights)

    addresses = np.zeros(n_accesses, dtype=np.uint64)
    writes = np.zeros(n_accesses, dtype=bool)
    for index, component in enumerate(components):
        mask = choice == index
        count = int(mask.sum())
        if count == 0:
            continue
        addresses[mask] = component.sampler(rng, count)
        writes[mask] = rng.random(count) < component.write_fraction

    thread_ids = (np.arange(n_accesses) % max(1, n_threads)).astype(np.uint16)
    if n_threads > 1:
        # Give each thread a private offset so per-thread working sets are
        # disjoint except for an explicit shared region.
        private_stripe = np.uint64(1) << np.uint64(36)
        addresses = addresses + thread_ids.astype(np.uint64) * private_stripe
        if shared_fraction > 0.0:
            shared_mask = rng.random(n_accesses) < shared_fraction
            addresses[shared_mask] %= private_stripe

    if mean_gap == 0:
        gaps = np.zeros(n_accesses, dtype=np.uint32)
    else:
        gaps = rng.geometric(1.0 / (1.0 + mean_gap), size=n_accesses) - 1
        gaps = gaps.astype(np.uint32)

    return Trace(addresses, writes, thread_ids, gaps, name=name)
