"""Memory trace representation and synthetic stream primitives."""

from repro.trace.access import (
    BLOCK_BITS,
    BLOCK_BYTES,
    AccessType,
    MemoryAccess,
    block_of,
)
from repro.trace.io import dump_text, load_npz, parse_text, save_npz
from repro.trace.stream import Trace, interleave_threads
from repro.trace.synth import (
    PAGE_BYTES,
    WORD_BYTES,
    StreamComponent,
    compose_trace,
    pointer_chase_sampler,
    pooled_sampler,
    strided_sampler,
    zipf_weights,
)

__all__ = [
    "BLOCK_BITS",
    "BLOCK_BYTES",
    "AccessType",
    "MemoryAccess",
    "block_of",
    "dump_text",
    "load_npz",
    "parse_text",
    "save_npz",
    "Trace",
    "interleave_threads",
    "PAGE_BYTES",
    "WORD_BYTES",
    "StreamComponent",
    "compose_trace",
    "pointer_chase_sampler",
    "pooled_sampler",
    "strided_sampler",
    "zipf_weights",
]
