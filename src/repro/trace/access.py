"""Memory access primitives.

A trace is a sequence of data-memory accesses, each an address, a
read/write direction, an issuing thread, and the count of non-memory
instructions executed since the previous access (so instruction counts —
and therefore mpki — can be recovered from a trace).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Cache block size used throughout the reproduction (paper Table IV).
BLOCK_BYTES = 64

#: log2 of the block size — low bits dropped for block addresses.
BLOCK_BITS = 6


class AccessType(enum.Enum):
    """Direction of a memory access."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        """True for writes."""
        return self is AccessType.WRITE


@dataclass(frozen=True)
class MemoryAccess:
    """One memory access (scalar view; traces store columns, not rows).

    Attributes
    ----------
    address:
        Virtual byte address.
    access_type:
        Read or write.
    thread_id:
        Issuing thread (0-based).
    gap:
        Non-memory instructions executed since the previous access on
        the same thread.
    """

    address: int
    access_type: AccessType
    thread_id: int = 0
    gap: int = 0

    @property
    def is_write(self) -> bool:
        """True for writes."""
        return self.access_type.is_write

    @property
    def block_address(self) -> int:
        """Cache-block address (byte address with block offset dropped)."""
        return self.address >> BLOCK_BITS


def block_of(address: int) -> int:
    """Cache-block address of a byte address."""
    return address >> BLOCK_BITS
