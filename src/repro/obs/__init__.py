"""repro.obs — run telemetry, tracing and provenance.

Four small pieces, deliberately dependency-free (stdlib only, nothing
imported from the layers it observes):

- :mod:`repro.obs.metrics` — process-safe :class:`MetricsRegistry`
  (counters, gauges, timer histograms, nested spans) behind module-level
  helpers that no-op when no registry is installed;
- :mod:`repro.obs.manifest` — ``manifest.json`` + ``metrics.json``
  writers/loaders giving every instrumented run a provenance record
  (config digest, seed, engine/cache/jobs settings, package version,
  per-stage timings);
- :mod:`repro.obs.report` — the ``repro-experiments metrics-summary``
  renderer;
- :mod:`repro.obs.progress` — a live progress line for long sweeps.

Switch collection on with ``repro-experiments --metrics`` (or
``REPRO_METRICS=1``), or programmatically::

    from repro import obs

    registry = obs.enable()
    ...              # any simulation / experiment work
    snap = registry.snapshot()
    obs.disable()

Instrumented layers: :mod:`repro.sim.hierarchy` /
:mod:`repro.sim.llc` (replay events per engine),
:mod:`repro.sim.replay_cache` (hit/miss/corrupt/bytes),
:mod:`repro.sim.parallel` (per-worker cell timings merged across the
pool boundary), :mod:`repro.experiments` (per-experiment spans) and
:mod:`repro.nvsim.sweep` (model generation).
"""

from repro.obs.metrics import (
    METRICS_ENV,
    TRACE_FILE_ENV,
    MetricsRegistry,
    TimerStats,
    counter_add,
    disable,
    enable,
    enabled,
    gauge_set,
    get_registry,
    merge_snapshot,
    metrics_env_enabled,
    scoped_registry,
    span,
    timer_record,
)
from repro.obs.manifest import (
    MANIFEST_NAME,
    METRICS_NAME,
    build_manifest,
    config_digest,
    load_manifest,
    load_metrics,
    load_run,
    validate_manifest,
    write_run_files,
)
from repro.obs.progress import ProgressLine
from repro.obs.report import render_summary

__all__ = [
    "METRICS_ENV",
    "TRACE_FILE_ENV",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "MetricsRegistry",
    "TimerStats",
    "ProgressLine",
    "build_manifest",
    "config_digest",
    "counter_add",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get_registry",
    "load_manifest",
    "load_metrics",
    "load_run",
    "merge_snapshot",
    "metrics_env_enabled",
    "render_summary",
    "scoped_registry",
    "span",
    "timer_record",
    "validate_manifest",
    "write_run_files",
]
