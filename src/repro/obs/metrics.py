"""Process-safe run metrics: counters, gauges, timer histograms, spans.

One :class:`MetricsRegistry` describes one run (or one worker's share of
a run).  Everything it records is held in plain dicts and lists so a
registry :meth:`~MetricsRegistry.snapshot` is a picklable, JSON-ready
value that crosses process boundaries untouched; the parent folds worker
snapshots back in with :meth:`~MetricsRegistry.merge_snapshot`
(:mod:`repro.sim.parallel` does this for every pool cell).

Instrumentation goes through the module-level helpers —
:func:`counter_add`, :func:`gauge_set`, :func:`timer_record`,
:func:`span` — which no-op against a single ``None`` check while no
registry is installed.  The instrumented call sites sit at *batch*
boundaries (once per replay, per cache probe, per sweep cell), never
inside per-access loops, so the cost with metrics enabled is a few
dictionary updates per replay and the cost with metrics disabled is one
global load per call site (the guard suite in
``tests/obs/test_overhead.py`` keeps it under 2% of a replay).

Merge semantics (the contract the parallel layer relies on):

- counters add;
- gauges last-write-wins (the merged snapshot's value replaces ours);
- timers combine count/total/min/max and add histogram buckets;
- spans concatenate, capped at :attr:`MetricsRegistry.max_spans`
  (drops are counted in the ``obs.spans_dropped`` counter, never
  silent).

Spans nest: ``span("a")`` inside ``span("b")`` records the path
``"b/a"``, and every completed span also feeds the timer histogram under
its plain name so repeated stages aggregate.  When the registry is given
a ``trace_path``, completed spans are additionally appended to that file
as JSON lines (one object per span — name, path, start, elapsed, pid).
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Any, Dict, List, Optional

#: Environment variable that switches metrics collection on ("1"/"true").
METRICS_ENV = "REPRO_METRICS"

#: Environment variable naming a JSONL span-trace file.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

#: Snapshot schema version (bump on incompatible snapshot changes).
SNAPSHOT_SCHEMA = 1


def metrics_env_enabled() -> bool:
    """Whether ``$REPRO_METRICS`` asks for metrics collection."""
    return os.environ.get(METRICS_ENV, "").strip().lower() in ("1", "true", "yes", "on")


class TimerStats:
    """Aggregate of one named timer: count/total/min/max + log2-ms histogram.

    The histogram buckets elapsed times by ``ceil(log2(milliseconds))``
    (bucket 0 holds everything up to 1 ms), which is coarse but enough
    to tell "many fast cells" from "one slow cell" in a summary.
    """

    __slots__ = ("count", "total_s", "min_s", "max_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0
        self.buckets: Dict[int, int] = {}

    def record(self, elapsed_s: float) -> None:
        """Fold one elapsed time into the aggregate."""
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        ms = elapsed_s * 1e3
        bucket = 0 if ms <= 1.0 else int(math.ceil(math.log2(ms)))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean_s(self) -> float:
        """Mean elapsed seconds (0.0 when empty)."""
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by snapshots and ``metrics.json``)."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def merge_dict(self, other: Dict[str, Any]) -> None:
        """Fold a snapshot'd timer into this aggregate."""
        if not other.get("count"):
            return
        self.count += int(other["count"])
        self.total_s += float(other["total_s"])
        self.min_s = min(self.min_s, float(other["min_s"]))
        self.max_s = max(self.max_s, float(other["max_s"]))
        for bucket, n in other.get("buckets", {}).items():
            bucket = int(bucket)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + int(n)


class _Span:
    """A live tracing span (context manager); created by ``registry.span``."""

    __slots__ = ("registry", "name", "path", "start_s", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self.path = ""
        self.start_s = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        registry = self.registry
        stack = registry._span_stack
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        self._t0 = time.perf_counter()
        self.start_s = self._t0 - registry._epoch_perf
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        registry = self.registry
        stack = registry._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        registry._complete_span(self, elapsed)
        return False


class _NullSpan:
    """Reusable no-op span for the disabled path (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Counters, gauges, timers and spans for one run (or worker).

    Parameters
    ----------
    trace_path:
        Optional JSONL file; every completed span (including spans merged
        in from worker snapshots) is appended as one JSON object.
    max_spans:
        Cap on retained span records; beyond it spans still feed their
        timer but the record is dropped and ``obs.spans_dropped`` counts
        the loss.
    """

    def __init__(
        self, trace_path: Optional[str] = None, max_spans: int = 20_000
    ) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerStats] = {}
        self.spans: List[Dict[str, Any]] = []
        self.max_spans = max_spans
        self.trace_path = trace_path
        self.pid = os.getpid()
        self._span_stack: List[_Span] = []
        self._epoch_perf = time.perf_counter()
        self._epoch_unix = time.time()
        self._trace_handle = None

    # -- recording --------------------------------------------------------

    def counter_add(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        """Set a gauge to its latest value."""
        self.gauges[name] = value

    def timer_record(self, name: str, elapsed_s: float) -> None:
        """Fold one elapsed time into a timer histogram."""
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = TimerStats()
        stats.record(elapsed_s)

    def span(self, name: str) -> _Span:
        """Open a nested tracing span (use as a context manager)."""
        return _Span(self, name)

    def _complete_span(self, span: _Span, elapsed_s: float) -> None:
        self.timer_record(span.name, elapsed_s)
        record = {
            "name": span.name,
            "path": span.path,
            "start_s": round(span.start_s, 6),
            "elapsed_s": round(elapsed_s, 6),
            "pid": self.pid,
        }
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        else:
            self.counter_add("obs.spans_dropped")
        self._trace_write(record)

    # -- JSONL trace ------------------------------------------------------

    def _trace_write(self, record: Dict[str, Any]) -> None:
        if self.trace_path is None:
            return
        if self._trace_handle is None:
            self._trace_handle = open(self.trace_path, "a", encoding="utf-8")
        self._trace_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._trace_handle.flush()

    def close(self) -> None:
        """Flush and close the JSONL trace handle, if any."""
        if self._trace_handle is not None:
            self._trace_handle.close()
            self._trace_handle = None

    # -- snapshot / merge -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict, picklable, JSON-ready copy of everything recorded."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "pid": self.pid,
            "epoch_unix": self._epoch_unix,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: t.as_dict() for name, t in self.timers.items()},
            "spans": list(self.spans),
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges take the snapshot's value, timers combine,
        spans concatenate (respecting ``max_spans``) and are re-emitted
        to this registry's JSONL trace so worker spans land in the
        parent's trace file.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter_add(name, value)
        self.gauges.update(snap.get("gauges", {}))
        for name, timer in snap.get("timers", {}).items():
            stats = self.timers.get(name)
            if stats is None:
                stats = self.timers[name] = TimerStats()
            stats.merge_dict(timer)
        for record in snap.get("spans", []):
            if len(self.spans) < self.max_spans:
                self.spans.append(record)
            else:
                self.counter_add("obs.spans_dropped")
            self._trace_write(record)


# -- module-level fast path -------------------------------------------------

_active: Optional[MetricsRegistry] = None


def enabled() -> bool:
    """Whether a registry is currently installed."""
    return _active is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or None when metrics are off."""
    return _active


def enable(
    registry: Optional[MetricsRegistry] = None, trace_path: Optional[str] = None
) -> MetricsRegistry:
    """Install a registry as the process-wide collection target."""
    global _active
    if registry is None:
        registry = MetricsRegistry(trace_path=trace_path)
    _active = registry
    return registry


def disable() -> None:
    """Remove the installed registry (instrumentation reverts to no-ops)."""
    global _active
    if _active is not None:
        _active.close()
    _active = None


class scoped_registry:
    """Context manager installing a fresh registry and restoring the
    previous one on exit — the worker-process pattern: collect into a
    clean registry, snapshot it, ship the snapshot home.

    >>> with scoped_registry() as registry:
    ...     counter_add("demo", 2)
    ...     registry.counters["demo"]
    2
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _active
        self._previous = _active
        _active = self.registry
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = self._previous
        self.registry.close()
        return False


def counter_add(name: str, value: float = 1) -> None:
    """Add to a counter on the installed registry (no-op when disabled)."""
    registry = _active
    if registry is not None:
        registry.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge on the installed registry (no-op when disabled)."""
    registry = _active
    if registry is not None:
        registry.gauge_set(name, value)


def timer_record(name: str, elapsed_s: float) -> None:
    """Record a timing on the installed registry (no-op when disabled)."""
    registry = _active
    if registry is not None:
        registry.timer_record(name, elapsed_s)


def span(name: str):
    """A tracing span on the installed registry (null span when disabled)."""
    registry = _active
    if registry is None:
        return _NULL_SPAN
    return registry.span(name)


def merge_snapshot(snap: Dict[str, Any]) -> None:
    """Merge a worker snapshot into the installed registry (no-op when
    disabled — the snapshot is simply discarded)."""
    registry = _active
    if registry is not None:
        registry.merge_snapshot(snap)
