"""Human-readable rendering of saved run metrics.

``repro-experiments metrics-summary RESULTS_DIR`` ends up in
:func:`render_summary`: given a metrics snapshot (and optionally its
manifest) it prints the run's provenance, headline rates (replay-cache
hit rate, engine share), per-stage/experiment spans, per-worker cell
timings, the timer histograms, and the raw counters — everything needed
to see where a sweep's wall-clock went without re-running it.

Kept free of imports from :mod:`repro.experiments` (which imports the
instrumented layers) so the reporting path can never create an import
cycle with the code it observes.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Timer-name prefix the parallel layer uses for per-worker cell timings.
WORKER_TIMER_PREFIX = "parallel.worker."


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal fixed-width table (left-aligned first column, right-aligned
    rest) — local so the obs layer stays import-cycle free."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        out = [cells[0].ljust(widths[0])]
        out += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(out).rstrip()

    text = [line(list(headers)), line(["-" * w for w in widths])]
    text.extend(line(row) for row in rows)
    return "\n".join(text)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _fmt_count(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{int(value):,}"


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    return numerator / denominator if denominator else None


def headline_rates(counters: Dict[str, float]) -> List[str]:
    """Derived one-line rates worth surfacing above the raw tables."""
    lines: List[str] = []
    hits = counters.get("replay_cache.hits", 0)
    misses = counters.get("replay_cache.misses", 0)
    rate = _ratio(hits, hits + misses)
    if rate is not None:
        lines.append(
            f"replay-cache hit rate: {rate:.1%} "
            f"({_fmt_count(hits)} hits / {_fmt_count(misses)} misses)"
        )
    corrupt = counters.get("replay_cache.corrupt", 0)
    if corrupt:
        lines.append(
            f"replay-cache corrupt entries quarantined + recomputed: "
            f"{_fmt_count(corrupt)}"
        )
    evictions = counters.get("replay_cache.evictions", 0)
    if evictions:
        evicted_mb = counters.get("replay_cache.evicted_bytes", 0) / (1024 * 1024)
        lines.append(
            f"replay-cache LRU evictions: {_fmt_count(evictions)} "
            f"({evicted_mb:.1f} MB freed)"
        )
    swept = counters.get("replay_cache.tmp_swept", 0)
    if swept:
        lines.append(f"replay-cache stale temp files swept: {_fmt_count(swept)}")
    skipped = counters.get("checkpoint.cells_skipped", 0)
    recorded = counters.get("checkpoint.cells_recorded", 0)
    if skipped or recorded:
        lines.append(
            f"checkpoint: {_fmt_count(skipped)} cells skipped (resumed), "
            f"{_fmt_count(recorded)} newly journaled"
        )
    corrupt_records = counters.get("checkpoint.corrupt_records", 0)
    if corrupt_records:
        lines.append(
            f"checkpoint records skipped as corrupt: {_fmt_count(corrupt_records)}"
        )
    faults = []
    for counter, label in (
        ("parallel.retries", "retries"),
        ("parallel.timeouts", "timeouts"),
        ("parallel.worker_failures", "worker failures"),
        ("parallel.pool_respawns", "pool respawns"),
        ("parallel.serial_fallback_cells", "serial-fallback cells"),
    ):
        value = counters.get(counter, 0)
        if value:
            faults.append(f"{_fmt_count(value)} {label}")
    if faults:
        lines.append("fault recovery: " + ", ".join(faults))
    # Engine mix per stage: accelerated share (fast + vector) over the
    # reference loop, with the per-engine breakdown alongside.
    for stage in ("private_replays", "llc_replays"):
        by_engine = {
            eng: counters.get(f"sim.engine.{eng}.{stage}", 0)
            for eng in ("fast", "vector", "reference")
        }
        total = sum(by_engine.values())
        accelerated = by_engine["fast"] + by_engine["vector"]
        share = _ratio(accelerated, total)
        if share is not None:
            breakdown = " / ".join(
                f"{_fmt_count(count)} {eng}"
                for eng, count in by_engine.items()
                if count
            )
            lines.append(
                f"{stage.replace('_', ' ')} served by accelerated engines: "
                f"{share:.1%} ({breakdown})"
            )
    llc_reads = counters.get("sim.llc.read_lookups", 0)
    llc_read_hits = counters.get("sim.llc.read_hits", 0)
    hit_rate = _ratio(llc_read_hits, llc_reads)
    if hit_rate is not None:
        lines.append(
            f"aggregate LLC demand hit rate: {hit_rate:.1%} "
            f"over {_fmt_count(llc_reads)} lookups"
        )
    return lines


def worker_rows(timers: Dict[str, Dict[str, Any]]) -> List[List[str]]:
    """Per-worker timing rows from ``parallel.worker.<pid>.cell`` timers."""
    rows = []
    for name in sorted(timers):
        if not name.startswith(WORKER_TIMER_PREFIX):
            continue
        worker = name[len(WORKER_TIMER_PREFIX):].rsplit(".", 1)[0]
        t = timers[name]
        count = t.get("count", 0)
        total = t.get("total_s", 0.0)
        rows.append(
            [
                worker,
                _fmt_count(count),
                _fmt_s(total),
                _fmt_s(total / count if count else 0.0),
                _fmt_s(t.get("max_s", 0.0)),
            ]
        )
    return rows


def span_rows(
    spans: List[Dict[str, Any]], max_depth: int = 2, limit: int = 60
) -> List[List[str]]:
    """Span records as indented rows in start order (grouped by process),
    depth-capped."""
    rows = []
    shown = 0
    ordered = sorted(
        spans, key=lambda r: (r.get("pid", 0), r.get("start_s", 0.0))
    )
    for record in ordered:
        depth = record.get("path", "").count("/")
        if depth >= max_depth:
            continue
        if shown >= limit:
            rows.append([f"... {len(spans) - shown} more spans", "", ""])
            break
        indent = "  " * depth
        rows.append(
            [
                f"{indent}{record.get('name', '?')}",
                _fmt_s(record.get("elapsed_s", 0.0)),
                str(record.get("pid", "")),
            ]
        )
        shown += 1
    return rows


def render_summary(
    metrics: Dict[str, Any], manifest: Optional[Dict[str, Any]] = None
) -> str:
    """Render a metrics snapshot (+ optional manifest) as readable text."""
    sections: List[str] = []

    if manifest is not None:
        settings = manifest.get("settings", {})
        created = manifest.get("created_unix")
        when = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created))
            if created
            else "?"
        )
        lines = [
            f"run: repro {manifest.get('version', '?')} on "
            f"python {manifest.get('python', '?')}  ({when})",
            f"config digest: {manifest.get('config_digest', '?')}",
            "settings: "
            + ", ".join(f"{k}={settings[k]}" for k in sorted(settings)),
        ]
        resume = manifest.get("resume")
        if resume is not None:
            source = resume.get("resumed_from")
            lines.append(
                ("resumed from " + str(source) if source else "checkpointed run")
                + f": {resume.get('cells_skipped', 0)} cells skipped, "
                f"{resume.get('cells_recorded', 0)} newly journaled"
            )
        stages = manifest.get("stages", [])
        if stages:
            lines.append("stages:")
            lines.append(
                _table(
                    ["stage", "count", "total", "max"],
                    [
                        [s["name"], str(s["count"]), _fmt_s(s["total_s"]),
                         _fmt_s(s["max_s"])]
                        for s in stages
                    ],
                )
            )
        sections.append("\n".join(lines))

    counters = metrics.get("counters", {})
    rates = headline_rates(counters)
    if rates:
        sections.append("\n".join(rates))

    spans = metrics.get("spans", [])
    if spans:
        sections.append(
            "spans (outermost levels):\n"
            + _table(["span", "elapsed", "pid"], span_rows(spans))
        )

    timers = metrics.get("timers", {})
    workers = worker_rows(timers)
    if workers:
        sections.append(
            "per-worker cell timings:\n"
            + _table(["worker", "cells", "total", "mean", "max"], workers)
        )

    if timers:
        rows = [
            [
                name,
                _fmt_count(t.get("count", 0)),
                _fmt_s(t.get("total_s", 0.0)),
                _fmt_s(
                    t.get("total_s", 0.0) / t["count"] if t.get("count") else 0.0
                ),
                _fmt_s(t.get("min_s", 0.0)),
                _fmt_s(t.get("max_s", 0.0)),
            ]
            for name, t in sorted(timers.items())
        ]
        sections.append(
            "timers:\n"
            + _table(["timer", "count", "total", "mean", "min", "max"], rows)
        )

    if counters:
        rows = [[name, _fmt_count(value)] for name, value in sorted(counters.items())]
        sections.append("counters:\n" + _table(["counter", "value"], rows))

    if gauges := metrics.get("gauges", {}):
        rows = [[name, _fmt_count(value)] for name, value in sorted(gauges.items())]
        sections.append("gauges:\n" + _table(["gauge", "value"], rows))

    if not sections:
        return "no metrics recorded\n"
    return ("\n\n".join(sections)) + "\n"
