"""Live single-line progress for long sweeps.

A :class:`ProgressLine` rewrites one terminal line (``\\r``) as work
advances — experiments in the runner, cells in a fan-out — and erases
itself when done, so captured output (CI logs, ``--write`` reports,
tests) is untouched: the line is emitted only when the target stream is
an interactive terminal, and everything it prints stays off stdout.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressLine:
    """One rewritable status line on an interactive stream.

    Parameters
    ----------
    total:
        Expected number of :meth:`tick` steps (0 = unknown; ticks then
        render as a bare count).
    label:
        Short noun for the units being counted (``"cells"``,
        ``"experiments"``).
    stream:
        Target stream; defaults to ``sys.stderr``.
    enabled:
        Force on/off; defaults to ``stream.isatty()`` so non-interactive
        runs stay clean.
    min_interval_s:
        Redraw rate limit (terminal writes are not free).
    """

    def __init__(
        self,
        total: int = 0,
        label: str = "steps",
        stream: Optional[TextIO] = None,
        enabled: Optional[bool] = None,
        min_interval_s: float = 0.1,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.min_interval_s = min_interval_s
        self.done_count = 0
        self._started = time.perf_counter()
        self._last_draw = 0.0
        self._last_width = 0

    def update(self, text: str) -> None:
        """Replace the line with ``text`` (rate-limited)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        if now - self._last_draw < self.min_interval_s:
            return
        self._last_draw = now
        pad = max(0, self._last_width - len(text))
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()
        self._last_width = len(text)

    def tick(self, detail: str = "") -> None:
        """Advance one step and redraw."""
        self.done_count += 1
        elapsed = time.perf_counter() - self._started
        position = (
            f"{self.done_count}/{self.total}" if self.total else str(self.done_count)
        )
        text = f"[{position} {self.label}, {elapsed:.1f}s]"
        if detail:
            text += f" {detail}"
        # tick() bypasses the rate limit bookkeeping via update()'s clock;
        # for coarse steps every redraw matters.
        self._last_draw = 0.0
        self.update(text)

    def close(self) -> None:
        """Erase the line (leave the terminal as if nothing was drawn)."""
        if not self.enabled or self._last_width == 0:
            return
        self.stream.write("\r" + " " * self._last_width + "\r")
        self.stream.flush()
        self._last_width = 0

    def __enter__(self) -> "ProgressLine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
