"""Run manifests: provenance written beside every instrumented run.

A run that collects metrics drops two files next to its results:

- ``manifest.json`` — *what ran*: package version, python/platform,
  creation time, the run settings (scale, seed, engine, cache
  configuration, jobs, …), a stable :func:`config_digest` of those
  settings, and per-stage wall-clock timings derived from the top-level
  spans;
- ``metrics.json`` — *what happened*: the full
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (counters, gauges,
  timer histograms, span records).

``repro-experiments metrics-summary RESULTS_DIR`` reads the pair back
(:func:`load_run`) and renders them with :mod:`repro.obs.report`.  Both
files are plain JSON so external tooling — notebooks, dashboards, diff
scripts — can consume them without importing this package.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

#: File names written beside a run's results.
MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.json"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1

#: Keys every manifest must carry (validated on load and in tests).
REQUIRED_MANIFEST_KEYS = (
    "schema",
    "package",
    "version",
    "python",
    "platform",
    "created_unix",
    "settings",
    "config_digest",
    "stages",
)


def config_digest(settings: Dict[str, Any]) -> str:
    """Stable hex digest of a settings mapping.

    Canonical JSON (sorted keys, no whitespace variance) hashed with
    blake2b, so two runs with identical settings — regardless of dict
    order or which process computed it — share a digest.

    >>> config_digest({"scale": 1.0, "seed": 42}) == config_digest(
    ...     {"seed": 42, "scale": 1.0})
    True
    """
    canonical = json.dumps(settings, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def stage_timings(snapshot: Dict[str, Any]) -> list:
    """Per-stage wall-clock record from a metrics snapshot.

    Top-level spans (``path == name``) aggregated by name — one entry
    per stage with its occurrence count and total/max elapsed time, in
    first-completion order.  Worker-side replay spans are top-level too
    (the enclosing experiment span lives in the parent process), so
    aggregation is what keeps a ``--jobs`` manifest readable.
    """
    stages: Dict[str, Dict[str, Any]] = {}
    for record in snapshot.get("spans", []):
        if record.get("path") != record.get("name"):
            continue
        entry = stages.setdefault(
            record["name"], {"name": record["name"], "count": 0,
                             "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += record["elapsed_s"]
        entry["max_s"] = max(entry["max_s"], record["elapsed_s"])
    return list(stages.values())


def build_manifest(
    settings: Dict[str, Any],
    snapshot: Optional[Dict[str, Any]] = None,
    resume: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict from run settings (+ optional metrics).

    ``resume`` records a checkpointed run's provenance — where it
    resumed from and how many cells were skipped vs newly journaled —
    as an optional top-level ``"resume"`` key (absent for
    uncheckpointed runs, so the required-key set is unchanged).
    """
    from repro import __version__

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created_unix": time.time(),
        "settings": dict(settings),
        "config_digest": config_digest(settings),
        "stages": stage_timings(snapshot) if snapshot else [],
    }
    if resume is not None:
        manifest["resume"] = dict(resume)
    return manifest


def validate_manifest(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """Check manifest shape; returns it unchanged or raises ReproError."""
    if not isinstance(manifest, dict):
        raise ReproError("manifest must be a JSON object")
    missing = [key for key in REQUIRED_MANIFEST_KEYS if key not in manifest]
    if missing:
        raise ReproError(f"manifest missing keys: {', '.join(missing)}")
    if manifest["schema"] != MANIFEST_SCHEMA:
        raise ReproError(
            f"manifest schema {manifest['schema']} unsupported "
            f"(expected {MANIFEST_SCHEMA})"
        )
    return manifest


def write_run_files(
    out_dir: Union[str, Path],
    settings: Dict[str, Any],
    registry: MetricsRegistry,
    resume: Optional[Dict[str, Any]] = None,
) -> Tuple[Path, Path]:
    """Write ``manifest.json`` + ``metrics.json`` into ``out_dir``.

    The directory is created if needed; returns the two paths.
    ``resume`` (see :func:`build_manifest`) records checkpoint/resume
    provenance for checkpointed runs.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    snapshot = registry.snapshot()
    manifest = build_manifest(settings, snapshot, resume=resume)
    manifest_path = out_dir / MANIFEST_NAME
    metrics_path = out_dir / METRICS_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    metrics_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return manifest_path, metrics_path


def _resolve(path: Union[str, Path], default_name: str) -> Path:
    path = Path(path)
    return path / default_name if path.is_dir() else path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate a manifest (accepts the file or its directory)."""
    path = _resolve(path, MANIFEST_NAME)
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(f"no manifest at {path}")
    except json.JSONDecodeError as error:
        raise ReproError(f"unreadable manifest {path}: {error}")
    return validate_manifest(manifest)


def load_metrics(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a metrics snapshot (accepts the file or its directory)."""
    path = _resolve(path, METRICS_NAME)
    try:
        snapshot = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(f"no metrics file at {path}")
    except json.JSONDecodeError as error:
        raise ReproError(f"unreadable metrics file {path}: {error}")
    if not isinstance(snapshot, dict) or "counters" not in snapshot:
        raise ReproError(f"{path} is not a metrics snapshot")
    return snapshot


def load_run(
    path: Union[str, Path]
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Load (metrics, manifest-or-None) for a results directory or a
    direct ``metrics.json`` path — what ``metrics-summary`` consumes."""
    path = Path(path)
    directory = path if path.is_dir() else path.parent
    metrics = load_metrics(path if not path.is_dir() else directory)
    try:
        manifest = load_manifest(directory)
    except ReproError:
        manifest = None
    return metrics, manifest
