"""Compressed NVM LLC: compacted ways over per-line size classes.

The L2C2 follow-ups to the source paper (Escuin et al.,
arXiv:2204.09504 and the forecasting companion arXiv:2204.03512)
compress last-level cache lines so several share the physical ways of a
set — *compacted ways* — which grows effective capacity, and program
only the compressed bytes on every write, which cuts both write energy
and per-cell wear.  This module models that design on top of the
technique replay engine:

- :class:`CompactedWayCache` — a set-associative LRU cache whose sets
  hold lines by **byte budget** (``associativity * block_bytes``, the
  physical data array) up to a **tag budget**
  (``tag_factor * associativity``, the extra tags the compacted design
  provisions).  With every line at full size it degenerates to exactly
  the baseline :class:`~repro.sim.cache.SetAssocCache` semantics.
- :class:`CompressedLLC` — the :class:`~repro.techniques.base.Technique`
  wiring: per-line compressed sizes from the workload's
  :class:`~repro.workloads.profiles.CompressibilityProfile` (or any
  size function), write energy scaled to bytes actually written, and
  optional composition with early write termination (fewer-bit writes
  and redundant-bit termination multiply) and set-rotation leveling.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CompressionError
from repro.techniques.base import Technique
from repro.techniques.early_write_termination import EarlyWriteTermination

#: Environment override for the compacted-way tag provisioning factor.
TAG_FACTOR_ENV = "REPRO_COMPRESS_TAG_FACTOR"

#: Default tag provisioning: twice the physical ways, L2C2's choice.
DEFAULT_TAG_FACTOR = 2

#: The physical bound any compressed-size model must respect: at least
#: one eighth of the line (ratio <= 8, the smallest SIZE_CLASSES entry).
MAX_RATIO = 8.0


def resolve_tag_factor(explicit: Optional[int] = None) -> int:
    """The compacted-way tag factor: argument, else env, else default."""
    if explicit is None:
        raw = os.environ.get(TAG_FACTOR_ENV, "").strip()
        if not raw:
            return DEFAULT_TAG_FACTOR
        try:
            explicit = int(raw)
        except ValueError:
            raise CompressionError(
                f"{TAG_FACTOR_ENV} must be an integer, got {raw!r}"
            )
    if explicit < 1:
        raise CompressionError(
            f"tag factor must be at least 1, got {explicit}"
        )
    return explicit


@dataclass(frozen=True)
class CompactedOutcome:
    """Result of one compacted-cache access.

    Unlike the baseline cache, one miss can evict *several* dirty lines
    (a full-size fill may displace many compressed residents), so the
    victims come back as a tuple.
    """

    hit: bool
    dirty_victims: Tuple[int, ...]


class CompactedWayCache:
    """Byte-budget set-associative LRU cache (compacted ways).

    Each set stores lines in LRU order; a resident line occupies its
    compressed size.  A miss inserts the new line and evicts LRU lines
    until both budgets hold: resident bytes within the physical array
    (``associativity * block_bytes``) and resident tags within the
    provisioned tag array (``tag_factor * associativity``).

    Replacement semantics deliberately mirror
    :class:`~repro.sim.cache.SetAssocCache`: hits refresh recency and
    keep the dirty bit sticky; misses install with the access's write
    flag.  When every line is full-size the byte budget admits exactly
    ``associativity`` lines and the eviction loop removes exactly one
    LRU victim per conflict miss — bit-identical to the baseline, which
    is what makes compression ratio 1.0 a no-op.
    """

    #: Replay engines pass per-line sizes to :meth:`access`.
    SIZE_AWARE = True

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int,
        associativity: int,
        tag_factor: Optional[int] = None,
    ) -> None:
        if capacity_bytes % (block_bytes * associativity):
            raise CompressionError("capacity must be a whole number of sets")
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_sets = capacity_bytes // (block_bytes * associativity)
        if self.n_sets <= 0:
            raise CompressionError("cache must have at least one set")
        self.tag_factor = resolve_tag_factor(tag_factor)
        self.byte_budget = associativity * block_bytes
        self.tag_budget = self.tag_factor * associativity
        # Per set: insertion-ordered dict, tag -> [size_bytes, dirty].
        self._sets: List[Dict[int, List]] = [dict() for _ in range(self.n_sets)]
        self._occupied: List[int] = [0] * self.n_sets
        #: Running sum of resident-line counts, sampled once per access
        #: (divide by accesses for the measured mean effective lines).
        self.resident_line_samples = 0
        self.accesses = 0
        self.peak_lines = 0

    @property
    def capacity_bytes(self) -> int:
        """Physical data-array capacity."""
        return self.n_sets * self.byte_budget

    def _check_size(self, size: int) -> int:
        if not 0 < size <= self.block_bytes:
            raise CompressionError(
                f"compressed size {size} outside (0, {self.block_bytes}]"
            )
        return size

    def access(self, block: int, is_write: bool, size: int) -> CompactedOutcome:
        """Access one block whose compressed size is ``size`` bytes."""
        size = self._check_size(int(size))
        index = block % self.n_sets
        lines = self._sets[index]
        self.accesses += 1
        entry = lines.get(block)
        if entry is not None:
            # Hit: refresh LRU position, dirty stays sticky.  The
            # stored size is kept — a line's compressibility is a
            # property of its data, stable across accesses.
            del lines[block]
            entry[1] = entry[1] or is_write
            lines[block] = entry
            self.resident_line_samples += len(lines)
            return CompactedOutcome(hit=True, dirty_victims=())
        victims = []
        while lines and (
            self._occupied[index] + size > self.byte_budget
            or len(lines) >= self.tag_budget
        ):
            victim_tag = next(iter(lines))
            victim_size, victim_dirty = lines.pop(victim_tag)
            self._occupied[index] -= victim_size
            if victim_dirty:
                victims.append(victim_tag)
        lines[block] = [size, is_write]
        self._occupied[index] += size
        self.resident_line_samples += len(lines)
        self.peak_lines = max(self.peak_lines, len(lines))
        return CompactedOutcome(hit=False, dirty_victims=tuple(victims))

    @property
    def mean_resident_lines(self) -> float:
        """Measured mean lines resident in the accessed set."""
        if self.accesses == 0:
            return 0.0
        return self.resident_line_samples / self.accesses


class CompressedLLC(Technique):
    """Compacted-way compressed LLC technique.

    Parameters
    ----------
    size_fn:
        Block address -> compressed size in bytes, in
        ``(0, block_bytes]``.  Use :meth:`for_workload` to build one
        from the workload's declared compressibility distribution, or
        :meth:`uniform` for a constant size (tests; ``uniform(64)`` is
        the ratio-1.0 baseline).
    tag_factor:
        Compacted tag provisioning (default 2x, ``REPRO_COMPRESS_TAG_FACTOR``).
    redundant_fraction:
        When given, compose with early write termination at this
        redundant-bit fraction: the per-byte write energy drops by the
        EWT factor *on top of* the fewer bytes written.
    leveling_period:
        When given, rotate the set mapping every ``leveling_period``
        data-array writes (the wear-leveling interaction; same scheme as
        :class:`~repro.techniques.wear_leveling.SetRotationLeveling`).
    """

    name = "compression"

    def __init__(
        self,
        size_fn: Callable[[int], int],
        tag_factor: Optional[int] = None,
        redundant_fraction: Optional[float] = None,
        leveling_period: Optional[int] = None,
    ) -> None:
        self._size_fn = size_fn
        self.tag_factor = resolve_tag_factor(tag_factor)
        self._ewt = (
            EarlyWriteTermination(redundant_fraction)
            if redundant_fraction is not None
            else None
        )
        if leveling_period is not None and leveling_period <= 0:
            raise CompressionError("leveling period must be positive")
        self.leveling_period = leveling_period
        self._writes_seen = 0
        self._offset = 0

    # -- construction ----------------------------------------------------

    @classmethod
    def for_workload(
        cls,
        benchmark: str,
        seed: Optional[int] = None,
        **kwargs,
    ) -> "CompressedLLC":
        """Build from the workload's declared compressibility model."""
        import numpy as np

        from repro.workloads.generators import (
            DEFAULT_SEED,
            line_compressed_sizes,
        )

        seed = DEFAULT_SEED if seed is None else seed
        cache: Dict[int, int] = {}

        def size_fn(block: int) -> int:
            size = cache.get(block)
            if size is None:
                size = int(
                    line_compressed_sizes(
                        np.array([block], dtype=np.uint64), benchmark, seed
                    )[0]
                )
                cache[block] = size
            return size

        return cls(size_fn, **kwargs)

    @classmethod
    def uniform(cls, size_bytes: int, **kwargs) -> "CompressedLLC":
        """Every line compresses to the same size (tests/ablations)."""
        return cls(lambda block: size_bytes, **kwargs)

    # -- Technique hooks -------------------------------------------------

    def line_size_bytes(self, block: int, block_bytes: int) -> int:
        size = int(self._size_fn(block))
        if not 0 < size <= block_bytes:
            raise CompressionError(
                f"size_fn returned {size} for block {block}, "
                f"outside (0, {block_bytes}]"
            )
        return size

    def make_cache(
        self, capacity_bytes: int, block_bytes: int, associativity: int
    ) -> CompactedWayCache:
        return CompactedWayCache(
            capacity_bytes, block_bytes, associativity, self.tag_factor
        )

    def map_set(self, block: int, n_sets: int) -> int:
        return (block + self._offset) % n_sets

    def observe_write(self, block: int) -> None:
        if self.leveling_period is None:
            return
        self._writes_seen += 1
        if self._writes_seen % self.leveling_period == 0:
            self._offset += 1

    def write_energy_factor(self) -> float:
        return self._ewt.write_energy_factor() if self._ewt else 1.0

    def write_latency_factor(self) -> float:
        return self._ewt.write_latency_factor() if self._ewt else 1.0
