"""Way-partitioned hybrid SRAM/NVM LLC (paper ref [7]'s family).

The adaptive-placement literature the paper cites (Wang et al., HPCA'14)
splits each LLC set into a few SRAM ways and many NVM ways: write-hot
blocks live in SRAM (fast, symmetric, wear-free), read-mostly capacity
lives in NVM (dense, low leakage).  This module implements the static
way-partitioned variant with write-triggered placement:

- writebacks allocate into the SRAM ways;
- demand fills allocate into the NVM ways;
- a block written while resident in NVM migrates to SRAM (one extra
  SRAM write), vacating its NVM frame.

The replay reports the split of data-array writes between the two
regions, the energy/leakage blend, and the NVM wear reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.nvsim.model import LLCModel
from repro.nvsim.published import sram_baseline
from repro.sim.hierarchy import LLCStream


@dataclass
class HybridCounts:
    """Event counts from a hybrid-LLC replay."""

    n_sets: int
    sram_ways: int
    nvm_ways: int
    read_hits: int = 0
    read_misses: int = 0
    write_accesses: int = 0
    dirty_evictions: int = 0
    sram_writes: int = 0
    nvm_writes: int = 0
    migrations: int = 0

    @property
    def total_data_writes(self) -> int:
        """Writes into either region's data array."""
        return self.sram_writes + self.nvm_writes

    @property
    def nvm_write_share(self) -> float:
        """Fraction of data-array writes absorbed by the NVM region."""
        total = self.total_data_writes
        return self.nvm_writes / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate."""
        lookups = self.read_hits + self.read_misses
        return self.read_misses / lookups if lookups else 0.0


class HybridLLC:
    """A set-associative LLC with per-set SRAM/NVM way partitions."""

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int,
        associativity: int,
        sram_ways: int,
    ) -> None:
        if not 0 < sram_ways < associativity:
            raise ConfigurationError(
                "sram_ways must leave at least one NVM way"
            )
        if capacity_bytes % (block_bytes * associativity):
            raise ConfigurationError("capacity must be a whole number of sets")
        self.associativity = associativity
        self.sram_ways = sram_ways
        self.nvm_ways = associativity - sram_ways
        self.n_sets = capacity_bytes // (block_bytes * associativity)
        # Per set, per region: tag -> dirty, insertion-ordered (LRU).
        self._sram: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self._nvm: List[Dict[int, bool]] = [dict() for _ in range(self.n_sets)]
        self.counts = HybridCounts(
            n_sets=self.n_sets, sram_ways=sram_ways, nvm_ways=self.nvm_ways
        )

    # -- internals -------------------------------------------------------

    def _touch(self, region: Dict[int, bool], block: int, dirty: bool) -> None:
        was_dirty = region.pop(block)
        region[block] = was_dirty or dirty

    def _insert(
        self, region: Dict[int, bool], ways: int, block: int, dirty: bool
    ) -> Optional[int]:
        victim: Optional[int] = None
        if len(region) >= ways:
            victim_tag = next(iter(region))
            victim_dirty = region.pop(victim_tag)
            if victim_dirty:
                victim = victim_tag
        region[block] = dirty
        return victim

    # -- accesses ----------------------------------------------------------

    def access(self, block: int, is_write: bool) -> None:
        """One LLC access under the hybrid placement policy."""
        index = block % self.n_sets
        sram = self._sram[index]
        nvm = self._nvm[index]
        counts = self.counts

        if is_write:
            counts.write_accesses += 1
            if block in sram:
                self._touch(sram, block, True)
                counts.sram_writes += 1
                return
            if block in nvm:
                # Write-triggered migration into SRAM.
                del nvm[block]
                counts.migrations += 1
                victim = self._insert(sram, self.sram_ways, block, True)
                counts.sram_writes += 1
                if victim is not None:
                    counts.dirty_evictions += 1
                return
            victim = self._insert(sram, self.sram_ways, block, True)
            counts.sram_writes += 1
            if victim is not None:
                counts.dirty_evictions += 1
            return

        # Demand read.
        if block in sram:
            self._touch(sram, block, False)
            counts.read_hits += 1
            return
        if block in nvm:
            self._touch(nvm, block, False)
            counts.read_hits += 1
            return
        counts.read_misses += 1
        victim = self._insert(nvm, self.nvm_ways, block, False)
        counts.nvm_writes += 1  # the fill programs NVM cells
        if victim is not None:
            counts.dirty_evictions += 1


@dataclass(frozen=True)
class HybridEvaluation:
    """Hybrid vs pure-NVM comparison for one stream and NVM model."""

    llc_name: str
    sram_ways: int
    counts: HybridCounts
    pure_nvm_writes: int
    hybrid_write_energy_j: float
    pure_write_energy_j: float
    hybrid_leakage_w: float
    pure_leakage_w: float

    @property
    def nvm_write_reduction(self) -> float:
        """Fraction of NVM data-array writes the hybrid removes."""
        if self.pure_nvm_writes == 0:
            return 0.0
        return 1.0 - self.counts.nvm_writes / self.pure_nvm_writes

    @property
    def write_energy_reduction(self) -> float:
        """Fraction of write energy removed."""
        if self.pure_write_energy_j == 0:
            return 0.0
        return 1.0 - self.hybrid_write_energy_j / self.pure_write_energy_j

    @property
    def leakage_increase(self) -> float:
        """Leakage multiplier the SRAM ways cost."""
        if self.pure_leakage_w == 0:
            return 0.0
        return self.hybrid_leakage_w / self.pure_leakage_w


def evaluate_hybrid(
    stream: LLCStream,
    nvm_model: LLCModel,
    sram_ways: int = 2,
    associativity: int = 16,
    block_bytes: int = 64,
) -> HybridEvaluation:
    """Replay a stream on the hybrid LLC and price it against pure NVM.

    The SRAM region's per-write energy and per-bit leakage come from
    the published SRAM baseline, prorated by the way split.
    """
    hybrid = HybridLLC(
        nvm_model.capacity_bytes, block_bytes, associativity, sram_ways
    )
    blocks = stream.blocks
    writes = stream.writes
    for i in range(len(stream)):
        hybrid.access(int(blocks[i]), bool(writes[i]))
    counts = hybrid.counts

    sram = sram_baseline("fixed-capacity")
    sram_fraction = sram_ways / associativity
    hybrid_write_energy = (
        counts.nvm_writes * nvm_model.write_energy_j
        + counts.sram_writes * sram.write_energy_j
    )
    pure_nvm_writes = counts.total_data_writes
    pure_write_energy = pure_nvm_writes * nvm_model.write_energy_j
    hybrid_leakage = (
        (1 - sram_fraction) * nvm_model.leakage_w
        + sram_fraction * sram.leakage_w
    )
    return HybridEvaluation(
        llc_name=nvm_model.name,
        sram_ways=sram_ways,
        counts=counts,
        pure_nvm_writes=pure_nvm_writes,
        hybrid_write_energy_j=hybrid_write_energy,
        pure_write_energy_j=pure_write_energy,
        hybrid_leakage_w=hybrid_leakage,
        pure_leakage_w=nvm_model.leakage_w,
    )
