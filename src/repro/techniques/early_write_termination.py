"""Early write termination (paper group 3, device level).

Zhou et al. (the paper's ref [19]) observe that most bits written back
to an NVM array already hold the target value; terminating those bit
writes early saves their programming energy and, with per-bit drivers,
part of the worst-case latency.  Traces carry no data values, so the
redundant-bit fraction is a model parameter with the literature's
typical value as the default — documented, auditable, and sweepable.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.techniques.base import Technique

#: Fraction of written bits that are redundant in typical workloads
#: (ref [19] reports ~85% of bit-writes are redundant on average).
DEFAULT_REDUNDANT_FRACTION = 0.85

#: Share of a write's energy that per-bit termination can actually
#: recover (drivers and charge pumps still burn the rest).
RECOVERABLE_ENERGY_SHARE = 0.9


class EarlyWriteTermination(Technique):
    """Terminate redundant bit-writes early."""

    name = "early-write-termination"

    def __init__(
        self, redundant_fraction: float = DEFAULT_REDUNDANT_FRACTION
    ) -> None:
        if not 0.0 <= redundant_fraction <= 1.0:
            raise ConfigurationError("redundant_fraction must be in [0, 1]")
        self.redundant_fraction = redundant_fraction

    def write_energy_factor(self) -> float:
        saved = RECOVERABLE_ENERGY_SHARE * self.redundant_fraction
        return 1.0 - saved

    def write_latency_factor(self) -> float:
        # The slowest *non-redundant* bit still sets the block latency;
        # only fully-redundant block writes finish early.  Model the
        # block-latency saving as the probability that every bit of a
        # (statistically independent) 512-bit block is redundant —
        # negligible except at extreme redundancy — plus a small driver
        # pipelining gain.
        if self.redundant_fraction >= 1.0:
            return 0.05  # verify-only pass
        return 1.0 - 0.1 * self.redundant_fraction
