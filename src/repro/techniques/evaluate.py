"""Technique evaluation: energy, traffic and lifetime vs the baseline.

Given a workload and an LLC model, replay the post-L2 stream with and
without a technique and report the deltas that matter for NVM adoption:
data-array write count, LLC dynamic write energy, DRAM write traffic,
and projected lifetime (via :mod:`repro.endurance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.endurance.lifetime import LifetimeEstimate, estimate_lifetime
from repro.errors import SimulationError
from repro.nvsim.model import LLCModel
from repro.sim.config import ArchitectureConfig, gainestown
from repro.sim.hierarchy import PrivateResult, filter_private
from repro.techniques.base import Technique
from repro.techniques.replay import TechniqueOutcome, replay_with_technique
from repro.trace.stream import Trace


@dataclass(frozen=True)
class TechniqueEvaluation:
    """Baseline-vs-technique comparison for one (workload, LLC) pair."""

    workload: str
    llc_name: str
    technique: str
    baseline: TechniqueOutcome
    treated: TechniqueOutcome
    baseline_lifetime: LifetimeEstimate
    treated_lifetime: LifetimeEstimate
    baseline_write_energy_j: float
    treated_write_energy_j: float

    @property
    def write_reduction(self) -> float:
        """Fraction of data-array writes removed by the technique."""
        base = self.baseline.wear.total_writes
        if base == 0:
            return 0.0
        return 1.0 - self.treated.wear.total_writes / base

    @property
    def energy_reduction(self) -> float:
        """Fraction of LLC write energy removed."""
        if self.baseline_write_energy_j == 0:
            return 0.0
        return 1.0 - self.treated_write_energy_j / self.baseline_write_energy_j

    @property
    def lifetime_gain(self) -> Optional[float]:
        """Unleveled-lifetime multiplier (None for unlimited classes).

        The underlying estimates are built with the replay outcome's
        *physical* frame count and per-cell write fraction, so the gain
        stays meaningful for capacity-changing techniques: compression
        holds more lines in the same frames and programs fewer cells
        per write, neither of which the historical fixed-line-count
        assumption could express.
        """
        a = self.baseline_lifetime.unleveled_years
        b = self.treated_lifetime.unleveled_years
        if a is None or b is None:
            return None
        return b / a if a else float("inf")

    @property
    def write_bytes_reduction(self) -> float:
        """Fraction of data-array bytes no longer programmed."""
        base = self.baseline.write_bytes
        if base == 0:
            return 0.0
        return 1.0 - self.treated.write_bytes / base

    @property
    def extra_dram_writes(self) -> int:
        """DRAM writes added (bypassed writebacks) minus removed."""
        return (
            self.treated.counts.dirty_evictions
            - self.baseline.counts.dirty_evictions
        )


def evaluate_technique(
    trace: Trace,
    llc_model: LLCModel,
    technique: Technique,
    arch: Optional[ArchitectureConfig] = None,
    window_s: float = 1e-3,
    private: Optional[PrivateResult] = None,
) -> TechniqueEvaluation:
    """Replay baseline and technique, price energy and lifetime.

    ``window_s`` is the wall-clock duration the replayed window is taken
    to represent when projecting lifetime (the simulated runtime of the
    window is the natural choice; callers with a SimResult should pass
    its ``runtime_s``).
    """
    if window_s <= 0:
        raise SimulationError("window_s must be positive")
    arch = arch or gainestown()
    if private is None:
        private = filter_private(trace, arch)

    baseline = replay_with_technique(
        private.stream,
        Technique(),
        llc_model.capacity_bytes,
        arch.llc_associativity,
        arch.llc_block_bytes,
        arch.n_cores,
    )
    treated = replay_with_technique(
        private.stream,
        technique,
        llc_model.capacity_bytes,
        arch.llc_associativity,
        arch.llc_block_bytes,
        arch.n_cores,
    )

    # Energy follows bytes actually programmed: write_bytes/block_bytes
    # is float-exact total_writes for full-size writes, and the
    # compressed fraction of a write for compacted lines.
    base_energy = (
        (baseline.write_bytes / baseline.block_bytes)
        * llc_model.write_energy_j
        * baseline.write_energy_factor
    )
    treated_energy = (
        (treated.write_bytes / treated.block_bytes)
        * llc_model.write_energy_j
        * treated.write_energy_factor
    )

    return TechniqueEvaluation(
        workload=trace.name or "trace",
        llc_name=llc_model.name,
        technique=technique.name,
        baseline=baseline,
        treated=treated,
        baseline_lifetime=estimate_lifetime(
            llc_model.name,
            llc_model.cell_class,
            baseline.wear,
            window_s,
            n_frames=baseline.n_frames or None,
            cell_write_fraction=baseline.write_bytes_fraction,
        ),
        treated_lifetime=estimate_lifetime(
            llc_model.name,
            llc_model.cell_class,
            treated.wear,
            window_s,
            n_frames=treated.n_frames or None,
            cell_write_fraction=treated.write_bytes_fraction,
        ),
        baseline_write_energy_j=base_energy,
        treated_write_energy_j=treated_energy,
    )


def evaluate_all(
    trace: Trace,
    llc_model: LLCModel,
    techniques: List[Technique],
    arch: Optional[ArchitectureConfig] = None,
    window_s: float = 1e-3,
) -> List[TechniqueEvaluation]:
    """Evaluate several techniques over one shared private replay."""
    arch = arch or gainestown()
    private = filter_private(trace, arch)
    return [
        evaluate_technique(
            trace, llc_model, technique, arch, window_s, private=private
        )
        for technique in techniques
    ]
