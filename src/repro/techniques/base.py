"""Technique interface for NVM-friendly LLC management.

The paper's Section I sorts prior NVM-LLC work into three groups:

1. existing architectural techniques adapted for NVMs (e.g. wear
   leveling [20]),
2. novel architectural techniques (e.g. cache bypassing [14,16,17,21]),
3. device-level techniques (e.g. relaxed/terminated writes [15,18,19,22,23]).

:class:`Technique` is the hook interface the technique replay engine
(:mod:`repro.techniques.replay`) drives; one concrete class per group
lives in this subpackage.  The default hooks are no-ops, so a bare
``Technique()`` reproduces the baseline LLC exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


class Technique:
    """Base class: a baseline LLC with no management technique."""

    #: Human-readable identifier used in evaluation tables.
    name = "baseline"

    def map_set(self, block: int, n_sets: int) -> int:
        """Physical set index for a block (wear leveling remaps here)."""
        return block % n_sets

    def should_bypass_write(self, block: int) -> bool:
        """Whether a writeback should skip the LLC and go to DRAM."""
        return False

    def observe_read(self, block: int) -> None:
        """Called on every demand read reaching the LLC (reuse hints)."""

    def observe_write(self, block: int) -> None:
        """Called on every data-array write that actually happens."""

    def write_energy_factor(self) -> float:
        """Multiplier on per-write dynamic energy (device techniques)."""
        return 1.0

    def write_latency_factor(self) -> float:
        """Multiplier on per-write latency (device techniques)."""
        return 1.0

    def line_size_bytes(self, block: int, block_bytes: int) -> int:
        """Bytes actually written when this block's line is programmed.

        Compression techniques return the line's compressed size; the
        default writes the full block.  The replay engine sums these
        into :attr:`~repro.techniques.replay.TechniqueOutcome.write_bytes`,
        which scales write energy and per-cell wear.
        """
        return block_bytes

    def make_cache(self, capacity_bytes: int, block_bytes: int, associativity: int):
        """The cache the replay engine should drive, or None.

        Capacity-changing techniques (compacted-way compression) return
        their own cache variant here; the default None means the plain
        :class:`~repro.sim.cache.SetAssocCache`, which keeps every
        pre-existing technique byte-identical to the baseline engine.
        """
        return None
