"""Writeback bypassing for low-reuse blocks (paper group 2).

A cache-bypass scheme in the spirit of the write-minimisation work the
paper cites ([14], [16], [17], [21]): a writeback whose block has not
been *read* recently is predicted dead and forwarded straight to DRAM
instead of being programmed into the NVM data array.  The predictor is
a bounded recency filter over demand-read blocks — cheap, conservative,
and wrong only in the direction of extra DRAM writes (never lost data).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.techniques.base import Technique


class ReuseWriteBypass(Technique):
    """Bypass writebacks whose block shows no recent read reuse."""

    name = "write-bypass"

    def __init__(self, filter_blocks: int = 8192) -> None:
        if filter_blocks <= 0:
            raise ConfigurationError("filter must hold at least one block")
        self.filter_blocks = filter_blocks
        # Insertion-ordered dict as a FIFO recency filter.
        self._recent_reads: Dict[int, None] = {}
        #: Writebacks sent around the LLC.
        self.bypassed = 0

    def observe_read(self, block: int) -> None:
        if block in self._recent_reads:
            del self._recent_reads[block]
        self._recent_reads[block] = None
        if len(self._recent_reads) > self.filter_blocks:
            oldest = next(iter(self._recent_reads))
            del self._recent_reads[oldest]

    def should_bypass_write(self, block: int) -> bool:
        bypass = block not in self._recent_reads
        if bypass:
            self.bypassed += 1
        return bypass
