"""NVM-friendly LLC management techniques (paper Section I's taxonomy).

One representative per group: :class:`SetRotationLeveling` (adapted
architectural), :class:`ReuseWriteBypass` (novel architectural) and
:class:`EarlyWriteTermination` (device level), evaluated against a
technique-free baseline on write count, energy, DRAM traffic and
projected lifetime.
"""

from repro.techniques.base import Technique
from repro.techniques.early_write_termination import (
    DEFAULT_REDUNDANT_FRACTION,
    EarlyWriteTermination,
)
from repro.techniques.evaluate import (
    TechniqueEvaluation,
    evaluate_all,
    evaluate_technique,
)
from repro.techniques.hybrid import (
    HybridCounts,
    HybridEvaluation,
    HybridLLC,
    evaluate_hybrid,
)
from repro.techniques.replay import TechniqueOutcome, replay_with_technique
from repro.techniques.wear_leveling import SetRotationLeveling
from repro.techniques.write_bypass import ReuseWriteBypass

__all__ = [
    "Technique",
    "DEFAULT_REDUNDANT_FRACTION",
    "EarlyWriteTermination",
    "TechniqueEvaluation",
    "evaluate_all",
    "evaluate_technique",
    "HybridCounts",
    "HybridEvaluation",
    "HybridLLC",
    "evaluate_hybrid",
    "TechniqueOutcome",
    "replay_with_technique",
    "SetRotationLeveling",
    "ReuseWriteBypass",
]
