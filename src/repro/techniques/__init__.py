"""NVM-friendly LLC management techniques (paper Section I's taxonomy).

One representative per group: :class:`SetRotationLeveling` (adapted
architectural), :class:`ReuseWriteBypass` (novel architectural) and
:class:`EarlyWriteTermination` (device level), evaluated against a
technique-free baseline on write count, energy, DRAM traffic and
projected lifetime.  :class:`CompressedLLC` adds the compacted-way
compression family from the L2C2 follow-up work (arXiv:2204.09504),
which changes *effective capacity* as well as per-write cost.
"""

from repro.techniques.base import Technique
from repro.techniques.compression import (
    DEFAULT_TAG_FACTOR,
    TAG_FACTOR_ENV,
    CompactedOutcome,
    CompactedWayCache,
    CompressedLLC,
    resolve_tag_factor,
)
from repro.techniques.early_write_termination import (
    DEFAULT_REDUNDANT_FRACTION,
    EarlyWriteTermination,
)
from repro.techniques.evaluate import (
    TechniqueEvaluation,
    evaluate_all,
    evaluate_technique,
)
from repro.techniques.hybrid import (
    HybridCounts,
    HybridEvaluation,
    HybridLLC,
    evaluate_hybrid,
)
from repro.techniques.replay import TechniqueOutcome, replay_with_technique
from repro.techniques.wear_leveling import SetRotationLeveling
from repro.techniques.write_bypass import ReuseWriteBypass

__all__ = [
    "Technique",
    "DEFAULT_TAG_FACTOR",
    "TAG_FACTOR_ENV",
    "CompactedOutcome",
    "CompactedWayCache",
    "CompressedLLC",
    "resolve_tag_factor",
    "DEFAULT_REDUNDANT_FRACTION",
    "EarlyWriteTermination",
    "TechniqueEvaluation",
    "evaluate_all",
    "evaluate_technique",
    "HybridCounts",
    "HybridEvaluation",
    "HybridLLC",
    "evaluate_hybrid",
    "TechniqueOutcome",
    "replay_with_technique",
    "SetRotationLeveling",
    "ReuseWriteBypass",
]
