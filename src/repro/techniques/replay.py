"""Technique-aware LLC replay.

Extends the plain LLC replay (:mod:`repro.sim.llc`) with the
:class:`~repro.techniques.base.Technique` hooks: set remapping (wear
leveling), writeback bypassing, and device-level energy/latency factors.
Also tracks the wear distribution so the endurance model can price each
technique's lifetime effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.cache import SetAssocCache
from repro.sim.hierarchy import LLCStream
from repro.sim.llc import LLCCounts
from repro.endurance.wear import WearSummary
from repro.techniques.base import Technique


@dataclass
class TechniqueOutcome:
    """Counts, wear, and technique side effects from one replay."""

    technique: str
    counts: LLCCounts
    wear: WearSummary
    bypassed_writes: int
    write_energy_factor: float
    write_latency_factor: float

    @property
    def extra_dram_writes(self) -> int:
        """Writebacks redirected to DRAM by bypassing."""
        return self.bypassed_writes


def replay_with_technique(
    stream: LLCStream,
    technique: Technique,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
    n_cores: int = 4,
) -> TechniqueOutcome:
    """Replay an LLC stream under a management technique.

    Set remapping is applied by translating each block to a synthetic
    block id whose set index is the technique's choice; rotation-style
    levelers therefore shift residency over time, which costs the same
    transition misses the real schemes pay.
    """
    cache = SetAssocCache(capacity_bytes, block_bytes, associativity)
    n_sets = cache.n_sets
    counts = LLCCounts(capacity_bytes=capacity_bytes, associativity=associativity)
    set_writes = np.zeros(n_sets, dtype=np.int64)
    line_writes: Dict[int, int] = {}
    total_writes = 0
    bypassed = 0

    read_hits = [0] * n_cores
    read_misses = [0] * n_cores

    blocks = stream.blocks
    writes = stream.writes
    cores = stream.cores

    for i in range(len(stream)):
        block = int(blocks[i])
        core = int(cores[i])
        mapped_set = technique.map_set(block, n_sets)
        # Same tag space, technique-chosen set: encode as a block id
        # whose modulo lands in the mapped set.
        mapped = (block // n_sets) * n_sets + mapped_set
        if bool(writes[i]):
            if technique.should_bypass_write(block):
                bypassed += 1
                counts.dirty_evictions += 1  # goes straight to DRAM
                continue
            outcome = cache.access(mapped, True)
            counts.write_accesses += 1
            if outcome.hit:
                counts.write_hits += 1
            else:
                counts.write_misses += 1
            if outcome.dirty_victim is not None:
                counts.dirty_evictions += 1
            technique.observe_write(block)
            total_writes += 1
            set_writes[mapped_set] += 1
            line_writes[mapped] = line_writes.get(mapped, 0) + 1
        else:
            technique.observe_read(block)
            outcome = cache.access(mapped, False)
            counts.read_lookups += 1
            if outcome.hit:
                counts.read_hits += 1
                read_hits[core] += 1
            else:
                counts.read_misses += 1
                read_misses[core] += 1
                # The demand fill programs the array too.
                technique.observe_write(block)
                total_writes += 1
                set_writes[mapped_set] += 1
                line_writes[mapped] = line_writes.get(mapped, 0) + 1
            if outcome.dirty_victim is not None:
                counts.dirty_evictions += 1

    counts.per_core_read_hits = read_hits
    counts.per_core_read_misses = read_misses
    counts.per_core_mlp = [1.0] * n_cores

    wear = WearSummary(
        n_sets=n_sets,
        associativity=associativity,
        total_writes=total_writes,
        set_writes=set_writes,
        hottest_line_writes=max(line_writes.values()) if line_writes else 0,
    )
    return TechniqueOutcome(
        technique=technique.name,
        counts=counts,
        wear=wear,
        bypassed_writes=bypassed,
        write_energy_factor=technique.write_energy_factor(),
        write_latency_factor=technique.write_latency_factor(),
    )
