"""Technique-aware LLC replay.

Extends the plain LLC replay (:mod:`repro.sim.llc`) with the
:class:`~repro.techniques.base.Technique` hooks: set remapping (wear
leveling), writeback bypassing, device-level energy/latency factors,
technique-supplied cache variants (compacted-way compression) and
per-line write sizing.  Also tracks the wear distribution so the
endurance model can price each technique's lifetime effect.

Invariants
----------
- A bare :class:`~repro.techniques.base.Technique` replays through the
  plain :class:`~repro.sim.cache.SetAssocCache` with full-size writes,
  reproducing the baseline LLC bit-for-bit (``write_bytes`` is exactly
  ``total_writes * block_bytes``).
- ``compressed_writes + uncompressed_writes == wear.total_writes``:
  every data-array write is classified by whether it programmed fewer
  bytes than the block (the count-sum invariant
  :func:`repro.validate.guard.guard_compression` pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.cache import SetAssocCache
from repro.sim.hierarchy import LLCStream
from repro.sim.llc import LLCCounts
from repro.endurance.wear import WearSummary
from repro.techniques.base import Technique


@dataclass
class TechniqueOutcome:
    """Counts, wear, and technique side effects from one replay.

    ``write_bytes`` is the number of data-array bytes actually
    programmed — ``total_writes * block_bytes`` for full-size writes,
    less under compression — and drives both the energy scaling and the
    per-cell wear fraction of the lifetime forecast.  ``n_frames`` is
    the physical frame count of the replayed geometry (sets × ways);
    capacity-changing techniques hold *more lines* in the same frames,
    never more frames.
    """

    technique: str
    counts: LLCCounts
    wear: WearSummary
    bypassed_writes: int
    write_energy_factor: float
    write_latency_factor: float
    block_bytes: int = 64
    write_bytes: int = 0
    compressed_writes: int = 0
    uncompressed_writes: int = 0
    n_frames: int = 0
    mean_resident_lines: float = 0.0

    @property
    def extra_dram_writes(self) -> int:
        """Writebacks redirected to DRAM by bypassing."""
        return self.bypassed_writes

    @property
    def write_bytes_fraction(self) -> float:
        """Bytes programmed over the full-size equivalent.

        1.0 means no compression; this is the ``cell_write_fraction``
        fed to the lifetime forecast and the ``write_energy_scale`` fed
        to pricing.
        """
        full = self.wear.total_writes * self.block_bytes
        if full == 0:
            return 1.0
        return self.write_bytes / full

    @property
    def effective_capacity_bytes(self) -> float:
        """Measured effective capacity: mean resident lines per set
        times the line size, across all sets."""
        return self.mean_resident_lines * self.wear.n_sets * self.block_bytes


def replay_with_technique(
    stream: LLCStream,
    technique: Technique,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
    n_cores: int = 4,
) -> TechniqueOutcome:
    """Replay an LLC stream under a management technique.

    Set remapping is applied by translating each block to a synthetic
    block id whose set index is the technique's choice; rotation-style
    levelers therefore shift residency over time, which costs the same
    transition misses the real schemes pay.

    The technique may supply its own cache variant via ``make_cache``
    (compacted-way compression does); caches declaring ``SIZE_AWARE``
    receive each access's compressed line size and may evict several
    dirty victims on one miss.
    """
    cache = technique.make_cache(capacity_bytes, block_bytes, associativity)
    if cache is None:
        cache = SetAssocCache(capacity_bytes, block_bytes, associativity)
    size_aware = bool(getattr(cache, "SIZE_AWARE", False))
    n_sets = cache.n_sets
    counts = LLCCounts(capacity_bytes=capacity_bytes, associativity=associativity)
    set_writes = np.zeros(n_sets, dtype=np.int64)
    line_writes: Dict[int, int] = {}
    total_writes = 0
    write_bytes = 0
    compressed_writes = 0
    bypassed = 0

    read_hits = [0] * n_cores
    read_misses = [0] * n_cores

    blocks = stream.blocks
    writes = stream.writes
    cores = stream.cores

    for i in range(len(stream)):
        block = int(blocks[i])
        core = int(cores[i])
        mapped_set = technique.map_set(block, n_sets)
        # Same tag space, technique-chosen set: encode as a block id
        # whose modulo lands in the mapped set.
        mapped = (block // n_sets) * n_sets + mapped_set
        # Sized from the TRUE block address: the mapped id shifts with
        # leveling rotation, but a line's compressibility must not.
        size = technique.line_size_bytes(block, block_bytes)
        if bool(writes[i]):
            if technique.should_bypass_write(block):
                bypassed += 1
                counts.dirty_evictions += 1  # goes straight to DRAM
                continue
            if size_aware:
                outcome = cache.access(mapped, True, size)
                counts.dirty_evictions += len(outcome.dirty_victims)
            else:
                outcome = cache.access(mapped, True)
                if outcome.dirty_victim is not None:
                    counts.dirty_evictions += 1
            counts.write_accesses += 1
            if outcome.hit:
                counts.write_hits += 1
            else:
                counts.write_misses += 1
            technique.observe_write(block)
            total_writes += 1
            write_bytes += size
            if size < block_bytes:
                compressed_writes += 1
            set_writes[mapped_set] += 1
            line_writes[mapped] = line_writes.get(mapped, 0) + 1
        else:
            technique.observe_read(block)
            if size_aware:
                outcome = cache.access(mapped, False, size)
                counts.dirty_evictions += len(outcome.dirty_victims)
            else:
                outcome = cache.access(mapped, False)
                if outcome.dirty_victim is not None:
                    counts.dirty_evictions += 1
            counts.read_lookups += 1
            if outcome.hit:
                counts.read_hits += 1
                read_hits[core] += 1
            else:
                counts.read_misses += 1
                read_misses[core] += 1
                # The demand fill programs the array too.
                technique.observe_write(block)
                total_writes += 1
                write_bytes += size
                if size < block_bytes:
                    compressed_writes += 1
                set_writes[mapped_set] += 1
                line_writes[mapped] = line_writes.get(mapped, 0) + 1

    counts.per_core_read_hits = read_hits
    counts.per_core_read_misses = read_misses
    counts.per_core_mlp = [1.0] * n_cores

    wear = WearSummary(
        n_sets=n_sets,
        associativity=associativity,
        total_writes=total_writes,
        set_writes=set_writes,
        hottest_line_writes=max(line_writes.values()) if line_writes else 0,
    )
    return TechniqueOutcome(
        technique=technique.name,
        counts=counts,
        wear=wear,
        bypassed_writes=bypassed,
        write_energy_factor=technique.write_energy_factor(),
        write_latency_factor=technique.write_latency_factor(),
        block_bytes=block_bytes,
        write_bytes=write_bytes,
        compressed_writes=compressed_writes,
        uncompressed_writes=total_writes - compressed_writes,
        n_frames=n_sets * associativity,
        mean_resident_lines=float(
            getattr(cache, "mean_resident_lines", associativity)
        ),
    )
