"""Wear leveling by periodic set-index rotation (paper group 1).

An intra-cache levelling scheme in the spirit of WriteSmoothing /
LastingNVCache (the paper's refs [20], [38]): every ``period`` data-array
writes the block-to-set mapping rotates by one set, so a write-hot
address walks across the physical sets over time instead of grinding one
of them down.  Rotation invalidates the remapped residency, which the
replay engine models as a flush of the cache (the scheme's transition
cost is amortised over a long period).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.techniques.base import Technique


class SetRotationLeveling(Technique):
    """Rotate the set mapping every ``period`` writes."""

    name = "wear-leveling"

    def __init__(self, period: int = 4096) -> None:
        if period <= 0:
            raise ConfigurationError("rotation period must be positive")
        self.period = period
        self._writes_seen = 0
        self._offset = 0
        #: Number of rotations performed (each costs a flush).
        self.rotations = 0

    def map_set(self, block: int, n_sets: int) -> int:
        return (block + self._offset) % n_sets

    def observe_write(self, block: int) -> None:
        self._writes_seen += 1
        if self._writes_seen % self.period == 0:
            self._offset += 1
            self.rotations += 1

    @property
    def rotated(self) -> bool:
        """Whether the mapping moved since construction."""
        return self._offset > 0
