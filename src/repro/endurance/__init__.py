"""Write-endurance and lifetime modeling (paper Table I + Section VII).

The paper names lifetime characterization against architecture-agnostic
features as future work; this subpackage implements it: endurance specs
per class, wear-distribution tracking over an LLC replay, and projected
time-to-first-failure with and without ideal wear leveling.
"""

from repro.endurance.lifetime import LifetimeEstimate, estimate_lifetime
from repro.endurance.model import (
    ENDURANCE,
    SECONDS_PER_YEAR,
    EnduranceSpec,
    endurance_of,
)
from repro.endurance.wear import WearSummary, replay_with_wear, wear_from_counts

__all__ = [
    "LifetimeEstimate",
    "estimate_lifetime",
    "ENDURANCE",
    "SECONDS_PER_YEAR",
    "EnduranceSpec",
    "endurance_of",
    "WearSummary",
    "replay_with_wear",
    "wear_from_counts",
]
