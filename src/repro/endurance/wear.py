"""Write-wear tracking over an LLC replay.

Collects per-line and per-set write counts while a stream replays
through a cache geometry, then summarises the *distribution* of wear —
the quantity that determines lifetime under limited endurance, since the
hottest line fails first (paper Section II-A's stuck-at discussion, and
the intra-set write-variation literature the paper cites [20], [38],
[39]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.cache import SetAssocCache
from repro.sim.hierarchy import LLCStream
from repro.sim.llc import LLCCounts


@dataclass
class WearSummary:
    """Distribution statistics of data-array write wear.

    ``line`` granularity is a physical cache frame (set x way is
    approximated by set-level accounting divided by associativity for
    the leveled case; the tracker records exact per-set counts and the
    maximum per-line count within each set).
    """

    n_sets: int
    associativity: int
    total_writes: int
    set_writes: np.ndarray  # writes landing in each set
    hottest_line_writes: int  # max writes to a single frame

    @property
    def mean_set_writes(self) -> float:
        """Average writes per set."""
        return float(self.set_writes.mean()) if self.n_sets else 0.0

    @property
    def max_set_writes(self) -> int:
        """Writes into the hottest set."""
        return int(self.set_writes.max()) if self.n_sets else 0

    @property
    def imbalance(self) -> float:
        """Hottest-set writes over the mean (1.0 = perfectly level)."""
        mean = self.mean_set_writes
        return self.max_set_writes / mean if mean > 0 else 0.0

    @property
    def coefficient_of_variation(self) -> float:
        """Std/mean of per-set writes — the wear-variation metric."""
        mean = self.mean_set_writes
        if mean == 0:
            return 0.0
        return float(self.set_writes.std() / mean)


def replay_with_wear(
    stream: LLCStream,
    capacity_bytes: int,
    associativity: int = 16,
    block_bytes: int = 64,
) -> WearSummary:
    """Replay a stream and account data-array writes per set and line.

    Every write access *and* every demand-miss fill programs the data
    array, so both wear the cells — this is the physical accounting,
    independent of the energy model's fill switch.
    """
    cache = SetAssocCache(capacity_bytes, block_bytes, associativity)
    n_sets = cache.n_sets
    set_writes = np.zeros(n_sets, dtype=np.int64)
    line_writes: Dict[int, int] = {}
    total = 0

    blocks = stream.blocks
    writes = stream.writes
    for i in range(len(stream)):
        block = int(blocks[i])
        is_write = bool(writes[i])
        outcome = cache.access(block, is_write)
        wrote = is_write or not outcome.hit  # writeback, or fill
        if wrote:
            total += 1
            set_writes[block % n_sets] += 1
            line_writes[block] = line_writes.get(block, 0) + 1

    hottest = max(line_writes.values()) if line_writes else 0
    return WearSummary(
        n_sets=n_sets,
        associativity=associativity,
        total_writes=total,
        set_writes=set_writes,
        hottest_line_writes=hottest,
    )


def wear_from_counts(counts: LLCCounts) -> int:
    """Total data-array writes implied by aggregate counts (fills plus
    writeback traffic) — a fast proxy when the distribution is not
    needed."""
    return counts.data_writes
